"""Artifact writers: CSV/JSON row exports and the sweep manifest.

The writers are deliberately boring — plain ``csv`` and ``json`` with fixed,
deterministic formatting — because the contract is byte-for-byte
reproducibility: running the same sweep spec twice (same axes, same seed,
same code version) must export identical files.  Nothing time- or
host-dependent is ever written; wall-clock diagnostics stay on the console.

The generic row writers live in :mod:`repro.analysis.io` (below the runner
in the layering) and are re-exported here unchanged, so single-run rows
(``run --output``, :meth:`repro.runner.result.RunResult.to_csv`) and sweep
tables serialise identically.

Layout of :func:`export_sweep`::

    <out_dir>/<name>.csv            wide rows (one line per design point)
    <out_dir>/<name>.long.csv       tidy long rows (one line per point, metric)
    <out_dir>/<name>.json           {"manifest": ..., "rows": ..., "long_rows": ...}
    <out_dir>/<name>.manifest.json  spec payload + hash, code version, seeds, keys

Layout of :func:`export_optimize` (same discipline; the manifest
additionally records every round's proposals and the front trajectory)::

    <out_dir>/<name>.csv            wide rows (one line per evaluated point)
    <out_dir>/<name>.json           {"manifest": ..., "rows": ..., "front": ..., "knee": ...}
    <out_dir>/<name>.manifest.json  spec payload + hash, rounds, stop reason, keys
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.analysis.io import (ROW_FORMATS, ordered_columns,  # noqa: F401
                               rows_to_csv_text, rows_to_json_text,
                               write_rows)
from repro.runner.cache import code_version
from repro.sweep.driver import SweepRunResult


def sweep_manifest(result: SweepRunResult) -> Dict[str, Any]:
    """Everything needed to reproduce (and verify) a sweep's exports.

    Contains the full spec payload and its stable hash, the code-version
    token, the master seed, and every point's parameters and engine cache
    key.  Deliberately excludes wall-clock and cache-hit diagnostics: two
    runs of the same spec on the same code produce identical manifests.
    """
    spec = result.spec
    return {
        "kind": "repro-sweep-manifest",
        "sweep": spec.to_payload(),
        "spec_hash": spec.spec_hash(),
        "experiment": spec.experiment,
        "seed": spec.seed,
        "code_version": code_version(),
        "num_points": len(result.points),
        "metric_names": list(result.metric_names),
        "points": [{"index": point.index,
                    "axis_values": dict(point.axis_values),
                    "params": dict(point.params),
                    "cache_key": point.cache_key}
                   for point in result.points],
    }


def manifest_text(result: SweepRunResult) -> str:
    """The manifest as deterministic JSON text."""
    return json.dumps(sweep_manifest(result), indent=2, sort_keys=True) + "\n"


def sweep_json_payload(result: SweepRunResult) -> Dict[str, Any]:
    """The combined JSON artifact payload (manifest + wide + long rows)."""
    return {"manifest": sweep_manifest(result), "rows": list(result.rows),
            "long_rows": result.long_rows()}


def sweep_json_text(result: SweepRunResult) -> str:
    """The combined artifact as deterministic JSON text.

    Byte-identical to the ``<name>.json`` file :func:`export_sweep`
    writes — the canonical machine-readable form of one sweep run, which
    is also what the service layer serves for finished sweep jobs.
    """
    return json.dumps(sweep_json_payload(result), indent=2,
                      sort_keys=True) + "\n"


def export_sweep(result: SweepRunResult, out_dir: os.PathLike,
                 name: Optional[str] = None) -> Dict[str, Path]:
    """Write the sweep's CSV/JSON tables and manifest into ``out_dir``.

    Returns the written paths keyed by artifact kind (``"csv"``,
    ``"long_csv"``, ``"json"``, ``"manifest"``).  Exports are byte-for-byte
    reproducible for a fixed spec and code version.

    An objective of the spec that *no point produced* raises
    :class:`repro.sweep.analysis.UnknownMetricError` (with did-you-mean
    suggestions over the observed metric names) instead of silently
    exporting ``None`` columns that the Pareto helpers would count as
    worst-possible values.
    """
    from repro.sweep.analysis import require_metrics
    require_metrics(result.spec.objectives, result.metric_names,
                    context=f"sweep {result.spec.name!r} export")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    name = name or result.spec.name
    wide_columns = (["point"] + result.spec.axis_names()
                    + list(result.metric_names))
    long_rows = result.long_rows()

    paths = {
        "csv": write_rows(result.rows, out_dir / f"{name}.csv", fmt="csv",
                          columns=wide_columns),
        "long_csv": write_rows(long_rows, out_dir / f"{name}.long.csv",
                               fmt="csv"),
        "manifest": out_dir / f"{name}.manifest.json",
        "json": out_dir / f"{name}.json",
    }
    paths["manifest"].write_text(manifest_text(result), encoding="utf-8")
    paths["json"].write_text(sweep_json_text(result), encoding="utf-8")
    return paths


def optimize_manifest(result: "OptimizeResult") -> Dict[str, Any]:
    """Everything needed to reproduce (and verify) an optimizer run.

    The optimizer sibling of :func:`sweep_manifest`: the spec payload and
    hash, the code version, every evaluated point with its engine cache
    key — plus the search trajectory (each round's proposals, point
    indices and Pareto front) and the stop reason.  Wall-clock and
    cache-hit diagnostics are deliberately excluded: a warm re-run of the
    same spec produces a byte-identical manifest.
    """
    spec = result.spec
    return {
        "kind": "repro-optimize-manifest",
        "optimize": spec.to_payload(),
        "spec_hash": spec.spec_hash(),
        "experiment": spec.experiment,
        "seed": spec.seed,
        "code_version": code_version(),
        "num_points": len(result.points),
        "metric_names": list(result.metric_names),
        "stop_reason": result.stop_reason,
        "rounds": [round_.to_payload() for round_ in result.rounds],
        "points": [{"index": point.index,
                    "axis_values": dict(point.axis_values),
                    "params": dict(point.params),
                    "cache_key": point.cache_key}
                   for point in result.points],
    }


def optimize_manifest_text(result: "OptimizeResult") -> str:
    """The optimizer manifest as deterministic JSON text."""
    return json.dumps(optimize_manifest(result), indent=2,
                      sort_keys=True) + "\n"


def optimize_json_payload(result: "OptimizeResult") -> Dict[str, Any]:
    """The combined JSON artifact payload (manifest + rows + front + knee)."""
    return {"manifest": optimize_manifest(result),
            "rows": list(result.rows),
            "front": result.front(),
            "knee": result.knee()}


def optimize_json_text(result: "OptimizeResult") -> str:
    """The combined optimizer artifact as deterministic JSON text."""
    return json.dumps(optimize_json_payload(result), indent=2,
                      sort_keys=True) + "\n"


def export_optimize(result: "OptimizeResult", out_dir: os.PathLike,
                    name: Optional[str] = None) -> Dict[str, Path]:
    """Write the optimizer run's CSV/JSON tables and manifest into ``out_dir``.

    Returns the written paths keyed by artifact kind (``"csv"``,
    ``"json"``, ``"manifest"``).  Exports are byte-for-byte reproducible
    for a fixed spec and code version — including across warm re-runs
    served entirely from the result cache.
    """
    from repro.sweep.analysis import require_metrics
    require_metrics(result.spec.objectives, result.metric_names,
                    context=f"optimize {result.spec.name!r} export")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    name = name or result.spec.name
    wide_columns = (["point"] + result.spec.dimension_names()
                    + list(result.metric_names))
    paths = {
        "csv": write_rows(result.rows, out_dir / f"{name}.csv", fmt="csv",
                          columns=wide_columns),
        "manifest": out_dir / f"{name}.manifest.json",
        "json": out_dir / f"{name}.json",
    }
    paths["manifest"].write_text(optimize_manifest_text(result),
                                 encoding="utf-8")
    paths["json"].write_text(optimize_json_text(result), encoding="utf-8")
    return paths
