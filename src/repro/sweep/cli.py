"""CLI of the design-space exploration subsystem.

Wired into ``python -m repro`` by :mod:`repro.runner.cli`::

    python -m repro sweep list                        # registered sweeps
    python -m repro sweep run node_density --quick    # run (resumes from cache)
    python -m repro sweep run duty_cycle -j 4 --export out/
    python -m repro sweep run node_density --param superframes=10
    python -m repro sweep status node_density --quick # cache occupancy
    python -m repro sweep export tx_policy --quick --out out/
    python -m repro sweep optimize case_study_power --quick --export out/

``run`` prints the wide result table, the Pareto front over the sweep's
objectives and the knee point; ``--export`` (or the ``export`` command)
writes the CSV/JSON tables plus the reproducibility manifest via
:mod:`repro.sweep.artifacts`.  ``status`` computes every point's engine
cache key and reports which points are already done — an interrupted sweep
shows partial occupancy and ``run`` will only compute the rest.
``optimize`` runs a registered adaptive search
(:mod:`repro.sweep.optimize`) with the same resume/export discipline: a
warm re-run replays the identical proposal sequence from the cache and
recomputes nothing.

Output discipline matches :mod:`repro.runner.cli`: result tables and the
summary/``spec_hash`` lines stay on stdout; auxiliary status ("wrote ...")
and ``error:`` lines go through the ``repro`` logger to stderr.
"""

from __future__ import annotations

import argparse
import logging

# Shared --param reader — one table, one behaviour for both the runner and
# the sweep CLI (see repro.runner.params.parse_param).
from repro.runner.params import parse_param
from repro.runner.params import parse_param_arg as _parse_param
from repro.sweep.analysis import knee_point, pareto_front
from repro.sweep.artifacts import export_optimize, export_sweep
from repro.sweep.catalog import (UnknownOptimizeError, UnknownSweepError,
                                 get_optimize, get_sweep,
                                 iter_definitions,
                                 iter_optimize_definitions)
from repro.sweep.driver import run_sweep, sweep_status
from repro.sweep.optimize import run_optimize
from repro.sweep.spec import SweepSpec

logger = logging.getLogger(__name__)


def add_sweep_parser(commands) -> None:
    """Attach the ``sweep`` command tree to the main CLI's subparsers."""
    sweep_parser = commands.add_parser(
        "sweep", help="design-space exploration over registered experiments")
    actions = sweep_parser.add_subparsers(dest="sweep_command", required=True)

    list_parser = actions.add_parser(
        "list", help="catalogue of registered sweeps")
    list_parser.add_argument("--verbose", action="store_true",
                             help="include axes and base parameters")

    def common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("sweep", help="registered sweep name "
                                          "(see 'sweep list')")
        parser.add_argument("--quick", action="store_true",
                            help="scaled-down CI variant of the sweep")
        parser.add_argument("--cache-dir", default=None,
                            help="result cache directory (default "
                                 "REPRO_CACHE_DIR or ~/.cache/repro-bougard)")
        parser.add_argument("--param", action="append", type=_parse_param,
                            default=[], metavar="KEY=VALUE",
                            help="override one base parameter of the sweep "
                                 "(repeatable; validated against the "
                                 "experiment schema; axes cannot be "
                                 "overridden)")

    run_parser = actions.add_parser(
        "run", help="run a sweep (finished points resume from the cache)")
    common(run_parser)
    run_parser.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes (points are dispatched "
                                 "chunk-wise; rows are identical either way)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="neither read nor write the result cache "
                                 "(disables resume)")
    run_parser.add_argument("--export", metavar="DIR", default=None,
                            help="write CSV/JSON/manifest artifacts to DIR")
    run_parser.add_argument("--quiet", "-q", action="store_true",
                            help="suppress the tables, print the summary "
                                 "lines only")
    run_parser.add_argument("--trace", metavar="PATH", default=None,
                            help="write a repro.obs trace of the sweep "
                                 "(inspect with 'python -m repro obs "
                                 "report PATH')")

    status_parser = actions.add_parser(
        "status", help="cache occupancy of a sweep (runs nothing)")
    common(status_parser)

    export_parser = actions.add_parser(
        "export", help="run (from cache where possible) and write artifacts")
    common(export_parser)
    export_parser.add_argument("--jobs", "-j", type=int, default=1,
                               help="worker processes for missing points")
    export_parser.add_argument("--out", required=True, metavar="DIR",
                               help="output directory of the artifacts")

    optimize_parser = actions.add_parser(
        "optimize", help="adaptive design-space search (batches resume "
                         "from the cache)")
    optimize_parser.add_argument("optimizer",
                                 help="registered optimizer name "
                                      "(see 'sweep list')")
    optimize_parser.add_argument("--quick", action="store_true",
                                 help="scaled-down CI variant of the search")
    optimize_parser.add_argument("--cache-dir", default=None,
                                 help="result cache directory (default "
                                      "REPRO_CACHE_DIR or "
                                      "~/.cache/repro-bougard)")
    optimize_parser.add_argument("--param", action="append",
                                 type=_parse_param, default=[],
                                 metavar="KEY=VALUE",
                                 help="override one base parameter "
                                      "(repeatable; searched dimensions "
                                      "cannot be overridden)")
    optimize_parser.add_argument("--jobs", "-j", type=int, default=1,
                                 help="worker processes per proposal batch")
    optimize_parser.add_argument("--no-cache", action="store_true",
                                 help="neither read nor write the result "
                                      "cache (disables resume)")
    optimize_parser.add_argument("--export", metavar="DIR", default=None,
                                 help="write CSV/JSON/manifest artifacts "
                                      "to DIR")
    optimize_parser.add_argument("--quiet", "-q", action="store_true",
                                 help="suppress the tables, print the "
                                      "summary lines only")


def _resolve_spec(arguments: argparse.Namespace) -> SweepSpec:
    spec = get_sweep(arguments.sweep, quick=arguments.quick)
    overrides = dict(getattr(arguments, "param", []) or [])
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


def _print_front(result, names=None) -> None:
    objectives = dict(result.spec.objectives)
    if not objectives:
        return
    names = names if names is not None else result.spec.axis_names()
    front = pareto_front(result.rows, objectives)
    knee = knee_point(front, objectives)
    columns = ["point"] + list(names) + list(objectives)
    from repro.analysis.tables import format_table
    senses = ", ".join(f"{metric} ({sense})"
                       for metric, sense in objectives.items())
    rows = [["-" if row.get(column) is None else row.get(column)
             for column in columns] for row in front]
    print(format_table(columns, rows,
                       title=f"Pareto front over {senses}"))
    if knee is not None:
        axes = ", ".join(f"{name}={knee.get(name)}" for name in names)
        print(f"knee point: point {knee.get('point')} ({axes})")


def _command_run(arguments: argparse.Namespace) -> int:
    spec = _resolve_spec(arguments)
    tracer = None
    if arguments.trace:
        from repro.obs import Tracer
        tracer = Tracer(name=f"sweep:{arguments.sweep}")
    result = run_sweep(spec, jobs=arguments.jobs,
                       cache=not arguments.no_cache,
                       cache_root=arguments.cache_dir,
                       tracer=tracer)
    if not arguments.quiet:
        print(result.to_table())
        print()
        _print_front(result)
    print(f"sweep {spec.name}: {len(result.points)} points "
          f"({result.computed_points} computed, {result.cached_points} from "
          f"cache) in {result.elapsed_s:.3f}s seed={spec.seed} "
          f"spec_hash={spec.spec_hash()}")
    if arguments.export:
        paths = export_sweep(result, arguments.export)
        for kind in ("csv", "long_csv", "json", "manifest"):
            logger.info(f"  wrote {kind:9s} {paths[kind]}")
    if tracer is not None:
        from repro.obs import write_trace
        trace_path = write_trace(tracer, arguments.trace)
        logger.info(f"wrote trace to {trace_path}")
    return 0


def _command_status(arguments: argparse.Namespace) -> int:
    spec = _resolve_spec(arguments)
    status = sweep_status(spec, cache_root=arguments.cache_dir)
    for point, done in zip(status.points, status.done):
        axes = ", ".join(f"{name}={value}"
                         for name, value in point.axis_values.items())
        state = "done   " if done else "pending"
        print(f"  point {point.index:3d}  {state}  {axes}  "
              f"key={point.cache_key[:12]}")
    print(f"sweep {spec.name}: {status.done_count}/{len(status.points)} "
          f"points cached, {status.pending_count} pending "
          f"spec_hash={spec.spec_hash()}")
    return 0


def _command_export(arguments: argparse.Namespace) -> int:
    spec = _resolve_spec(arguments)
    result = run_sweep(spec, jobs=arguments.jobs,
                       cache_root=arguments.cache_dir)
    paths = export_sweep(result, arguments.out)
    print(f"sweep {spec.name}: exported {len(result.points)} points "
          f"({result.cached_points} from cache) "
          f"spec_hash={spec.spec_hash()}")
    for kind in ("csv", "long_csv", "json", "manifest"):
        logger.info(f"  wrote {kind:9s} {paths[kind]}")
    return 0


def _command_optimize(arguments: argparse.Namespace) -> int:
    spec = get_optimize(arguments.optimizer, quick=arguments.quick)
    overrides = dict(getattr(arguments, "param", []) or [])
    if overrides:
        spec = spec.with_overrides(overrides)
    result = run_optimize(spec, jobs=arguments.jobs,
                          cache=not arguments.no_cache,
                          cache_root=arguments.cache_dir)
    if not arguments.quiet:
        print(result.to_table())
        print()
        _print_front(result, names=spec.dimension_names())
    print(f"optimize {spec.name}: {len(result.points)} points in "
          f"{len(result.rounds)} rounds "
          f"({result.computed_points} computed, {result.cached_points} from "
          f"cache) stop={result.stop_reason} in {result.elapsed_s:.3f}s "
          f"seed={spec.seed} spec_hash={spec.spec_hash()}")
    if arguments.export:
        paths = export_optimize(result, arguments.export)
        for kind in ("csv", "json", "manifest"):
            logger.info(f"  wrote {kind:9s} {paths[kind]}")
    return 0


def _command_list(arguments: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    rows = []
    for definition in iter_definitions():
        spec = definition.build(quick=False)
        quick = definition.build(quick=True)
        rows.append([definition.name, spec.experiment,
                     " x ".join(spec.axis_names()),
                     spec.num_points(), quick.num_points(),
                     definition.title])
    print(format_table(
        ["name", "experiment", "axes", "points", "quick", "title"],
        rows, title="Registered sweeps"))
    optimizer_rows = []
    for definition in iter_optimize_definitions():
        spec = definition.build(quick=False)
        quick = definition.build(quick=True)
        optimizer_rows.append([definition.name, spec.experiment,
                               " x ".join(spec.dimension_names()),
                               spec.max_points, quick.max_points,
                               definition.reference_sweep,
                               definition.title])
    if optimizer_rows:
        print()
        print(format_table(
            ["name", "experiment", "dimensions", "budget", "quick",
             "reference", "title"],
            optimizer_rows, title="Registered optimizers"))
    if arguments.verbose:
        for definition in iter_definitions():
            spec = definition.build(quick=False)
            print(f"\n{definition.name}:")
            for name, values in spec.axis_values().items():
                print(f"  axis {name}: {values}")
            for key, value in spec.base_params.items():
                print(f"  base {key}={value!r}")
            for metric, sense in spec.objectives.items():
                print(f"  objective {metric}: {sense}")
    return 0


def command_sweep(arguments: argparse.Namespace) -> int:
    """Dispatch one parsed ``sweep`` invocation; returns the exit status."""
    handler = {"list": _command_list,
               "run": _command_run,
               "status": _command_status,
               "export": _command_export,
               "optimize": _command_optimize}[arguments.sweep_command]
    try:
        return handler(arguments)
    except (UnknownSweepError, UnknownOptimizeError) as error:
        logger.error(f"error: {error}")
        return 2
    except KeyError as error:
        # e.g. an unknown --param name (UnknownParameterError); keep the
        # schema's did-you-mean message, drop the traceback.
        logger.error(f"error: {error.args[0]}")
        return 2
    except ValueError as error:
        logger.error(f"error: {error}")
        return 2
