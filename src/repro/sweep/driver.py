"""Sweep execution: expand a spec, dispatch points, resume from the cache.

Every expanded point of a :class:`repro.sweep.spec.SweepSpec` is one
:func:`repro.runner.engine.run_experiment` call, so it inherits the engine's
whole machinery: parameter validation against the registry, per-point
content-addressed cache keys and provenance-stamped artifacts.  The driver
adds the fan-out — points ship chunk-wise through the existing
serial/process-pool executors (:mod:`repro.runner.executor`) — and the
resume semantics: a re-run (or an interrupted run picked up again) finds
every finished point in the cache and recomputes nothing
(``SweepRunResult.computed_points == 0`` on a warm second run).

Results are collected two ways:

* *wide* rows (:attr:`SweepRunResult.rows`) — one row per point:
  ``{"point": i, <axis values...>, <metrics...>}``;
* *tidy long* rows (:meth:`SweepRunResult.long_rows`) — one row per
  ``(point, metric)``: ``{"point", <axis values...>, "metric", "value"}`` —
  the format the analysis helpers and the CSV/JSON artifact writers consume.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.obs.parallel import TracedExecutor
from repro.obs.tracer import activate, current_tracer
from repro.runner.cache import NullCache
from repro.runner.engine import (_canonical_params, resolve_cache,
                                 run_experiment)
from repro.runner.executor import (SerialExecutor, make_executor,
                                   run_ordered)
from repro.runner.registry import ExperimentRegistry, default_registry
from repro.sweep.spec import SweepSpec

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One expanded design point of a sweep.

    ``axis_values`` is what the sweep varies; ``params`` the full override
    mapping handed to the engine (base parameters + axis values);
    ``cache_key`` the engine's content-addressed key of the point, which is
    what makes sweeps resumable.
    """

    index: int
    axis_values: Dict[str, Any]
    params: Dict[str, Any]
    cache_key: str


@dataclass
class SweepRunResult:
    """Outcome of one :func:`run_sweep` call.

    ``rows`` is the wide table (one dict per point, in expansion order);
    ``computed_points``/``cached_points`` record how much work the cache
    saved — a warm re-run of the same spec reports ``computed_points == 0``.
    """

    spec: SweepSpec
    points: List[SweepPoint]
    rows: List[Dict[str, Any]]
    computed_points: int
    cached_points: int
    elapsed_s: float
    metric_names: List[str] = field(default_factory=list)

    def long_rows(self) -> List[Dict[str, Any]]:
        """Tidy long-format view: one row per (point, metric)."""
        axis_names = self.spec.axis_names()
        rows: List[Dict[str, Any]] = []
        for wide in self.rows:
            base = {"point": wide["point"]}
            base.update({name: wide[name] for name in axis_names})
            for metric in self.metric_names:
                rows.append({**base, "metric": metric,
                             "value": wide.get(metric)})
        return rows

    def to_table(self, title: Optional[str] = None) -> str:
        """Render the wide rows as an ASCII table."""
        from repro.analysis.tables import format_table
        headers = ["point"] + self.spec.axis_names() + self.metric_names
        rows = [["-" if row.get(header) is None else row.get(header, "-")
                 for header in headers] for row in self.rows]
        return format_table(headers, rows,
                            title=title or f"sweep {self.spec.name} "
                                           f"({self.spec.experiment})")


@dataclass
class SweepStatus:
    """Cache occupancy of a sweep without running anything."""

    spec: SweepSpec
    points: List[SweepPoint]
    done: List[bool]

    @property
    def done_count(self) -> int:
        return sum(self.done)

    @property
    def pending_count(self) -> int:
        return len(self.done) - self.done_count


def build_points(experiment: str,
                 value_sets: Sequence[Mapping[str, Any]],
                 base_params: Optional[Mapping[str, Any]] = None,
                 seed: Optional[int] = None,
                 cache: Any = True,
                 cache_root: Optional[str] = None,
                 registry: Optional[ExperimentRegistry] = None,
                 start_index: int = 0) -> List[SweepPoint]:
    """Turn explicit per-point value mappings into cache-keyed points.

    The general form of :func:`expand_points`: ``value_sets`` is any list
    of varied-parameter mappings (a cartesian grid, an optimizer's round of
    proposals, a hand-built list), each merged over ``base_params`` and
    resolved through the experiment's typed schema, with the engine's
    content-addressed cache key computed per point.  ``start_index``
    offsets the point indices so batches proposed across rounds number
    globally.
    """
    registry = registry or default_registry()
    experiment_spec = registry.get(experiment)
    cache_obj = resolve_cache(cache, cache_root)
    base = dict(base_params or {})
    points: List[SweepPoint] = []
    for offset, values in enumerate(value_sets):
        params = {**base, **values}
        resolved = experiment_spec.resolve_params(params)
        key = cache_obj.key(experiment_spec.name,
                            _canonical_params(resolved), seed)
        points.append(SweepPoint(index=start_index + offset,
                                 axis_values=dict(values),
                                 params=params, cache_key=key))
    return points


def expand_points(spec: SweepSpec,
                  cache: Any = True,
                  cache_root: Optional[str] = None,
                  registry: Optional[ExperimentRegistry] = None
                  ) -> List[SweepPoint]:
    """Expand a spec into concrete points with their engine cache keys.

    Axis and base parameters resolve through the experiment's typed schema
    here (``resolve_params``: validation plus canonical coercion — specs
    built from payloads of older code versions fail loudly rather than
    run), and the computed keys are exactly the keys
    :func:`repro.runner.engine.run_experiment` will use — resume for free.

    Registry precedence: an explicit ``registry`` argument, else the
    registry the spec itself was built against (``SweepSpec.registry``),
    else the default catalogue.
    """
    registry = registry or spec.registry or default_registry()
    return build_points(spec.experiment, spec.expand_axes(),
                        base_params=spec.base_params, seed=spec.seed,
                        cache=cache, cache_root=cache_root,
                        registry=registry)


def sweep_status(spec: SweepSpec,
                 cache: Any = True,
                 cache_root: Optional[str] = None,
                 registry: Optional[ExperimentRegistry] = None) -> SweepStatus:
    """Which points of ``spec`` are already in the result cache.

    Occupancy uses :meth:`repro.runner.cache.ResultCache.contains` — one
    lock-free ``stat`` per point, no JSON parse — so status on a
    thousand-point sweep never loads a thousand payloads.
    """
    cache_obj = resolve_cache(cache, cache_root)
    points = expand_points(spec, cache=cache_obj, cache_root=cache_root,
                           registry=registry)
    done = [cache_obj.contains(point.cache_key) for point in points]
    return SweepStatus(spec=spec, points=points, done=done)


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def extract_point_metrics(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Reduce one experiment payload to the point's scalar metrics.

    Experiments with a network-level ``"aggregate"`` dict (the full-scale
    case study) contribute its scalars, with one level of nesting flattened
    (``energy_by_phase_j.transmit`` ...).  Other experiments contribute
    their scalar top-level payload fields plus ``num_rows``; single-row
    payloads additionally lift the row's scalar columns.
    """
    metrics: Dict[str, Any] = {}
    aggregate = payload.get("aggregate")
    if isinstance(aggregate, Mapping):
        for key, value in aggregate.items():
            if isinstance(value, Mapping):
                for subkey, subvalue in value.items():
                    if _is_scalar(subvalue):
                        metrics[f"{key}.{subkey}"] = subvalue
            elif _is_scalar(value):
                metrics[key] = value
        return metrics
    for key, value in payload.items():
        if key in ("rows", "report"):
            continue
        if _is_scalar(value):
            metrics[key] = value
    rows = payload.get("rows") or []
    metrics["num_rows"] = len(rows)
    if len(rows) == 1 and isinstance(rows[0], Mapping):
        for key, value in rows[0].items():
            if _is_scalar(value):
                metrics.setdefault(key, value)
    return metrics


def _run_point(task: Tuple[str, Dict[str, Any], int, Any, Optional[str],
                           Optional[ExperimentRegistry]]) -> Dict[str, Any]:
    """Task function of one sweep point (module-level, so picklable).

    Runs the point serially *inside* its worker — the parallelism of a
    sweep is across points, not within one — and returns only what the
    parent needs (metrics + cache diagnostics), keeping the inter-process
    payload small even when the experiment's rows are large.
    """
    experiment, params, seed, cache, cache_root, registry = task
    run = run_experiment(experiment, params=params, jobs=1, seed=seed,
                         cache=cache, cache_root=cache_root,
                         registry=registry)
    return {"cache_hit": run.cache_hit,
            "cache_key": run.cache_key,
            "elapsed_s": run.elapsed_s,
            "metrics": extract_point_metrics(run.payload)}


def _cache_transport(executor, cache: Any,
                     cache_root: Optional[str]) -> Tuple[Any, Optional[str]]:
    """Normalise a cache argument for shipping to the executor's workers.

    Serial runs hand any cache object straight through; process workers
    rebuild theirs from plain-data settings — a cache *object* ships as
    its backend's ``transport`` token plus the root (``True`` for the
    plain directory layout, ``"shared"`` for the locking shared-directory
    backend), so workers hit the same on-disk store with the same
    concurrency guarantees instead of silently falling back to the
    default directory.
    """
    inner = executor.inner if isinstance(executor, TracedExecutor) \
        else executor
    if isinstance(inner, SerialExecutor) or \
            isinstance(cache, (bool, str, NullCache)) or cache is None:
        return cache, cache_root
    backend = getattr(cache, "backend", cache)
    setting = getattr(backend, "transport", True)
    root = getattr(cache, "root", None)
    if root is not None and cache_root is None:
        cache_root = str(root)
    return setting, cache_root


def dispatch_points(experiment: str,
                    points: Sequence[SweepPoint],
                    seed: Optional[int],
                    *,
                    cache: Any = True,
                    cache_root: Optional[str] = None,
                    registry: Optional[ExperimentRegistry] = None,
                    executor=None,
                    tracer: Any = None,
                    on_point: Optional[Callable[[int, Dict[str, Any]],
                                                None]] = None,
                    label: Optional[str] = None,
                    span_name: Optional[str] = None,
                    span_attributes: Optional[Mapping[str, Any]] = None
                    ) -> List[Dict[str, Any]]:
    """Run a batch of points through the engine, resuming from the cache.

    The shared dispatch path under :func:`run_sweep` and
    :func:`repro.sweep.optimize.run_optimize`: every point becomes one
    engine task shipped through ``executor`` (serial by default), its
    result served from the content-addressed cache when present.  Returns
    one outcome dict per point, in point order: ``{"cache_hit",
    "cache_key", "elapsed_s", "metrics"}``.

    ``label`` names the batch in logs, ``span_name``/``span_attributes``
    the tracer span wrapping it (``sweep.points.cached`` /
    ``sweep.points.computed`` counters tick either way).
    """
    executor = executor if executor is not None else SerialExecutor()
    tracer = tracer if tracer is not None else current_tracer()
    if tracer.enabled and not isinstance(executor, TracedExecutor):
        executor = TracedExecutor(executor, tracer)
    cache_setting, cache_root = _cache_transport(executor, cache, cache_root)
    points = list(points)
    tasks = [(experiment, point.params, seed, cache_setting,
              None if cache_root is None else str(cache_root), registry)
             for point in points]
    label = label or experiment

    def stream(index: int, outcome: Dict[str, Any]) -> None:
        tracer.count("sweep.points.cached" if outcome["cache_hit"]
                     else "sweep.points.computed")
        logger.debug("%s: point %d/%d %s in %.3fs",
                     label, index + 1, len(points),
                     "cached" if outcome["cache_hit"] else "computed",
                     outcome["elapsed_s"])
        if on_point is not None:
            on_point(points[index].index, _wide_row(points[index], outcome))

    with activate(tracer), \
            tracer.span(span_name or f"points:{label}", kind="sweep",
                        experiment=experiment, points=len(points),
                        **dict(span_attributes or {})):
        return run_ordered(executor, _run_point, tasks, on_result=stream)


def run_sweep(spec: SweepSpec,
              jobs: int = 1,
              cache: Any = True,
              cache_root: Optional[str] = None,
              registry: Optional[ExperimentRegistry] = None,
              executor=None,
              on_point: Optional[Callable[[int, Dict[str, Any]], None]] = None,
              tracer: Any = None
              ) -> SweepRunResult:
    """Run every point of ``spec``, resuming finished points from the cache.

    Parameters
    ----------
    spec:
        The design space to explore.
    jobs:
        Worker processes; points are dispatched chunk-wise through
        :func:`repro.runner.executor.make_executor`, so ``jobs`` changes
        wall-clock only (every point carries the sweep's master seed).
    cache / cache_root:
        Passed through to :func:`repro.runner.engine.run_experiment` for
        every point.  ``cache=False`` disables resume (every point
        recomputes).  For process-parallel runs pass ``cache_root`` (or use
        the default root): each worker rebuilds its cache from the root.
    registry:
        Experiment registry override (defaults to the full catalogue).
    executor:
        Explicit execution strategy, overriding ``jobs``.
    on_point:
        Optional ``(point_index, wide_row)`` callback streamed as points
        complete (completion order under a parallel executor).
    tracer:
        Observability collector (:class:`repro.obs.Tracer`); defaults to
        the active tracer.  Records a ``sweep:<name>`` span, per-point
        progress counters (``sweep.points.cached`` / ``.computed``) and —
        through the per-task worker buffers — every point's engine spans.

    Returns
    -------
    SweepRunResult
        Wide rows in expansion order plus cache/compute accounting.
    """
    start = time.perf_counter()
    registry = registry or spec.registry  # None: workers use the default
    points = expand_points(spec, cache=cache, cache_root=cache_root,
                           registry=registry)
    executor = executor if executor is not None else make_executor(jobs)
    outcomes = dispatch_points(spec.experiment, points, spec.seed,
                               cache=cache, cache_root=cache_root,
                               registry=registry, executor=executor,
                               tracer=tracer, on_point=on_point,
                               label=f"sweep {spec.name}",
                               span_name=f"sweep:{spec.name}",
                               span_attributes={"sweep": spec.name})

    rows = [_wide_row(point, outcome)
            for point, outcome in zip(points, outcomes)]
    # Sorted, not first-seen: a cache-served payload comes back with
    # JSON-sorted keys, and exports must be byte-identical either way.
    metric_names = sorted({name for outcome in outcomes
                           for name in outcome["metrics"]})
    cached = sum(1 for outcome in outcomes if outcome["cache_hit"])
    return SweepRunResult(spec=spec, points=points, rows=rows,
                          computed_points=len(points) - cached,
                          cached_points=cached,
                          elapsed_s=time.perf_counter() - start,
                          metric_names=metric_names)


def _wide_row(point: SweepPoint, outcome: Dict[str, Any]) -> Dict[str, Any]:
    row: Dict[str, Any] = {"point": point.index}
    row.update(point.axis_values)
    row.update(outcome["metrics"])
    return row
