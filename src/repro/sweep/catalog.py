"""Catalogue of the registered headline sweeps and adaptive searches.

Six design-space explorations over the full-scale packet-level simulator
(``case_study_full``), each capturing one axis of the paper's Section 5/6
trade-off story:

* ``node_density`` — energy/reliability/latency vs network population;
* ``duty_cycle`` — the BO/SO superframe structure: full-active (SO = BO)
  against a duty-cycled CAP (SO fixed) across beacon orders;
* ``tx_policy`` — channel-inversion link adaptation against fixed 0 dBm
  transmit power, across payload sizes;
* ``traffic_mix`` — heterogeneous workloads: every registered traffic
  model (saturated, periodic, poisson, bursty, mixed) across offered-load
  scales, opening the axis the paper's one-packet-per-superframe
  assumption keeps fixed;
* ``topology_depth`` — the multi-hop axis: grid-placed nodes routed over
  a sink tree at increasing hop-depth caps, measuring how forwarding
  load concentrates on the first-hop relays (the energy hole) as the
  tree deepens;
* ``case_study_power_grid`` — the exhaustive BO/SO grid that doubles as
  the reference baseline of the catalogue's *optimizer* entries.

The catalogue also registers adaptive searches
(:class:`repro.sweep.optimize.OptimizeSpec`, run with
``python -m repro sweep optimize <name>``): ``case_study_power`` searches
the BO/SO space of ``case_study_power_grid`` with half the evaluation
budget and must find a knee point that matches or dominates the grid's.

Every sweep has a *quick* variant (``get_sweep(name, quick=True)``) that
shrinks the population, channel count and horizon so CI can smoke the whole
pipeline — expansion, cache-resume, Pareto analysis, export — in seconds.
The quick variant is a different spec (different base parameters), so its
manifest hash differs from the full run's; each variant's hash is stable
across runs.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

from repro.sweep.optimize import (ChoiceDimension, IntDimension,
                                  OptimizeSpec)
from repro.sweep.spec import GridAxis, SweepSpec

#: Objectives of the paper's trade-off story, shared by every headline
#: sweep: average node power (uW), transaction failure probability, and
#: mean in-superframe delivery delay — all minimised.
TRADEOFF_OBJECTIVES = {
    "mean_power_uw": "min",
    "failure_probability": "min",
    "mean_delivery_delay_s": "min",
}


class UnknownSweepError(KeyError):
    """Raised when a sweep name is not in the catalogue."""

    def __init__(self, name: str, known: Tuple[str, ...]):
        self.name = name
        self.known = known
        suggestions = difflib.get_close_matches(name, known, n=3)
        message = f"Unknown sweep {name!r}. Registered sweeps: " \
                  f"{', '.join(known) or '(none)'}."
        if suggestions:
            message += f" Did you mean: {', '.join(suggestions)}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0]


@dataclass(frozen=True)
class SweepDefinition:
    """One named entry of the catalogue."""

    name: str
    title: str
    builder: Callable[[bool], SweepSpec]

    def build(self, quick: bool = False) -> SweepSpec:
        """The concrete spec (full-scale, or the quick CI variant)."""
        return self.builder(quick)


def _node_density(quick: bool) -> SweepSpec:
    if quick:
        axes = {"total_nodes": GridAxis((16, 32, 64))}
        base = {"num_channels": 2, "superframes": 4}
    else:
        axes = {"total_nodes": GridAxis((400, 800, 1600, 2400, 3200))}
        base = {}
    return SweepSpec(
        name="node_density", experiment="case_study_full", axes=axes,
        base_params=base, objectives=TRADEOFF_OBJECTIVES,
        title="Energy / reliability / latency vs node density "
              "(full-scale packet-level simulation)")


def _duty_cycle(quick: bool) -> SweepSpec:
    if quick:
        axes = {"beacon_order": GridAxis((3, 4, 5)),
                "superframe_order": GridAxis((None, 3))}
        base = {"total_nodes": 32, "num_channels": 2, "superframes": 6}
    else:
        axes = {"beacon_order": GridAxis((3, 4, 5, 6, 7)),
                "superframe_order": GridAxis((None, 3))}
        base = {}
    return SweepSpec(
        name="duty_cycle", experiment="case_study_full", axes=axes,
        base_params=base, objectives=TRADEOFF_OBJECTIVES,
        title="BO/SO duty-cycle structure: full-active (SO = BO) vs "
              "duty-cycled CAP (SO = 3) across beacon orders")


def _tx_policy(quick: bool) -> SweepSpec:
    if quick:
        axes = {"tx_policy": GridAxis(("adaptive", "fixed"))}
        base = {"total_nodes": 32, "num_channels": 2, "superframes": 4}
    else:
        axes = {"tx_policy": GridAxis(("adaptive", "fixed")),
                "payload_bytes": GridAxis((50, 120))}
        base = {}
    return SweepSpec(
        name="tx_policy", experiment="case_study_full", axes=axes,
        base_params=base, objectives=TRADEOFF_OBJECTIVES,
        title="Channel-inversion link adaptation vs fixed 0 dBm transmit "
              "power at full scale")


def _traffic_mix(quick: bool) -> SweepSpec:
    if quick:
        # CI smoke: every registered model once, at the scaled-down size.
        axes = {"traffic_model": GridAxis(("saturated", "periodic",
                                           "poisson", "bursty", "mixed"))}
        base = {"total_nodes": 32, "num_channels": 2, "superframes": 4}
    else:
        # Full scale crosses the offered-load scale with the models the
        # scale actually affects; 'saturated' ignores traffic_rate_scale
        # (and the primed periodic source reproduces it at scale 1.0), so
        # including it would recompute identical 1600-node points.
        axes = {"traffic_model": GridAxis(("periodic", "poisson", "bursty",
                                           "mixed")),
                "traffic_rate_scale": GridAxis((0.5, 1.0, 2.0))}
        base = {}
    return SweepSpec(
        name="traffic_mix", experiment="case_study_full", axes=axes,
        base_params=base, objectives=TRADEOFF_OBJECTIVES,
        title="Heterogeneous traffic workloads: every registered traffic "
              "model across offered-load scales at full scale")


def _case_study_power_grid(quick: bool) -> SweepSpec:
    """The exhaustive BO x SO grid the ``case_study_power`` optimizer is
    benchmarked against: same dimensions, same base parameters, double the
    evaluation budget (every combination)."""
    if quick:
        axes = {"beacon_order": GridAxis((3, 4, 5, 6)),
                "superframe_order": GridAxis((None, 2, 3))}
        base = {"total_nodes": 32, "num_channels": 2, "superframes": 4}
    else:
        axes = {"beacon_order": GridAxis((3, 4, 5, 6, 7, 8)),
                "superframe_order": GridAxis((None, 2, 3))}
        base = {}
    return SweepSpec(
        name="case_study_power_grid", experiment="case_study_full",
        axes=axes, base_params=base, objectives=TRADEOFF_OBJECTIVES,
        title="Exhaustive BO/SO reference grid of the case_study_power "
              "optimizer (power/delay/reliability trade-off)")


def _topology_depth(quick: bool) -> SweepSpec:
    if quick:
        # CI smoke: one grid channel, 32 nodes (the 12 m lattice puts 8 in
        # ring 1, 16 in ring 2, 8 in ring 3 — so every hop cap below is a
        # distinct tree), periodic traffic so forwarding load matters.
        axes = {"max_hops": GridAxis((1, 2, 3))}
        base = {"topology": "grid", "total_nodes": 32, "num_channels": 1,
                "superframes": 4, "traffic_model": "periodic",
                "traffic_rate_scale": 0.5}
    else:
        axes = {"max_hops": GridAxis((1, 2, 3, 4)),
                "traffic_model": GridAxis(("periodic", "poisson", "bursty"))}
        base = {"topology": "grid"}
    return SweepSpec(
        name="topology_depth", experiment="case_study_full", axes=axes,
        base_params=base, objectives=TRADEOFF_OBJECTIVES,
        title="Sink-tree hop-depth cap over the grid topology: energy-hole "
              "formation vs routing depth")


_DEFINITIONS: Dict[str, SweepDefinition] = {
    definition.name: definition for definition in (
        SweepDefinition("node_density",
                        "node-density sweep of the full-scale case study",
                        _node_density),
        SweepDefinition("duty_cycle",
                        "BO/SO duty-cycle sweep of the full-scale case study",
                        _duty_cycle),
        SweepDefinition("tx_policy",
                        "adaptive-vs-fixed TX-power sweep at full scale",
                        _tx_policy),
        SweepDefinition("traffic_mix",
                        "heterogeneous-traffic sweep of the full-scale "
                        "case study",
                        _traffic_mix),
        SweepDefinition("topology_depth",
                        "multi-hop sink-tree depth sweep over the grid "
                        "topology",
                        _topology_depth),
        SweepDefinition("case_study_power_grid",
                        "exhaustive BO/SO reference grid of the "
                        "case_study_power optimizer",
                        _case_study_power_grid),
    )
}


class UnknownOptimizeError(KeyError):
    """Raised when an optimizer name is not in the catalogue."""

    def __init__(self, name: str, known: Tuple[str, ...]):
        self.name = name
        self.known = known
        suggestions = difflib.get_close_matches(name, known, n=3)
        message = f"Unknown optimizer {name!r}. Registered optimizers: " \
                  f"{', '.join(known) or '(none)'}."
        if suggestions:
            message += f" Did you mean: {', '.join(suggestions)}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0]


@dataclass(frozen=True)
class OptimizeDefinition:
    """One named adaptive-search entry of the catalogue."""

    name: str
    title: str
    builder: Callable[[bool], OptimizeSpec]
    reference_sweep: str

    def build(self, quick: bool = False) -> OptimizeSpec:
        """The concrete spec (full-scale, or the quick CI variant)."""
        return self.builder(quick)


def _case_study_power(quick: bool) -> OptimizeSpec:
    """Adaptive BO/SO search of the case study's power/delay trade-off.

    Searches the same design space as the ``case_study_power_grid``
    reference sweep with *half* the evaluation budget; the acceptance
    bar (pinned in the tests) is that the optimizer's knee point matches
    or dominates the exhaustive grid's knee.  ``superframe_order``
    choices stay at or below the smallest beacon order — the superframe
    structure rejects SO > BO.
    """
    if quick:
        dimensions = {"beacon_order": IntDimension(3, 6),
                      "superframe_order": ChoiceDimension((None, 2, 3))}
        base = {"total_nodes": 32, "num_channels": 2, "superframes": 4}
        budget = {"max_points": 6, "initial_points": 4, "batch_size": 2}
    else:
        dimensions = {"beacon_order": IntDimension(3, 8),
                      "superframe_order": ChoiceDimension((None, 2, 3))}
        base = {}
        budget = {"max_points": 9, "initial_points": 5, "batch_size": 2}
    return OptimizeSpec(
        name="case_study_power", experiment="case_study_full",
        dimensions=dimensions, objectives=TRADEOFF_OBJECTIVES,
        base_params=base, patience=2, **budget,
        title="Adaptive BO/SO search of the power/delay/reliability "
              "trade-off at half the reference grid's budget")


_OPTIMIZE_DEFINITIONS: Dict[str, OptimizeDefinition] = {
    definition.name: definition for definition in (
        OptimizeDefinition("case_study_power",
                           "adaptive BO/SO power-trade-off search "
                           "(half the reference grid's budget)",
                           _case_study_power,
                           reference_sweep="case_study_power_grid"),
    )
}


def optimize_names() -> Tuple[str, ...]:
    """All registered optimizer names, sorted."""
    return tuple(sorted(_OPTIMIZE_DEFINITIONS))


def iter_optimize_definitions() -> Iterator[OptimizeDefinition]:
    """The optimizer catalogue entries, in name order."""
    for name in optimize_names():
        yield _OPTIMIZE_DEFINITIONS[name]


def get_optimize_definition(name: str) -> OptimizeDefinition:
    """The optimizer entry for ``name`` (with close-match suggestions)."""
    try:
        return _OPTIMIZE_DEFINITIONS[name]
    except KeyError:
        raise UnknownOptimizeError(name, optimize_names()) from None


def get_optimize(name: str, quick: bool = False) -> OptimizeSpec:
    """Build the named optimizer's spec (quick CI variant on request)."""
    return get_optimize_definition(name).build(quick)


def sweep_names() -> Tuple[str, ...]:
    """All registered sweep names, sorted."""
    return tuple(sorted(_DEFINITIONS))


def iter_definitions() -> Iterator[SweepDefinition]:
    """The catalogue entries, in name order."""
    for name in sweep_names():
        yield _DEFINITIONS[name]


def get_definition(name: str) -> SweepDefinition:
    """The catalogue entry for ``name`` (with close-match suggestions)."""
    try:
        return _DEFINITIONS[name]
    except KeyError:
        raise UnknownSweepError(name, sweep_names()) from None


def get_sweep(name: str, quick: bool = False) -> SweepSpec:
    """Build the named sweep's spec (quick CI variant on request)."""
    return get_definition(name).build(quick)
