"""Design-space exploration: declarative sweeps over registered experiments.

The subsystem turns any experiment of the engine's registry into a
multi-point design-space study:

* :mod:`repro.sweep.spec` — :class:`SweepSpec` with grid/range/seeded-random
  axes, stable JSON serialisation and a content hash;
* :mod:`repro.sweep.driver` — :func:`run_sweep`: expansion into engine
  tasks, chunk-wise dispatch through the serial/process-pool executors,
  per-point cache keys so interrupted or repeated sweeps resume from the
  result cache instead of recomputing;
* :mod:`repro.sweep.optimize` — :func:`run_optimize`: adaptive
  design-space search (seeded successive halving + a k-NN acquisition)
  proposing batches over typed dimensions, dispatched through the same
  executor/cache path — a warm re-run replays the identical proposal
  sequence from the cache and recomputes nothing;
* :mod:`repro.sweep.analysis` — grouping/aggregation helpers, Pareto-front
  extraction and knee-point selection over arbitrary objectives;
* :mod:`repro.sweep.artifacts` — byte-reproducible CSV/JSON exports plus a
  manifest (spec hash, code version, seeds, cache keys);
* :mod:`repro.sweep.catalog` — the registered headline sweeps
  (``node_density``, ``duty_cycle``, ``tx_policy``);
* :mod:`repro.sweep.cli` — the ``python -m repro sweep`` command tree.

Quick start::

    from repro.sweep import GridAxis, SweepSpec, run_sweep, pareto_front

    spec = SweepSpec(name="density", experiment="case_study_full",
                     axes={"total_nodes": GridAxis((400, 1600, 3200))},
                     objectives={"mean_power_uw": "min",
                                 "failure_probability": "min"})
    result = run_sweep(spec, jobs=4)          # re-run resumes from cache
    front = pareto_front(result.rows, spec.objectives)
"""

from repro.sweep.analysis import (GroupedRows, UnknownMetricError,
                                  aggregate_rows, dominates, group_rows,
                                  knee_point, pareto_front, require_metrics)
from repro.sweep.artifacts import (export_optimize, export_sweep,
                                   optimize_manifest, ordered_columns,
                                   rows_to_csv_text, rows_to_json_text,
                                   sweep_manifest, write_rows)
from repro.sweep.catalog import (OptimizeDefinition, SweepDefinition,
                                 UnknownOptimizeError, UnknownSweepError,
                                 get_definition, get_optimize,
                                 get_optimize_definition, get_sweep,
                                 iter_definitions,
                                 iter_optimize_definitions, optimize_names,
                                 sweep_names)
from repro.sweep.driver import (SweepPoint, SweepRunResult, SweepStatus,
                                build_points, dispatch_points,
                                expand_points, extract_point_metrics,
                                run_sweep, sweep_status)
from repro.sweep.optimize import (ChoiceDimension, FloatDimension,
                                  IntDimension, OptimizeResult,
                                  OptimizeRound, OptimizeSpec,
                                  dimension_from_payload,
                                  optimize_spec_from_payload, run_optimize)
from repro.sweep.spec import (GridAxis, RandomAxis, RangeAxis, SweepSpec,
                              axis_from_payload, spec_from_payload)

__all__ = [
    "ChoiceDimension",
    "FloatDimension",
    "GridAxis",
    "GroupedRows",
    "IntDimension",
    "OptimizeDefinition",
    "OptimizeResult",
    "OptimizeRound",
    "OptimizeSpec",
    "RandomAxis",
    "RangeAxis",
    "SweepDefinition",
    "SweepPoint",
    "SweepRunResult",
    "SweepSpec",
    "SweepStatus",
    "UnknownMetricError",
    "UnknownOptimizeError",
    "UnknownSweepError",
    "aggregate_rows",
    "axis_from_payload",
    "build_points",
    "dimension_from_payload",
    "dispatch_points",
    "dominates",
    "expand_points",
    "export_optimize",
    "export_sweep",
    "extract_point_metrics",
    "get_definition",
    "get_optimize",
    "get_optimize_definition",
    "get_sweep",
    "group_rows",
    "iter_definitions",
    "iter_optimize_definitions",
    "knee_point",
    "optimize_manifest",
    "optimize_names",
    "optimize_spec_from_payload",
    "ordered_columns",
    "pareto_front",
    "require_metrics",
    "rows_to_csv_text",
    "rows_to_json_text",
    "run_optimize",
    "run_sweep",
    "spec_from_payload",
    "sweep_manifest",
    "sweep_names",
    "sweep_status",
    "write_rows",
]
