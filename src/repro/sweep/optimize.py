"""Adaptive design-space optimizer over the sweep engine.

Where :func:`repro.sweep.driver.run_sweep` evaluates an explicit grid,
:func:`run_optimize` *searches*: it proposes batches of design points over
typed dimensions (:class:`IntDimension`, :class:`FloatDimension`,
:class:`ChoiceDimension`), evaluates each batch through the exact sweep
dispatch path (same executors, same content-addressed cache keys, same
tracer counters — see :func:`repro.sweep.driver.dispatch_points`), and uses
the observed metrics to steer the next batch.

The proposal engine is deliberately simple and *fully seeded*:

* **Round 0** draws ``initial_points`` uniform samples from the dimensions.
* **Later rounds** run successive halving + a Bayesian-lite acquisition:
  the elite set (best observed points by scalarised cost, halved every
  round) is perturbed with a shrinking radius into a candidate pool, mixed
  with a few uniform explorers; candidates are scored by a k-nearest
  inverse-distance surrogate of the cost minus an exploration bonus
  (distance to the nearest observed point), and the best ``batch_size``
  survivors are evaluated.
* The *scalar* cost of a point is the mean of its per-objective costs
  (max objectives negated), each min–max normalised over the observations
  so far; a missing objective value scores a fixed worst-case penalty.

Nothing consults the wall clock or unseeded randomness: round ``r`` draws
its generator from ``spawn_seeds(seed, "sweep.optimize.<name>.round<r>")``,
independent of the budget.  Three consequences, all tested:

* the same spec re-proposes the identical point sequence every run;
* a warm re-run finds every point in the result cache and recomputes
  nothing (``computed_points == 0``), with byte-identical artifacts;
* a smaller ``max_points`` budget evaluates a *prefix* of a larger
  budget's sequence (truncation only ever drops proposals from the tail
  of a round).

Stopping: the run ends with a ``stop_reason`` of ``"converged"`` (the
Pareto front's point set unchanged for ``patience`` consecutive rounds),
``"budget_exhausted"`` (``max_points`` evaluations spent),
``"max_rounds"``, or ``"space_exhausted"`` (a round proposed nothing new —
the discrete space is fully observed).
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.runner.cache import canonical_json
from repro.runner.engine import DEFAULT_SEED
from repro.runner.registry import ExperimentRegistry, default_registry
from repro.sim.random import spawn_seeds
from repro.sweep.analysis import (_cost_vector, knee_point, pareto_front,
                                  require_metrics)
from repro.sweep.driver import (SweepPoint, build_points, dispatch_points,
                                _wide_row)
from repro.sweep.spec import SENSE_MAX, SENSE_MIN

#: Seed-stream label prefix of the per-round proposal generators.
OPTIMIZE_SEED_STREAM = "sweep.optimize"

#: Normalised-cost penalty of a point missing an objective value (the
#: normalised observed range is [0, 1], so 2.0 is strictly worse than any
#: observed point).
MISSING_COST_PENALTY = 2.0

#: Perturbation radius of round 1 (fraction of each dimension's span),
#: halved every later round down to the floor.
INITIAL_RADIUS = 0.3
MIN_RADIUS = 0.05

#: Perturbed candidates generated per elite, and the exploration weight of
#: the acquisition score (bonus per unit of distance to the nearest
#: observed point in the unit cube).
PERTURBATIONS_PER_ELITE = 4
EXPLORATION_WEIGHT = 0.5

#: Neighbours of the k-NN inverse-distance cost surrogate.
SURROGATE_NEIGHBOURS = 3


@dataclass(frozen=True)
class IntDimension:
    """An integer dimension searched over the inclusive ``[low, high]`` range.

    >>> IntDimension(3, 6).sample(np.random.default_rng(0)) in (3, 4, 5, 6)
    True
    """

    low: int
    high: int

    def __post_init__(self):
        if int(self.low) != self.low or int(self.high) != self.high:
            raise ValueError("IntDimension bounds must be integers")
        object.__setattr__(self, "low", int(self.low))
        object.__setattr__(self, "high", int(self.high))
        if self.high < self.low:
            raise ValueError("IntDimension needs high >= low")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def perturb(self, value: Any, rng: np.random.Generator,
                radius: float) -> int:
        span = max(1.0, float(self.high - self.low))
        step = rng.normal(0.0, radius * span)
        moved = int(round(float(value) + step))
        return int(min(self.high, max(self.low, moved)))

    def to_unit(self, value: Any) -> float:
        if self.high == self.low:
            return 0.5
        return (float(value) - self.low) / (self.high - self.low)

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": "int", "low": self.low, "high": self.high}


@dataclass(frozen=True)
class FloatDimension:
    """A float dimension over ``[low, high]``; ``spacing="log"`` searches
    (samples, perturbs and measures distance) in log space.

    >>> dim = FloatDimension(1e-3, 1.0, spacing="log")
    >>> 1e-3 <= dim.sample(np.random.default_rng(0)) <= 1.0
    True
    """

    low: float
    high: float
    spacing: str = "linear"

    def __post_init__(self):
        object.__setattr__(self, "low", float(self.low))
        object.__setattr__(self, "high", float(self.high))
        if self.high < self.low:
            raise ValueError("FloatDimension needs high >= low")
        if self.spacing not in ("linear", "log"):
            raise ValueError(f"Unknown spacing {self.spacing!r}")
        if self.spacing == "log" and self.low <= 0:
            raise ValueError("log spacing needs positive endpoints")

    def _bounds(self) -> Tuple[float, float]:
        if self.spacing == "log":
            return math.log(self.low), math.log(self.high)
        return self.low, self.high

    def _from_scale(self, scaled: float) -> float:
        if self.spacing == "log":
            return float(math.exp(scaled))
        return float(scaled)

    def _to_scale(self, value: Any) -> float:
        if self.spacing == "log":
            return math.log(float(value))
        return float(value)

    def sample(self, rng: np.random.Generator) -> float:
        lo, hi = self._bounds()
        return self._from_scale(float(rng.uniform(lo, hi)))

    def perturb(self, value: Any, rng: np.random.Generator,
                radius: float) -> float:
        lo, hi = self._bounds()
        span = hi - lo
        if span == 0:
            return float(self.low)
        moved = self._to_scale(value) + float(rng.normal(0.0, radius * span))
        return self._from_scale(min(hi, max(lo, moved)))

    def to_unit(self, value: Any) -> float:
        lo, hi = self._bounds()
        if hi == lo:
            return 0.5
        return (self._to_scale(value) - lo) / (hi - lo)

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": "float", "low": self.low, "high": self.high,
                "spacing": self.spacing}


@dataclass(frozen=True)
class ChoiceDimension:
    """A categorical dimension over an explicit value tuple.

    Perturbation re-draws uniformly with a radius-dependent probability
    (categories have no neighbourhood structure); unit distance is by
    declaration index.

    >>> ChoiceDimension((None, 2, 3)).sample(np.random.default_rng(1)) \
        in (None, 2, 3)
    True
    """

    values: Tuple[Any, ...]

    def __post_init__(self):
        if not self.values:
            raise ValueError("ChoiceDimension needs at least one value")
        object.__setattr__(self, "values", tuple(self.values))

    def _index(self, value: Any) -> int:
        for index, candidate in enumerate(self.values):
            # values are canonical; discriminate bool from int spellings
            if isinstance(candidate, bool) != isinstance(value, bool):
                continue
            if candidate == value:
                return index
        raise ValueError(f"{value!r} is not one of {self.values!r}")

    def sample(self, rng: np.random.Generator) -> Any:
        return self.values[int(rng.integers(0, len(self.values)))]

    def perturb(self, value: Any, rng: np.random.Generator,
                radius: float) -> Any:
        if float(rng.random()) < max(0.25, radius):
            return self.sample(rng)
        return value

    def to_unit(self, value: Any) -> float:
        if len(self.values) == 1:
            return 0.5
        return self._index(value) / (len(self.values) - 1)

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": "choice", "values": list(self.values)}


#: Payload ``kind`` -> dimension class, for :func:`dimension_from_payload`.
_DIMENSION_KINDS = {"int": IntDimension, "float": FloatDimension,
                    "choice": ChoiceDimension}


def dimension_from_payload(payload: Mapping[str, Any]):
    """Rebuild a dimension from its ``to_payload`` dict."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind not in _DIMENSION_KINDS:
        raise ValueError(f"Unknown dimension kind {kind!r}; known kinds: "
                         f"{', '.join(sorted(_DIMENSION_KINDS))}")
    if kind == "choice":
        return ChoiceDimension(tuple(data["values"]))
    return _DIMENSION_KINDS[kind](**data)


@dataclass(frozen=True)
class OptimizeSpec:
    """One declarative adaptive search over an experiment's design space.

    The optimizer sibling of :class:`repro.sweep.spec.SweepSpec`: the same
    build-time schema validation (unknown experiment/parameter or
    out-of-domain dimension bound fails before any compute), the same
    canonical JSON payload and stable hash, the same ``registry``-is-policy
    convention (excluded from identity).

    Attributes
    ----------
    name / experiment / base_params / seed / title / registry:
        As on :class:`~repro.sweep.spec.SweepSpec`; ``seed`` is both every
        point's experiment seed and the sole entropy source of the
        proposal engine.
    dimensions:
        Parameter name -> searched dimension.
    objectives:
        Metric name -> ``"min"``/``"max"``; **required** (an optimizer
        without objectives has nothing to optimise).
    max_points:
        Total evaluation budget across all rounds.
    initial_points:
        Size of the round-0 uniform batch.
    batch_size:
        Proposals evaluated per adaptive round.
    patience:
        Consecutive rounds the Pareto front may stay unchanged before the
        run stops as converged.
    max_rounds:
        Hard round cap (``None``: unlimited — budget or convergence stop
        the run).
    """

    name: str
    experiment: str
    dimensions: Mapping[str, Any]
    objectives: Mapping[str, str]
    base_params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = DEFAULT_SEED
    max_points: int = 16
    initial_points: int = 6
    batch_size: int = 3
    patience: int = 2
    max_rounds: Optional[int] = None
    title: str = ""
    registry: Optional[Any] = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if not self.dimensions:
            raise ValueError("OptimizeSpec needs at least one dimension")
        if not self.objectives:
            raise ValueError("OptimizeSpec needs at least one objective")
        object.__setattr__(self, "dimensions", dict(self.dimensions))
        object.__setattr__(self, "base_params", dict(self.base_params))
        object.__setattr__(self, "objectives", dict(self.objectives))
        overlap = set(self.dimensions) & set(self.base_params)
        if overlap:
            raise ValueError(
                f"Parameters {sorted(overlap)} appear both as dimensions "
                f"and in base_params; a proposed value would silently win")
        for metric, sense in self.objectives.items():
            if sense not in (SENSE_MIN, SENSE_MAX):
                raise ValueError(
                    f"Objective {metric!r} has sense {sense!r}; "
                    f"use '{SENSE_MIN}' or '{SENSE_MAX}'")
        if self.max_points < 1:
            raise ValueError("OptimizeSpec needs max_points >= 1")
        if self.initial_points < 1:
            raise ValueError("OptimizeSpec needs initial_points >= 1")
        if self.batch_size < 1:
            raise ValueError("OptimizeSpec needs batch_size >= 1")
        if self.patience < 1:
            raise ValueError("OptimizeSpec needs patience >= 1")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError("OptimizeSpec needs max_rounds >= 1 (or None)")
        self._validate_against_schema()

    def _validate_against_schema(self) -> None:
        """Validate bounds/choices and base params against the experiment.

        Choice values and base parameters are stored in canonical coerced
        form (equivalent spellings hash identically — matching the
        engine's canonical cache keys); Int/Float dimension *bounds* are
        validated so an out-of-domain search range fails at build time.
        """
        registry = self.registry
        if registry is None:
            registry = default_registry()
        schema = registry.get(self.experiment).schema

        def canonical(name, value):
            return schema.validate(name, value, experiment=self.experiment)

        object.__setattr__(self, "base_params",
                           {name: canonical(name, value)
                            for name, value in self.base_params.items()})
        dimensions = {}
        for name, dimension in self.dimensions.items():
            if isinstance(dimension, ChoiceDimension):
                dimensions[name] = ChoiceDimension(
                    tuple(canonical(name, value)
                          for value in dimension.values))
            else:
                canonical(name, dimension.low)
                canonical(name, dimension.high)
                dimensions[name] = dimension
        object.__setattr__(self, "dimensions", dimensions)

    # -- derivation -----------------------------------------------------------
    def with_overrides(self, overrides: Mapping[str, Any]) -> "OptimizeSpec":
        """A copy with ``overrides`` merged into ``base_params``.

        Overriding a parameter the optimizer *searches* is rejected —
        pinning a dimension would silently change the design space.
        """
        overlap = sorted(set(overrides) & set(self.dimensions))
        if overlap:
            raise ValueError(
                f"Optimizer {self.name!r} searches {', '.join(overlap)} as "
                f"dimension(s); remove the override or define a new spec")
        merged = {**self.base_params, **dict(overrides)}
        return OptimizeSpec(name=self.name, experiment=self.experiment,
                            dimensions=self.dimensions,
                            objectives=self.objectives, base_params=merged,
                            seed=self.seed, max_points=self.max_points,
                            initial_points=self.initial_points,
                            batch_size=self.batch_size,
                            patience=self.patience,
                            max_rounds=self.max_rounds, title=self.title,
                            registry=self.registry)

    def dimension_names(self) -> List[str]:
        """The searched parameter names, in declaration order."""
        return list(self.dimensions)

    # -- serialisation --------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe description of the search (manifest / hash input)."""
        from repro.runner.drivers import jsonify
        return {
            "name": self.name,
            "experiment": self.experiment,
            "dimensions": {name: dimension.to_payload()
                           for name, dimension in self.dimensions.items()},
            "objectives": dict(self.objectives),
            "base_params": jsonify(dict(self.base_params)),
            "seed": self.seed,
            "max_points": self.max_points,
            "initial_points": self.initial_points,
            "batch_size": self.batch_size,
            "patience": self.patience,
            "max_rounds": self.max_rounds,
            "title": self.title,
        }

    def spec_hash(self) -> str:
        """Stable 16-hex-digit identity of the search's *definition*."""
        encoded = canonical_json(self.to_payload()).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()[:16]


def optimize_spec_from_payload(payload: Mapping[str, Any]) -> OptimizeSpec:
    """Rebuild an :class:`OptimizeSpec` from :meth:`OptimizeSpec.to_payload`."""
    return OptimizeSpec(
        name=payload["name"],
        experiment=payload["experiment"],
        dimensions={name: dimension_from_payload(dimension)
                    for name, dimension in payload["dimensions"].items()},
        objectives=dict(payload["objectives"]),
        base_params=dict(payload.get("base_params", {})),
        seed=payload.get("seed", DEFAULT_SEED),
        max_points=payload.get("max_points", 16),
        initial_points=payload.get("initial_points", 6),
        batch_size=payload.get("batch_size", 3),
        patience=payload.get("patience", 2),
        max_rounds=payload.get("max_rounds"),
        title=payload.get("title", ""),
    )


@dataclass(frozen=True)
class OptimizeRound:
    """One evaluated proposal batch of an optimizer run."""

    index: int
    proposals: List[Dict[str, Any]]
    point_indices: List[int]
    computed: int
    cached: int
    front_points: List[int]

    def to_payload(self) -> Dict[str, Any]:
        """Deterministic manifest entry: what was proposed and the front
        after the round (cache diagnostics deliberately excluded)."""
        return {"round": self.index,
                "proposals": [dict(values) for values in self.proposals],
                "point_indices": list(self.point_indices),
                "front_points": list(self.front_points)}


@dataclass
class OptimizeResult:
    """Outcome of one :func:`run_optimize` call.

    Shaped like :class:`repro.sweep.driver.SweepRunResult` (wide ``rows``
    in evaluation order, cache accounting, metric names) plus the
    optimizer's trajectory: per-round batches and the stop reason.
    """

    spec: OptimizeSpec
    points: List[SweepPoint]
    rows: List[Dict[str, Any]]
    rounds: List[OptimizeRound]
    stop_reason: str
    computed_points: int
    cached_points: int
    elapsed_s: float
    metric_names: List[str] = field(default_factory=list)

    def front(self) -> List[Dict[str, Any]]:
        """The final Pareto front over the spec's objectives."""
        return pareto_front(self.rows, dict(self.spec.objectives))

    def knee(self) -> Optional[Dict[str, Any]]:
        """The knee point of the final front (utopia-distance rule)."""
        return knee_point(self.front(), dict(self.spec.objectives))

    def to_table(self, title: Optional[str] = None) -> str:
        """Render the evaluated points as an ASCII table."""
        from repro.analysis.tables import format_table
        headers = (["point"] + self.spec.dimension_names()
                   + self.metric_names)
        rows = [["-" if row.get(header) is None else row.get(header, "-")
                 for header in headers] for row in self.rows]
        return format_table(headers, rows,
                            title=title or f"optimize {self.spec.name} "
                                           f"({self.spec.experiment})")


def _round_rng(spec: OptimizeSpec, round_index: int) -> np.random.Generator:
    """The (budget-independent) generator of one proposal round."""
    stream = f"{OPTIMIZE_SEED_STREAM}.{spec.name}.round{round_index}"
    return np.random.default_rng(spawn_seeds(spec.seed, stream, 1)[0])


def _proposal_token(values: Mapping[str, Any]) -> str:
    """Canonical identity of one proposal (dedup key)."""
    return canonical_json(dict(values))


def _scalar_costs(rows: Sequence[Mapping[str, Any]],
                  objectives: Mapping[str, str]) -> List[float]:
    """Scalarised cost per row: mean of min–max-normalised objective costs.

    Normalisation bounds come from the *finite observed* values of each
    objective; a missing value scores :data:`MISSING_COST_PENALTY` in that
    objective (strictly worse than any observation).  Lower is better.
    """
    vectors = [_cost_vector(row, objectives) for row in rows]
    dims = len(objectives)
    bounds: List[Tuple[float, float]] = []
    for d in range(dims):
        finite = [vector[d] for vector in vectors
                  if math.isfinite(vector[d])]
        bounds.append((min(finite), max(finite)) if finite else (0.0, 0.0))
    costs: List[float] = []
    for vector in vectors:
        total = 0.0
        for d in range(dims):
            low, high = bounds[d]
            if not math.isfinite(vector[d]):
                total += MISSING_COST_PENALTY
            elif high > low:
                total += (vector[d] - low) / (high - low)
        costs.append(total / dims)
    return costs


def _unit_vector(spec: OptimizeSpec,
                 values: Mapping[str, Any]) -> Tuple[float, ...]:
    return tuple(spec.dimensions[name].to_unit(values[name])
                 for name in spec.dimension_names())


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def _surrogate_cost(candidate: Sequence[float],
                    observed: Sequence[Tuple[Tuple[float, ...], float]]
                    ) -> float:
    """k-NN inverse-distance prediction of the candidate's scalar cost."""
    distances = sorted(((_distance(candidate, unit), cost)
                        for unit, cost in observed), key=lambda d: d[0])
    nearest = distances[:SURROGATE_NEIGHBOURS]
    if nearest[0][0] < 1e-12:
        return nearest[0][1]
    weights = [1.0 / (distance + 1e-9) for distance, _ in nearest]
    return sum(weight * cost for weight, (_, cost)
               in zip(weights, nearest)) / sum(weights)


def _initial_proposals(spec: OptimizeSpec,
                       rng: np.random.Generator) -> List[Dict[str, Any]]:
    """Round 0: uniform samples, deduplicated, in draw order.

    Draws keep going (up to a fixed multiple of the request) until
    ``initial_points`` *distinct* proposals exist or the space looks
    exhausted — a small discrete space must not stall the run on
    collisions.
    """
    names = spec.dimension_names()
    proposals: List[Dict[str, Any]] = []
    seen: set = set()
    for _ in range(spec.initial_points * 16):
        if len(proposals) >= spec.initial_points:
            break
        values = {name: spec.dimensions[name].sample(rng) for name in names}
        token = _proposal_token(values)
        if token in seen:
            continue
        seen.add(token)
        proposals.append(values)
    return proposals


def _adaptive_proposals(spec: OptimizeSpec,
                        rng: np.random.Generator,
                        round_index: int,
                        rows: Sequence[Mapping[str, Any]],
                        evaluated_values: Sequence[Mapping[str, Any]],
                        observed_tokens: set) -> List[Dict[str, Any]]:
    """One successive-halving + acquisition round of proposals.

    Elites (the best observed points by scalar cost, halved every round)
    are perturbed with a shrinking radius and mixed with uniform
    explorers; novel candidates are ranked by surrogate cost minus the
    exploration bonus and the best ``batch_size`` survive.
    """
    names = spec.dimension_names()
    costs = _scalar_costs(rows, spec.objectives)
    order = sorted(range(len(rows)), key=lambda i: (costs[i], i))
    elite_count = max(1, math.ceil(spec.initial_points / 2 ** round_index))
    elites = order[:elite_count]
    radius = max(MIN_RADIUS, INITIAL_RADIUS * 0.5 ** (round_index - 1))

    pool: List[Dict[str, Any]] = []
    pool_tokens: set = set()

    def consider(values: Dict[str, Any]) -> None:
        token = _proposal_token(values)
        if token in observed_tokens or token in pool_tokens:
            return
        pool_tokens.add(token)
        pool.append(values)

    for row_index in elites:
        base = evaluated_values[row_index]
        for _ in range(PERTURBATIONS_PER_ELITE):
            consider({name: spec.dimensions[name].perturb(base[name], rng,
                                                          radius)
                      for name in names})
    for _ in range(max(2, elite_count)):
        consider({name: spec.dimensions[name].sample(rng) for name in names})
    if not pool:
        return []

    observed = [(_unit_vector(spec, values), cost)
                for values, cost in zip(evaluated_values, costs)]

    def acquisition(values: Mapping[str, Any]) -> float:
        unit = _unit_vector(spec, values)
        nearest = min(_distance(unit, seen_unit)
                      for seen_unit, _ in observed)
        return _surrogate_cost(unit, observed) \
            - EXPLORATION_WEIGHT * nearest

    scored = sorted(enumerate(pool),
                    key=lambda item: (acquisition(item[1]), item[0]))
    return [values for _, values in scored[:spec.batch_size]]


def run_optimize(spec: OptimizeSpec,
                 jobs: int = 1,
                 cache: Any = True,
                 cache_root: Optional[str] = None,
                 registry: Optional[ExperimentRegistry] = None,
                 executor=None,
                 tracer: Any = None,
                 on_point=None) -> OptimizeResult:
    """Run the adaptive search; every batch resumes from the result cache.

    Proposal batches dispatch through
    :func:`repro.sweep.driver.dispatch_points` — the same executor fan-out,
    cache-key and tracer-counter path as :func:`run_sweep` — so a warm
    re-run of the same spec replays the identical proposal sequence from
    the cache and recomputes nothing.

    An objective no evaluated point produced raises
    :class:`repro.sweep.analysis.UnknownMetricError` (with did-you-mean
    suggestions) after the first batch, before any further compute.

    Parameters mirror :func:`repro.sweep.driver.run_sweep`; ``on_point``
    streams ``(point_index, wide_row)`` as points complete.

    Returns
    -------
    OptimizeResult
        Wide rows in evaluation order, the per-round trajectory and the
        stop reason.
    """
    from repro.obs.tracer import activate, current_tracer
    from repro.runner.executor import make_executor
    start = time.perf_counter()
    registry = registry or spec.registry  # None: workers use the default
    executor = executor if executor is not None else make_executor(jobs)
    tracer = tracer if tracer is not None else current_tracer()

    points: List[SweepPoint] = []
    rows: List[Dict[str, Any]] = []
    evaluated_values: List[Dict[str, Any]] = []
    observed_tokens: set = set()
    outcomes: List[Dict[str, Any]] = []
    rounds: List[OptimizeRound] = []
    front_signature: Optional[frozenset] = None
    stale_rounds = 0
    stop_reason = "max_rounds"

    with activate(tracer), \
            tracer.span(f"optimize:{spec.name}", kind="optimize",
                        optimize=spec.name, experiment=spec.experiment,
                        max_points=spec.max_points):
        round_index = 0
        while True:
            rng = _round_rng(spec, round_index)
            if round_index == 0:
                proposals = _initial_proposals(spec, rng)
            else:
                proposals = _adaptive_proposals(spec, rng, round_index,
                                                rows, evaluated_values,
                                                observed_tokens)
            if not proposals:
                stop_reason = "space_exhausted"
                break
            # Budget truncation happens here and only here — proposals are
            # generated budget-independently, so a smaller budget evaluates
            # a prefix of a larger budget's sequence.
            remaining = spec.max_points - len(points)
            proposals = proposals[:remaining]
            batch = build_points(spec.experiment, proposals,
                                 base_params=spec.base_params,
                                 seed=spec.seed, cache=cache,
                                 cache_root=cache_root, registry=registry,
                                 start_index=len(points))
            batch_outcomes = dispatch_points(
                spec.experiment, batch, spec.seed, cache=cache,
                cache_root=cache_root, registry=registry, executor=executor,
                tracer=tracer, on_point=on_point,
                label=f"optimize {spec.name} round {round_index}",
                span_name=f"optimize:{spec.name}:round{round_index}",
                span_attributes={"optimize": spec.name,
                                 "round": round_index})
            points.extend(batch)
            outcomes.extend(batch_outcomes)
            for point, outcome in zip(batch, batch_outcomes):
                rows.append(_wide_row(point, outcome))
                evaluated_values.append(dict(point.axis_values))
                observed_tokens.add(_proposal_token(point.axis_values))
            if round_index == 0:
                observed = sorted({name for outcome in outcomes
                                   for name in outcome["metrics"]})
                require_metrics(spec.objectives, observed,
                                context=f"optimize {spec.name!r}")

            front = pareto_front(rows, dict(spec.objectives))
            signature = frozenset(row["point"] for row in front)
            if signature == front_signature:
                stale_rounds += 1
            else:
                stale_rounds = 0
            front_signature = signature
            rounds.append(OptimizeRound(
                index=round_index, proposals=proposals,
                point_indices=[point.index for point in batch],
                computed=sum(1 for outcome in batch_outcomes
                             if not outcome["cache_hit"]),
                cached=sum(1 for outcome in batch_outcomes
                           if outcome["cache_hit"]),
                front_points=sorted(signature)))

            if len(points) >= spec.max_points:
                stop_reason = "budget_exhausted"
                break
            if stale_rounds >= spec.patience:
                stop_reason = "converged"
                break
            round_index += 1
            if spec.max_rounds is not None and round_index >= spec.max_rounds:
                stop_reason = "max_rounds"
                break

    metric_names = sorted({name for outcome in outcomes
                           for name in outcome["metrics"]})
    cached = sum(1 for outcome in outcomes if outcome["cache_hit"])
    return OptimizeResult(spec=spec, points=points, rows=rows,
                          rounds=rounds, stop_reason=stop_reason,
                          computed_points=len(points) - cached,
                          cached_points=cached,
                          elapsed_s=time.perf_counter() - start,
                          metric_names=metric_names)
