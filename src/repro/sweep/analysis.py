"""Analysis helpers over sweep rows: grouping, Pareto fronts, knee points.

All helpers operate on plain row dicts (the wide rows of
:class:`repro.sweep.driver.SweepRunResult` — or any list of dicts), so they
compose with the artifact writers and with hand-built tables alike.

*Objectives* are a mapping ``metric name -> "min" | "max"``.  Internally
every objective is turned into a cost (max objectives are negated) and
missing values (``None`` or absent keys) are treated as *worst possible* —
a point that never delivered a packet has no delay to report, and must not
dominate a point that did.

>>> rows = [{"power": 1.0, "fail": 0.5}, {"power": 2.0, "fail": 0.1},
...         {"power": 3.0, "fail": 0.5}]
>>> front = pareto_front(rows, {"power": "min", "fail": "min"})
>>> [row["power"] for row in front]
[1.0, 2.0]
"""

from __future__ import annotations

import difflib
import math
from typing import (Any, Callable, Dict, Hashable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple)

from repro.analysis.keys import typed_key
from repro.sweep.spec import SENSE_MAX, SENSE_MIN

#: Statistics understood by :func:`aggregate_rows`.
_STATISTICS: Dict[str, Callable[[List[float]], float]] = {
    "mean": lambda values: sum(values) / len(values),
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
}


class UnknownMetricError(KeyError):
    """A requested objective/metric name was produced by no point.

    Before this error existed, an objective absent from every payload
    flowed through :func:`repro.sweep.driver.extract_point_metrics` and
    ``long_rows`` as a silent ``None`` — which the Pareto helpers count as
    *worst possible*, so a typo'd objective quietly produced an empty or
    meaningless front.  The optimizer and the artifact exporters now fail
    loudly instead, with ``difflib`` close-match suggestions over the
    metric names the sweep actually observed.

    A :class:`KeyError` subclass so callers catching ``KeyError`` (the
    CLI's shared error path) render the message without a traceback.
    """

    def __init__(self, name: str, observed: Sequence[str],
                 context: str = ""):
        self.name = name
        self.observed = tuple(observed)
        prefix = f"{context}: " if context else ""
        message = (f"{prefix}no point produced metric {name!r}; observed "
                   f"metrics: {', '.join(sorted(self.observed)) or '(none)'}.")
        suggestions = difflib.get_close_matches(name, self.observed, n=3)
        if suggestions:
            message += f" Did you mean: {', '.join(suggestions)}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0]


def require_metrics(requested: Mapping[str, Any] | Sequence[str],
                    observed: Sequence[str],
                    context: str = "") -> None:
    """Fail loudly when a requested metric was produced by no point.

    ``requested`` is a sequence of metric names or an objectives mapping
    (its keys are checked); ``observed`` the metric names the sweep or
    optimizer actually collected.  Raises :class:`UnknownMetricError` —
    with did-you-mean suggestions — for the first missing name.
    """
    names = list(requested)
    available = set(observed)
    for name in names:
        if name not in available:
            raise UnknownMetricError(name, tuple(observed), context)


def _cost_vector(row: Mapping[str, Any],
                 objectives: Mapping[str, str]) -> Tuple[float, ...]:
    """The row's objectives as minimisation costs (missing -> +inf)."""
    costs: List[float] = []
    for metric, sense in objectives.items():
        value = row.get(metric)
        if value is None or not isinstance(value, (int, float)) \
                or isinstance(value, bool) or math.isnan(value):
            costs.append(math.inf)
        elif sense == SENSE_MAX:
            costs.append(-float(value))
        else:
            costs.append(float(value))
    return tuple(costs)


def _validate_objectives(objectives: Mapping[str, str]) -> None:
    if not objectives:
        raise ValueError("At least one objective is required")
    for metric, sense in objectives.items():
        if sense not in (SENSE_MIN, SENSE_MAX):
            raise ValueError(f"Objective {metric!r} has sense {sense!r}; "
                             f"use '{SENSE_MIN}' or '{SENSE_MAX}'")


def dominates(row: Mapping[str, Any], other: Mapping[str, Any],
              objectives: Mapping[str, str]) -> bool:
    """Whether ``row`` Pareto-dominates ``other``.

    ``row`` dominates when it is at least as good in every objective and
    strictly better in at least one.
    """
    _validate_objectives(objectives)
    a = _cost_vector(row, objectives)
    b = _cost_vector(other, objectives)
    return all(x <= y for x, y in zip(a, b)) and \
        any(x < y for x, y in zip(a, b))


def pareto_front(rows: Sequence[Mapping[str, Any]],
                 objectives: Mapping[str, str]) -> List[Dict[str, Any]]:
    """The non-dominated subset of ``rows``, in input order.

    Points whose *every* objective is missing (all-``inf`` cost vectors)
    are excluded — they carry no trade-off information.  Ties (identical
    cost vectors) all stay on the front.
    """
    _validate_objectives(objectives)
    costs = [_cost_vector(row, objectives) for row in rows]
    front: List[Dict[str, Any]] = []
    for i, (row, cost) in enumerate(zip(rows, costs)):
        if all(math.isinf(component) for component in cost):
            continue
        dominated = any(
            all(x <= y for x, y in zip(other, cost)) and
            any(x < y for x, y in zip(other, cost))
            for j, other in enumerate(costs) if j != i)
        if not dominated:
            front.append(dict(row))
    return front


def knee_point(rows: Sequence[Mapping[str, Any]],
               objectives: Mapping[str, str]) -> Optional[Dict[str, Any]]:
    """The balanced trade-off point of a front (utopia-distance rule).

    Every objective is normalised to ``[0, 1]`` over the given rows (a
    degenerate objective with zero spread contributes nothing) and the row
    closest to the all-best corner in Euclidean distance wins; ties go to
    the earliest row.  Typically called on the output of
    :func:`pareto_front`; returns ``None`` for no (usable) rows.
    """
    _validate_objectives(objectives)
    usable = [(row, _cost_vector(row, objectives)) for row in rows]
    usable = [(row, cost) for row, cost in usable
              if not any(math.isinf(component) for component in cost)]
    if not usable:
        return None
    dimensions = len(objectives)
    lows = [min(cost[d] for _, cost in usable) for d in range(dimensions)]
    highs = [max(cost[d] for _, cost in usable) for d in range(dimensions)]
    best, best_distance = None, math.inf
    for row, cost in usable:
        distance = 0.0
        for d in range(dimensions):
            span = highs[d] - lows[d]
            if span > 0:
                distance += ((cost[d] - lows[d]) / span) ** 2
        distance = math.sqrt(distance)
        if distance < best_distance:
            best, best_distance = row, distance
    return dict(best) if best is not None else None


class GroupedRows(Mapping):
    """Insertion-ordered mapping ``key tuple -> rows``, type-aware for bools.

    Behaves like the plain dict :func:`group_rows` used to return — keys
    are tuples of the grouping column values, lookups accept those raw
    tuples — except that grouping discriminates ``bool`` from its numeric
    spelling: a ``True`` axis value and an ``1`` axis value land in (and
    look up) *different* groups, where a plain dict would silently merge
    them (``hash(True) == hash(1)``).  Iteration yields every group's raw
    key tuple, including both sides of a bool/int pair; only materialising
    the keys into a plain ``dict``/``set`` would re-conflate them.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        # typed key tuple -> (raw key tuple, rows)
        self._entries: Dict[Tuple[Hashable, ...],
                            Tuple[Tuple[Hashable, ...],
                                  List[Dict[str, Any]]]] = {}

    @staticmethod
    def _typed(key: Sequence[Hashable]) -> Tuple[Hashable, ...]:
        return tuple(typed_key(value) for value in key)

    def _append(self, key: Tuple[Hashable, ...], row: Dict[str, Any]) -> None:
        entry = self._entries.setdefault(self._typed(key), (key, []))
        entry[1].append(row)

    def __getitem__(self, key: Sequence[Hashable]) -> List[Dict[str, Any]]:
        return self._entries[self._typed(tuple(key))][1]

    def __iter__(self) -> Iterator[Tuple[Hashable, ...]]:
        return (raw for raw, _ in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GroupedRows({dict(self.items())!r})"


def group_rows(rows: Sequence[Mapping[str, Any]],
               by: Sequence[str]) -> GroupedRows:
    """Group rows by the values of the ``by`` columns (insertion-ordered).

    The returned mapping is dict-like (same iteration, lookup and
    ``items()`` behaviour as before) but type-aware: a boolean column
    value never shares a group with the equal-comparing integer (see
    :class:`GroupedRows`).
    """
    if not by:
        raise ValueError("group_rows needs at least one key column")
    groups = GroupedRows()
    for row in rows:
        key = tuple(row.get(column) for column in by)
        groups._append(key, dict(row))
    return groups


def aggregate_rows(rows: Sequence[Mapping[str, Any]],
                   by: Sequence[str],
                   metrics: Sequence[str],
                   statistics: Sequence[str] = ("mean",)
                   ) -> List[Dict[str, Any]]:
    """Aggregate metric columns over groups of rows.

    Produces one row per group with the ``by`` columns plus
    ``<metric>_<statistic>`` columns; ``None``/missing metric values are
    skipped, and a group with no usable values reports ``None``.

    >>> rows = [{"bo": 3, "p": 1.0}, {"bo": 3, "p": 3.0}, {"bo": 6, "p": 5.0}]
    >>> aggregate_rows(rows, by=["bo"], metrics=["p"])
    [{'bo': 3, 'p_mean': 2.0}, {'bo': 6, 'p_mean': 5.0}]
    """
    unknown = [stat for stat in statistics if stat not in _STATISTICS]
    if unknown:
        raise ValueError(f"Unknown statistics {unknown}; "
                         f"known: {', '.join(sorted(_STATISTICS))}")
    aggregated: List[Dict[str, Any]] = []
    for key, group in group_rows(rows, by).items():
        out: Dict[str, Any] = dict(zip(by, key))
        for metric in metrics:
            values = [row[metric] for row in group
                      if isinstance(row.get(metric), (int, float))
                      and not isinstance(row.get(metric), bool)
                      and not math.isnan(row[metric])]
            for stat in statistics:
                out[f"{metric}_{stat}"] = \
                    _STATISTICS[stat](values) if values else None
        aggregated.append(out)
    return aggregated
