"""Declarative description of a design-space sweep.

A :class:`SweepSpec` names one registered experiment and a set of *axes* —
parameter dimensions explored over an explicit grid (:class:`GridAxis`), an
evenly spaced range (:class:`RangeAxis`) or seeded random samples
(:class:`RandomAxis`).  Expanding the spec yields the cartesian product of
the axes in declaration order, each point a full parameter override for
:func:`repro.runner.engine.run_experiment` — which means every point gets
the engine's content-addressed cache key for free, and an interrupted sweep
resumes from the cache instead of recomputing (see
:mod:`repro.sweep.driver`).

Specs validate *at build time* against the target experiment's typed
parameter schema (:class:`repro.runner.params.ParamSchema`): an unknown
experiment, an unknown axis/base-parameter name or an out-of-domain value
raises before any compute, with a message naming the experiment, the
parameter and the allowed domain.

Specs serialise to plain JSON (:meth:`SweepSpec.to_payload` /
:func:`spec_from_payload`) and hash stably (:meth:`SweepSpec.spec_hash`), so
a sweep's exported manifest pins exactly what was explored.

>>> spec = SweepSpec(name="density", experiment="case_study_full",
...                  axes={"total_nodes": GridAxis((400, 1600))})
>>> [point["total_nodes"] for point in spec.expand_axes()]
[400, 1600]
>>> spec.spec_hash() == spec_from_payload(spec.to_payload()).spec_hash()
True
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.runner.cache import canonical_json
from repro.runner.engine import DEFAULT_SEED
from repro.sim.random import spawn_seeds

#: Seed-stream label of the per-axis sampling seeds (random axes).
AXIS_SEED_STREAM = "sweep.axes"

#: Objective senses understood by the analysis layer.
SENSE_MIN = "min"
SENSE_MAX = "max"


def _coerce(value: float, dtype: str) -> Any:
    if dtype == "int":
        return int(round(value))
    return float(value)


def _dedupe(values: List[Any]) -> List[Any]:
    """Drop repeated values, keeping first occurrences in order.

    ``dtype="int"`` rounding can collapse neighbouring range/random values
    onto the same integer; duplicate design points would waste simulations
    and inflate every count, so resolved axes are always unique.
    """
    seen = set()
    unique = []
    for value in values:
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return unique


@dataclass(frozen=True)
class GridAxis:
    """An explicit list of values (numeric or categorical).

    >>> GridAxis(("adaptive", "fixed")).resolve()
    ['adaptive', 'fixed']
    """

    values: Tuple[Any, ...]

    def __post_init__(self):
        if not self.values:
            raise ValueError("GridAxis needs at least one value")
        object.__setattr__(self, "values", tuple(self.values))

    def resolve(self, seed: Optional[int] = None) -> List[Any]:
        """The axis values (the seed is ignored; grids are deterministic)."""
        return list(self.values)

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": "grid", "values": list(self.values)}


@dataclass(frozen=True)
class RangeAxis:
    """``num`` evenly spaced values between ``start`` and ``stop`` inclusive.

    ``spacing="log"`` spaces the values geometrically (both endpoints must be
    positive); ``dtype="int"`` rounds every value to the nearest integer.

    >>> RangeAxis(start=400, stop=1600, num=4, dtype="int").resolve()
    [400, 800, 1200, 1600]
    """

    start: float
    stop: float
    num: int
    spacing: str = "linear"
    dtype: str = "float"

    def __post_init__(self):
        if self.num < 1:
            raise ValueError("RangeAxis needs num >= 1")
        if self.spacing not in ("linear", "log"):
            raise ValueError(f"Unknown spacing {self.spacing!r}")
        if self.dtype not in ("float", "int"):
            raise ValueError(f"Unknown dtype {self.dtype!r}")
        if self.spacing == "log" and (self.start <= 0 or self.stop <= 0):
            raise ValueError("log spacing needs positive endpoints")

    def resolve(self, seed: Optional[int] = None) -> List[Any]:
        """The spaced values, de-duplicated after any integer rounding
        (the seed is ignored; ranges are deterministic)."""
        if self.spacing == "log":
            values = np.geomspace(self.start, self.stop, self.num)
        else:
            values = np.linspace(self.start, self.stop, self.num)
        return _dedupe([_coerce(value, self.dtype) for value in values])

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": "range", "start": self.start, "stop": self.stop,
                "num": self.num, "spacing": self.spacing, "dtype": self.dtype}


@dataclass(frozen=True)
class RandomAxis:
    """``count`` seeded random samples from ``[low, high]``.

    The samples are drawn from the sweep's master seed and the axis name
    (see :meth:`SweepSpec.expand_axes`), so the same spec always explores
    the same points — a random axis is *sampled once per spec*, not per run.
    ``spacing="log"`` samples uniformly in log space.

    >>> axis = RandomAxis(low=1.0, high=2.0, count=3)
    >>> axis.resolve(seed=7) == axis.resolve(seed=7)
    True
    """

    low: float
    high: float
    count: int
    spacing: str = "linear"
    dtype: str = "float"

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("RandomAxis needs count >= 1")
        if self.high < self.low:
            raise ValueError("RandomAxis needs high >= low")
        if self.spacing not in ("linear", "log"):
            raise ValueError(f"Unknown spacing {self.spacing!r}")
        if self.dtype not in ("float", "int"):
            raise ValueError(f"Unknown dtype {self.dtype!r}")
        if self.spacing == "log" and self.low <= 0:
            raise ValueError("log spacing needs positive endpoints")

    def resolve(self, seed: Optional[int] = None) -> List[Any]:
        """Draw the samples (sorted, de-duplicated after any integer
        rounding); ``seed`` fully determines them."""
        rng = np.random.default_rng(seed)
        if self.spacing == "log":
            values = np.exp(rng.uniform(np.log(self.low), np.log(self.high),
                                        self.count))
        else:
            values = rng.uniform(self.low, self.high, self.count)
        return _dedupe([_coerce(value, self.dtype) for value in sorted(values)])

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": "random", "low": self.low, "high": self.high,
                "count": self.count, "spacing": self.spacing,
                "dtype": self.dtype}


#: Payload ``kind`` -> axis class, for :func:`axis_from_payload`.
_AXIS_KINDS = {"grid": GridAxis, "range": RangeAxis, "random": RandomAxis}


def axis_from_payload(payload: Mapping[str, Any]):
    """Rebuild an axis from its :meth:`to_payload` dict."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind not in _AXIS_KINDS:
        raise ValueError(f"Unknown axis kind {kind!r}; "
                         f"known kinds: {', '.join(sorted(_AXIS_KINDS))}")
    if kind == "grid":
        return GridAxis(tuple(data["values"]))
    return _AXIS_KINDS[kind](**data)


@dataclass(frozen=True)
class SweepSpec:
    """One declarative design-space exploration.

    Attributes
    ----------
    name:
        Identifier of the sweep (manifest, CLI, artifact file names).
    experiment:
        Registry name of the experiment every point runs
        (``python -m repro list``).
    axes:
        Parameter name -> axis.  Points are the cartesian product of the
        axes, varied in declaration order (the last axis varies fastest).
    base_params:
        Overrides shared by every point (merged under the axis values).
    seed:
        Master seed: both the experiment seed of every point and the
        entropy source of random axes.
    objectives:
        Metric name -> ``"min"``/``"max"`` for the Pareto analysis layer
        (:func:`repro.sweep.analysis.pareto_front`); optional.
    title:
        One-line human description.
    registry:
        Experiment registry the spec validates (and canonicalises) its
        parameters against; ``None`` uses the default catalogue.  Pass the
        same custom registry here and to
        :func:`repro.sweep.driver.run_sweep` when sweeping a non-catalogue
        experiment.  Not part of the spec's identity: excluded from
        payloads, hashes and equality.
    """

    name: str
    experiment: str
    axes: Mapping[str, Any]
    base_params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = DEFAULT_SEED
    objectives: Mapping[str, str] = field(default_factory=dict)
    title: str = ""
    registry: Optional[Any] = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if not self.axes:
            raise ValueError("SweepSpec needs at least one axis")
        object.__setattr__(self, "axes", dict(self.axes))
        object.__setattr__(self, "base_params", dict(self.base_params))
        object.__setattr__(self, "objectives", dict(self.objectives))
        overlap = set(self.axes) & set(self.base_params)
        if overlap:
            raise ValueError(
                f"Parameters {sorted(overlap)} appear both as axes and in "
                f"base_params; an axis value would silently win")
        for metric, sense in self.objectives.items():
            if sense not in (SENSE_MIN, SENSE_MAX):
                raise ValueError(
                    f"Objective {metric!r} has sense {sense!r}; "
                    f"use '{SENSE_MIN}' or '{SENSE_MAX}'")
        self._validate_against_schema()

    def _validate_against_schema(self) -> None:
        """Validate and canonicalise the spec against the experiment schema.

        Runs at spec-*build* time: an unknown experiment, an unknown
        parameter name or an out-of-domain axis value fails here — with a
        message naming the experiment, the parameter and the allowed domain
        — before any simulation (or even point expansion) starts.

        Base parameters and explicit grid values are stored in their
        *canonical* coerced form, so equivalent spellings of one design
        space (``superframes="4"`` vs ``4``) produce identical payloads,
        manifests and :meth:`spec_hash` values — matching the engine's
        canonical cache keys.
        """
        registry = self.registry
        if registry is None:
            from repro.runner.registry import default_registry
            registry = default_registry()
        schema = registry.get(self.experiment).schema

        def canonical(name, value):
            return schema.validate(name, value, experiment=self.experiment)

        object.__setattr__(self, "base_params",
                           {name: canonical(name, value)
                            for name, value in self.base_params.items()})
        axes = {name: GridAxis(tuple(canonical(name, value)
                                     for value in axis.values))
                if isinstance(axis, GridAxis) else axis
                for name, axis in self.axes.items()}
        object.__setattr__(self, "axes", axes)
        # Range/random axes generate their values; validate the generated
        # points (this also catches unknown non-grid axis names).
        for name, values in self.axis_values().items():
            for value in values:
                canonical(name, value)

    # -- derivation ---------------------------------------------------------------
    def with_overrides(self, overrides: Mapping[str, Any]) -> "SweepSpec":
        """A copy of this spec with ``overrides`` merged into ``base_params``.

        This is what the sweep CLI's ``--param`` flag builds; overriding a
        parameter the sweep *varies* is rejected (pinning an axis would
        silently change the design space's shape).  The copy re-validates
        against the experiment schema, so its hash and manifests stay
        honest.
        """
        overlap = sorted(set(overrides) & set(self.axes))
        if overlap:
            raise ValueError(
                f"Sweep {self.name!r} varies {', '.join(overlap)} as "
                f"axis/axes; remove the override or define a new spec")
        merged = {**self.base_params, **dict(overrides)}
        return SweepSpec(name=self.name, experiment=self.experiment,
                         axes=self.axes, base_params=merged, seed=self.seed,
                         objectives=self.objectives, title=self.title,
                         registry=self.registry)

    # -- expansion ----------------------------------------------------------------
    def axis_values(self) -> Dict[str, List[Any]]:
        """Resolved value list of every axis (random axes seeded)."""
        names = list(self.axes)
        seeds = spawn_seeds(self.seed, f"{AXIS_SEED_STREAM}.{self.name}",
                            len(names))
        return {name: self.axes[name].resolve(seed)
                for name, seed in zip(names, seeds)}

    def axis_names(self) -> List[str]:
        """The axis parameter names, in declaration order."""
        return list(self.axes)

    def expand_axes(self) -> List[Dict[str, Any]]:
        """Every axis-value combination, in deterministic grid order."""
        resolved = self.axis_values()
        names = list(resolved)
        return [dict(zip(names, combination))
                for combination in itertools.product(
                    *(resolved[name] for name in names))]

    def num_points(self) -> int:
        """Size of the expanded design space."""
        total = 1
        for values in self.axis_values().values():
            total *= len(values)
        return total

    # -- serialisation ------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe description of the sweep (manifest / hash input)."""
        from repro.runner.drivers import jsonify
        return {
            "name": self.name,
            "experiment": self.experiment,
            "axes": {name: axis.to_payload()
                     for name, axis in self.axes.items()},
            "base_params": jsonify(dict(self.base_params)),
            "seed": self.seed,
            "objectives": dict(self.objectives),
            "title": self.title,
        }

    def spec_hash(self) -> str:
        """Stable 16-hex-digit identity of the sweep's *definition*.

        Depends only on the payload (axes, base parameters, seed,
        objectives) — not on the code version or any run outcome, so two
        runs of the same spec produce the same hash in their manifests.
        """
        encoded = canonical_json(self.to_payload()).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()[:16]


def spec_from_payload(payload: Mapping[str, Any]) -> SweepSpec:
    """Rebuild a :class:`SweepSpec` from :meth:`SweepSpec.to_payload`."""
    return SweepSpec(
        name=payload["name"],
        experiment=payload["experiment"],
        axes={name: axis_from_payload(axis)
              for name, axis in payload["axes"].items()},
        base_params=dict(payload.get("base_params", {})),
        seed=payload.get("seed", DEFAULT_SEED),
        objectives=dict(payload.get("objectives", {})),
        title=payload.get("title", ""),
    )
