"""Deprecation shims: warn exactly once per call site.

The standard :mod:`warnings` machinery de-duplicates per registry, which
pytest and embedding applications routinely reset — a shim on a hot path
would then spam one warning per call.  :func:`warn_deprecated` keeps its own
registry keyed by the *call site* (caller's file and line), so migrating
code sees each offending line flagged once and exactly once per process,
independent of the active warning filters.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Set, Tuple

_WARNED_CALL_SITES: Set[Tuple[str, str, int]] = set()


def warn_deprecated(message: str, *, stacklevel: int = 2) -> None:
    """Emit ``DeprecationWarning(message)`` once per caller call site.

    ``stacklevel`` counts exactly like :func:`warnings.warn`: ``2`` points
    at the caller of the function invoking this helper's caller — shims
    should forward a level that lands on *user* code.  The call site is
    registered before warning, so a filter turning the warning into an
    error (``-W error::DeprecationWarning``) still marks it as seen.
    """
    frame = inspect.currentframe()
    try:
        for _ in range(stacklevel):
            if frame is None or frame.f_back is None:
                break
            frame = frame.f_back
        if frame is None:
            site = (message, "<unknown>", 0)
        else:
            site = (message, frame.f_code.co_filename, frame.f_lineno)
    finally:
        del frame
    if site in _WARNED_CALL_SITES:
        return
    _WARNED_CALL_SITES.add(site)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def reset_deprecation_registry() -> None:
    """Forget every recorded call site (test isolation helper)."""
    _WARNED_CALL_SITES.clear()
