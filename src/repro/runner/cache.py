"""Content-addressed on-disk cache of experiment results.

Every engine run is identified by the hash of everything that can change its
output: the experiment name, the fully resolved parameters, the master seed
and a *code version* token derived from the ``repro`` package sources.  The
artifact stored under that key is plain JSON, so a cache hit replays the
exact rows of the original run — and editing any module under
``src/repro/`` silently invalidates every prior entry.

Storage is pluggable (:mod:`repro.runner.backends`): the default
:class:`~repro.runner.backends.DirectoryBackend` keeps the original local
layout ::

    <root>/<key[:2]>/<key>.json

with ``root`` resolved from (in order) the constructor argument, the
``REPRO_CACHE_DIR`` environment variable, and the default
``~/.cache/repro-bougard`` (falling back to ``.repro-cache`` in the working
directory when no home directory is available).  A
:class:`~repro.runner.backends.SharedDirectoryBackend` adds cross-process
file locking so N service workers can share one cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.obs.tracer import current_tracer
from repro.runner.backends import CacheBackend, DirectoryBackend
from repro.sim.monitor import CounterMonitor

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_CODE_VERSION: Optional[str] = None


def default_cache_root() -> Path:
    """The cache directory used when none is given explicitly."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    try:
        return Path.home() / ".cache" / "repro-bougard"
    except (KeyError, RuntimeError):  # no resolvable home directory
        return Path(".repro-cache")


def code_version() -> str:
    """A short token identifying the current ``repro`` source tree.

    Computed as the SHA-256 over every ``*.py`` file of the installed
    ``repro`` package (path-sorted, contents concatenated) plus the package
    version string, so any source edit changes the token and therefore every
    cache key.  The token is computed once per process.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro
        digest = hashlib.sha256()
        package_root = Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(path.read_bytes())
        digest.update(repro.__version__.encode("utf-8"))
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def result_key(experiment: str, params: Mapping[str, Any], seed: Any,
               version: Optional[str] = None) -> str:
    """Cache key of one run: hash(experiment, params, seed, code version).

    A ``seed`` of ``None`` still hashes (to a stable key), but such runs
    draw unpredictable task seeds and are not reproducible — the engine
    therefore never stores or looks them up (see
    :func:`repro.runner.engine.run_experiment`); the key is only good for
    logging.
    """
    payload = {
        "experiment": experiment,
        "params": params,
        "seed": seed,
        "version": version if version is not None else code_version(),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed JSON artifact store.

    Parameters
    ----------
    root:
        Cache directory; created lazily on the first :meth:`store`.
        ``None`` resolves via :func:`default_cache_root`.  Ignored when a
        ``backend`` is given.
    backend:
        A ready :class:`~repro.runner.backends.CacheBackend`; ``None``
        builds the default :class:`~repro.runner.backends.DirectoryBackend`
        over ``root`` — exactly the historical layout, so caches written
        before the backend extraction keep hitting.

    Examples
    --------
    >>> cache = ResultCache(root="/tmp/doctest-repro-cache")
    >>> key = cache.key("fig6_csma", {"num_windows": 2}, seed=1, version="abc")
    >>> cache.load(key) is None
    True
    >>> _ = cache.store(key, {"rows": [1, 2, 3]})
    >>> cache.load(key)["rows"]
    [1, 2, 3]
    >>> cache.clear()
    1
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 backend: Optional[CacheBackend] = None):
        if backend is None:
            backend = DirectoryBackend(
                Path(root) if root is not None else default_cache_root())
        self.backend = backend
        self.root = backend.root
        #: Instance-local event counts (hit/miss/store/prune); the same
        #: events also feed the active tracer's ``cache.*`` counters.
        self.counters = CounterMonitor("cache")

    def _count(self, event: str) -> None:
        self.counters.increment(event)
        current_tracer().count(f"cache.{event}")

    # -- keys ---------------------------------------------------------------------
    def key(self, experiment: str, params: Mapping[str, Any], seed: Any,
            version: Optional[str] = None) -> str:
        """Cache key of one run — see :func:`result_key`."""
        return result_key(experiment, params, seed, version)

    def path_for(self, key: str) -> Path:
        """Artifact path of ``key`` (whether or not it exists)."""
        return self.backend.path_for(key)

    # -- round trip ---------------------------------------------------------------
    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored artifact for ``key``, or ``None`` on a miss.

        A corrupt artifact (interrupted write, manual edit) is treated as a
        miss and removed so the caller recomputes it.
        """
        artifact = self._load_artifact(key)
        self._count("hit" if artifact is not None else "miss")
        return artifact

    def _load_artifact(self, key: str) -> Optional[Dict[str, Any]]:
        """:meth:`load` without the hit/miss accounting (maintenance use)."""
        return self.backend.load(key)

    def contains(self, key: str) -> bool:
        """Whether an artifact is stored under ``key`` — without reading it.

        A lock-free ``stat`` (:meth:`CacheBackend.exists`): no JSON parse,
        no hit/miss accounting, safe to call once per point of a
        thousand-point sweep status display.  Advisory by design — a
        corrupt artifact still *exists* here; :meth:`load` is what detects
        (and heals) corruption, and an actual run goes through
        :meth:`load`, so a ``True`` from a torn file costs one recompute
        at run time, never a wrong result.
        """
        return self.backend.exists(key)

    def store(self, key: str, artifact: Mapping[str, Any]) -> Path:
        """Write ``artifact`` under ``key`` (atomically) and return its path.

        Stores are write-temp-then-rename with an fsync on the temporary
        file (unique name per store call), so concurrent writers of the
        same key cannot tear each other's artifact and a concurrent reader
        never observes partial JSON; whichever rename runs last wins with a
        complete file.
        """
        path = self.backend.store(key, artifact)
        self._count("store")
        return path

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether anything was removed."""
        return self.backend.delete(key)

    # -- maintenance --------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """All stored keys.

        Only files matching the content-addressed layout
        (``<key[:2]>/<key>.json`` with a 64-hex-digit key) count — an
        unrelated JSON file that happens to live under the cache root must
        never be treated (or deleted!) as a cache entry by
        :meth:`clear`/:meth:`prune_stale`.
        """
        return self.backend.keys()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            removed += int(self.invalidate(key))
        return removed

    def prune_stale(self, version: Optional[str] = None) -> int:
        """Drop entries whose embedded code-version token is not ``version``.

        Cache keys hash the code version, so an artifact written by an
        older source tree can never be *hit* again — it just accumulates on
        disk.  This removes every such unreachable entry; artifacts without
        a ``code_version`` field predate the stamping convention (they were
        by definition written by an older tree) and are pruned too.
        ``version`` defaults to the current :func:`code_version`.  Returns
        the number of entries removed.
        """
        current = version if version is not None else code_version()
        removed = 0
        for key in list(self.keys()):
            artifact = self._load_artifact(key)
            if artifact is None:  # corrupt: _load_artifact() unlinked it
                removed += 1
                continue
            if artifact.get("code_version") != current:
                removed += int(self.invalidate(key))
        if removed:
            self.counters.increment("prune", removed)
            current_tracer().count("cache.prune", removed)
        return removed

    def stats(self) -> Dict[str, Any]:
        """Read-only store statistics: entry count, bytes, per-experiment.

        Strictly non-mutating, with the same scoping guarantee as
        :meth:`keys`: only files matching the content-addressed layout are
        inspected, foreign JSON under the cache root is never opened, and
        (unlike :meth:`load`) a corrupt artifact is reported — under the
        experiment name ``"<unreadable>"`` — rather than unlinked.
        """
        entries = 0
        total_bytes = 0
        by_experiment: Dict[str, Dict[str, int]] = {}
        for key in self.keys():
            path = self.path_for(key)
            try:
                size = path.stat().st_size
            except OSError:
                continue  # raced with a concurrent invalidate
            try:
                artifact = json.loads(path.read_text(encoding="utf-8"))
                experiment = str(artifact.get("experiment", "<unknown>"))
            except (OSError, json.JSONDecodeError):
                experiment = "<unreadable>"
            entries += 1
            total_bytes += size
            bucket = by_experiment.setdefault(experiment,
                                              {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return {
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total_bytes,
            "by_experiment": {name: by_experiment[name]
                              for name in sorted(by_experiment)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultCache(root={str(self.root)!r})"


class NullCache:
    """Cache stand-in that never hits — the ``--no-cache`` strategy."""

    root = None

    def key(self, experiment: str, params: Mapping[str, Any], seed: Any,
            version: Optional[str] = None) -> str:
        """Compute the key as :class:`ResultCache` would (for logging)."""
        return result_key(experiment, params, seed, version)

    def load(self, key: str) -> None:
        """Always a miss."""
        return None

    def contains(self, key: str) -> bool:
        """Nothing is ever stored."""
        return False

    def store(self, key: str, artifact: Mapping[str, Any]) -> None:
        """Drop the artifact."""
        return None
