"""Command-line interface of the experiment engine.

Usage (with ``src`` on ``PYTHONPATH`` or the package installed)::

    python -m repro list                      # catalogue of experiments
    python -m repro run fig6_csma --jobs 2    # run one experiment in parallel
    python -m repro run case_study --no-cache # force a recomputation
    python -m repro run fig6_csma --param num_windows=4
    python -m repro run fig6_csma --output csv --output-file rows.csv
    python -m repro run fig6_csma --trace trace.json  # telemetry artifact
    python -m repro obs report trace.json     # self-time/phase breakdown
    python -m repro sweep run node_density    # design-space exploration
    python -m repro bench --quick --check     # perf-trajectory smoke
    python -m repro serve --workers 2         # job queue + HTTP API
    python -m repro jobs submit case_study --wait  # client of 'serve'
    python -m repro cache                     # cache artifacts
    python -m repro cache stats               # size / per-experiment stats
    python -m repro cache --clear             # drop every artifact
    python -m repro cache prune --keep-current  # drop stale-code entries

``run`` prints the result rows as an ASCII table plus, when the experiment
produces one, the paper-vs-measured report; the exit status is 0 whenever
the run completed (tolerance misses are reported, not fatal).  The ``sweep``
command tree lives in :mod:`repro.sweep.cli`.

Output discipline: result rows, tables and summary lines (grep targets of
scripts and CI) go to stdout via ``print``; auxiliary status lines ("wrote
... to ...") and error messages go through the stdlib :mod:`logging` tree
rooted at the ``repro`` logger, which :func:`main` configures onto stderr —
``--log-level`` tunes it and ``-q``/``--quiet`` maps to ``WARNING``.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Any, Dict, Optional, Sequence

from repro.analysis.io import write_rows
from repro.analysis.tables import format_table
from repro.runner.cache import ResultCache, code_version
from repro.runner.engine import DEFAULT_SEED, run_experiment
# The --param reader (literal evaluation, the bare true/false/none/null
# normalisation table, first-=-splits) is shared with the sweep CLI; the
# local name keeps the historical import path working.
from repro.runner.params import parse_param
from repro.runner.params import parse_param_arg as _parse_param
from repro.runner.registry import UnknownExperimentError, default_registry

logger = logging.getLogger(__name__)

#: ``--log-level`` choices, lowercase, mapped via ``getattr(logging, ...)``.
LOG_LEVELS = ("debug", "info", "warning", "error")


def configure_logging(arguments: argparse.Namespace) -> None:
    """(Re)configure the ``repro`` logger tree for one CLI invocation.

    Level precedence: an explicit ``--log-level``, else ``WARNING`` when
    the invoked subcommand carries ``-q``/``--quiet``, else ``INFO``.  The
    handler writes bare messages to *current* ``sys.stderr`` and replaces
    any handler from a previous :func:`main` call, so repeated in-process
    invocations (the test suite) never log onto a stale stream.
    """
    level_name = getattr(arguments, "log_level", None)
    if level_name:
        level = getattr(logging, level_name.upper())
    elif getattr(arguments, "quiet", False):
        level = logging.WARNING
    else:
        level = logging.INFO
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False


def build_parser() -> argparse.ArgumentParser:
    """The engine's argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Experiment engine of the Bougard et al. (DATE 2005) "
                    "reproduction: run any paper figure or case study, "
                    "in parallel, with on-disk result caching.")
    parser.add_argument("--log-level", choices=LOG_LEVELS, default=None,
                        help="stderr log verbosity (default info; "
                             "-q/--quiet on a subcommand implies warning)")
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="catalogue of registered experiments")
    list_parser.add_argument("--verbose", action="store_true",
                             help="include parameters and output columns")

    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="registry name (see 'list')")
    run_parser.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes (1 = serial; rows are "
                                 "identical either way)")
    run_parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                            help=f"master seed (default {DEFAULT_SEED})")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="neither read nor write the result cache")
    run_parser.add_argument("--cache-dir", default=None,
                            help="cache directory (default REPRO_CACHE_DIR "
                                 "or ~/.cache/repro-bougard)")
    run_parser.add_argument("--param", action="append", type=_parse_param,
                            default=[], metavar="KEY=VALUE",
                            help="override one experiment parameter "
                                 "(repeatable; values are Python literals)")
    run_parser.add_argument("--quiet", "-q", action="store_true",
                            help="suppress the row table, print the summary "
                                 "line only")
    run_parser.add_argument("--output", choices=["csv", "json"], default=None,
                            help="emit the result rows as CSV or JSON "
                                 "(to stdout, or to --output-file)")
    run_parser.add_argument("--output-file", default=None, metavar="PATH",
                            help="write the rows to PATH instead of stdout "
                                 "(format from --output, else the file "
                                 "extension)")
    run_parser.add_argument("--trace", default=None, metavar="PATH",
                            help="write a repro.obs trace artifact of the "
                                 "run to PATH (never perturbs results)")

    cache_parser = commands.add_parser(
        "cache", help="inspect, clear or prune the result cache")
    cache_parser.add_argument("action", nargs="?",
                              choices=["show", "prune", "stats"],
                              default="show",
                              help="'show' lists artifacts (default); "
                                   "'stats' summarises size and "
                                   "per-experiment occupancy (read-only); "
                                   "'prune' deletes entries by criterion")
    cache_parser.add_argument("--cache-dir", default=None,
                              help="cache directory to inspect")
    cache_parser.add_argument("--backend", choices=["directory", "shared"],
                              default="directory",
                              help="cache backend to inspect through; "
                                   "'shared' reports its lock/contention "
                                   "counters in 'stats'")
    cache_parser.add_argument("--clear", action="store_true",
                              help="remove every stored artifact")
    cache_parser.add_argument("--keep-current", action="store_true",
                              help="with 'prune': delete entries whose "
                                   "embedded code-version token differs "
                                   "from the current sources")

    obs_parser = commands.add_parser(
        "obs", help="inspect repro.obs trace artifacts")
    obs_commands = obs_parser.add_subparsers(dest="obs_command",
                                             required=True)
    report_parser = obs_commands.add_parser(
        "report", help="self-time / phase-breakdown summary of a trace")
    report_parser.add_argument("trace", help="trace artifact path "
                                             "(written by run --trace)")
    report_parser.add_argument("--no-timing", action="store_true",
                               help="omit durations and meters — the "
                                    "remaining table is deterministic for "
                                    "a fixed workload and seed")
    validate_parser = obs_commands.add_parser(
        "validate", help="check a trace against the artifact schema")
    validate_parser.add_argument("trace", help="trace artifact path")

    # Imported here, not at module scope: the sweep and bench packages sit
    # *above* the runner in the layering (they import the experiment
    # drivers), so the runner must not depend on them at import time.
    from repro.sweep.cli import add_sweep_parser
    add_sweep_parser(commands)
    from repro.bench.cli import add_bench_parser
    add_bench_parser(commands)
    from repro.service.cli import add_service_parsers
    add_service_parsers(commands)
    return parser


def _command_list(arguments: argparse.Namespace) -> int:
    registry = default_registry()
    headers = ["name", "figure", "~runtime [s]", "parallel", "title"]
    rows = [[spec.name, spec.figure, spec.expected_runtime_s,
             "yes" if spec.supports_jobs else "-", spec.title]
            for spec in registry]
    print(format_table(headers, rows, title="Registered experiments"))
    if arguments.verbose:
        for spec in registry:
            print(f"\n{spec.name}:")
            print(f"  outputs: {', '.join(spec.output_names) or '-'}")
            if spec.schema:
                for param in spec.schema:
                    line = (f"  --param {param.name}={param.default!r}  "
                            f"[{param.domain()}]")
                    if param.doc:
                        line += f"  {param.doc}"
                    print(line)
            else:
                print("  (no tunable parameters)")
    return 0


def _command_run(arguments: argparse.Namespace) -> int:
    overrides = dict(arguments.param)
    tracer = None
    if arguments.trace:
        from repro.obs import Tracer
        tracer = Tracer(name=f"run:{arguments.experiment}")
    try:
        run = run_experiment(arguments.experiment,
                             params=overrides,
                             jobs=arguments.jobs,
                             seed=arguments.seed,
                             cache=not arguments.no_cache,
                             cache_root=arguments.cache_dir,
                             tracer=tracer)
    except UnknownExperimentError as error:
        logger.error(f"error: {error}")
        return 2
    except KeyError as error:
        logger.error(f"error: {error.args[0]}")
        return 2
    except ValueError as error:
        # Invalid parameter values (e.g. num_windows=0) surface as the
        # model's own message rather than a traceback.
        logger.error(f"error: {error}")
        return 2
    if tracer is not None:
        from repro.obs import write_trace
        trace_path = write_trace(tracer, arguments.trace)
        logger.info(f"wrote trace to {trace_path}")

    emit_stdout_rows = arguments.output and not arguments.output_file
    if not arguments.quiet and not emit_stdout_rows:
        print(run.to_table())
        if run.report:
            print()
            _print_report(run.report)
    summary = (f"{run.spec.name}: {len(run.rows)} rows in "
               f"{run.elapsed_s:.3f}s "
               f"[{'cache' if run.cache_hit else f'computed with {run.jobs} job(s)'}] "
               f"seed={run.seed} key={run.cache_key[:12]}")
    if emit_stdout_rows:
        # Rows own stdout (pipeable CSV/JSON); the summary moves to stderr.
        text = (run.to_json() if arguments.output == "json"
                else run.to_csv())
        sys.stdout.write(text)
        print(summary, file=sys.stderr)
        return 0
    if arguments.output_file:
        path = write_rows(run.rows, arguments.output_file,
                          fmt=arguments.output, columns=run.csv_columns())
        logger.info(f"wrote {len(run.rows)} rows to {path}")
    print(summary)
    return 0


def _print_report(report: Dict[str, Any]) -> None:
    headers = ["quantity", "paper", "measured", "rel. error", "ok"]
    rows = []
    for row in report["rows"]:
        error = row["relative_error"]
        rows.append([
            row["quantity"],
            "-" if row["paper_value"] is None else row["paper_value"],
            row["measured_value"],
            "-" if error is None else f"{100 * error:+.1f}%",
            {True: "yes", False: "NO", None: "-"}[row["within_tolerance"]],
        ])
    print(format_table(headers, rows,
                       title=f"{report['experiment_id']}: {report['title']}"))
    for note in report.get("notes", []):
        print(f"  note: {note}")


def _command_cache(arguments: argparse.Namespace) -> int:
    from repro.runner.backends import resolve_backend
    backend = resolve_backend(arguments.backend, arguments.cache_dir)
    cache = ResultCache(backend=backend)
    if arguments.action == "stats":
        stats = cache.stats()
        print(f"cache root: {stats['root']}")
        print(f"backend:    {backend.kind}")
        print(f"entries:    {stats['entries']}")
        print(f"total size: {stats['total_bytes']} bytes")
        for name, bucket in stats["by_experiment"].items():
            print(f"  {name}: {bucket['entries']} entries, "
                  f"{bucket['bytes']} bytes")
        counters = cache.counters.as_dict()
        session = ", ".join(f"{key}={counters[key]}"
                            for key in sorted(counters)) or "none"
        print(f"session counters: {session}")
        backend_counters = backend.describe()["counters"]
        if backend_counters or arguments.backend == "shared":
            locks = ", ".join(f"{key}={backend_counters[key]}"
                              for key in sorted(backend_counters)) or "none"
            print(f"backend counters: {locks}")
        return 0
    if arguments.action == "prune":
        if not arguments.keep_current:
            logger.error("error: 'cache prune' needs a criterion; use "
                         "--keep-current to drop entries from older code "
                         "versions")
            return 2
        removed = cache.prune_stale()
        print(f"pruned {removed} stale artifact(s) from {cache.root} "
              f"(kept code version {code_version()})")
        return 0
    if arguments.clear:
        removed = cache.clear()
        print(f"removed {removed} artifact(s) from {cache.root}")
        return 0
    keys = list(cache.keys())
    print(f"cache root: {cache.root}")
    print(f"artifacts:  {len(keys)}")
    print(f"code version: {code_version()}")
    for key in keys:
        print(f"  {key}")
    return 0


def _command_obs(arguments: argparse.Namespace) -> int:
    from repro.obs import read_trace, render_report, validate_trace
    try:
        payload = read_trace(arguments.trace)
    except (OSError, json.JSONDecodeError) as error:
        logger.error(f"error: cannot read trace {arguments.trace}: {error}")
        return 2
    try:
        validate_trace(payload)
    except ValueError as error:
        logger.error(f"error: invalid trace {arguments.trace}: {error}")
        return 2
    if arguments.obs_command == "validate":
        print(f"{arguments.trace}: valid {payload['kind']} "
              f"(schema v{payload['schema_version']}, "
              f"{len(payload['spans'])} spans)")
        return 0
    print(render_report(payload, include_timing=not arguments.no_timing),
          end="")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the exit status."""
    arguments = build_parser().parse_args(argv)
    configure_logging(arguments)
    if arguments.command == "sweep":
        from repro.sweep.cli import command_sweep
        handler = command_sweep
    elif arguments.command == "bench":
        from repro.bench.cli import command_bench
        handler = command_bench
    elif arguments.command == "serve":
        from repro.service.cli import command_serve
        handler = command_serve
    elif arguments.command == "jobs":
        from repro.service.cli import command_jobs
        handler = command_jobs
    else:
        handler = {"list": _command_list,
                   "run": _command_run,
                   "cache": _command_cache,
                   "obs": _command_obs}[arguments.command]
    try:
        return handler(arguments)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly like any
        # well-behaved unix tool (129 = 128 + SIGPIPE convention).
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 129
