"""Pluggable storage backends of the content-addressed result cache.

:class:`repro.runner.cache.ResultCache` owns the *semantics* of the cache —
key computation, hit/miss accounting, code-version pruning — and delegates
the *storage* to a backend implementing the small :class:`CacheBackend`
protocol defined here.  Two backends ship:

:class:`DirectoryBackend`
    The original local-directory layout (``<root>/<key[:2]>/<key>.json``),
    extracted verbatim from ``ResultCache``: same paths, same JSON
    formatting, same corrupt-entry healing — artifacts written before the
    extraction keep hitting.  Stores are atomic everywhere: the artifact is
    written to a uniquely named temporary file, fsynced, and renamed into
    place, so a concurrent reader observes either the previous complete
    artifact or the new one, never a torn write.

:class:`SharedDirectoryBackend`
    The same layout plus *cross-process* coordination for N workers sharing
    one cache directory: per-key advisory file locks (``fcntl.flock`` on
    sidecar files under ``<root>/.locks/``) serialise writers and let a
    compute path double-check the cache under the lock, so identical work
    submitted to several workers is computed exactly once.  Lock traffic is
    counted (``lock.acquired`` / ``lock.contended``) and surfaces through
    ``python -m repro cache stats --backend shared``.

Layering: this module sits *below* the runner's cache (it imports only the
:mod:`repro.sim.monitor` counters) and is the one module below
:mod:`repro.api` the service layer (:mod:`repro.service`) may import — the
backend protocol is the seam the job workers and the engine share.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.sim.monitor import CounterMonitor

try:  # pragma: no cover - always available on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Shape of a stored key: 64 lowercase hex digits (sha-256).
KEY_PATTERN = re.compile(r"[0-9a-f]{64}")

#: Registered backend kinds ``resolve_backend`` understands.
BACKEND_KINDS = ("directory", "shared")

#: Process-wide counter making concurrent temp-file names unique even for
#: same-pid writers (worker threads storing the same key).
_TEMP_COUNTER = itertools.count()


class CacheBackend:
    """Storage protocol of the result cache.

    A backend is a key/artifact store with directory-shaped introspection.
    Artifacts are JSON-safe mappings; keys are sha-256 hex digests computed
    by the cache layer (backends never hash).  Implementations must make
    :meth:`store` atomic — a concurrent :meth:`load` observes a complete
    artifact or a miss, never a partial write.

    ``kind``/``transport`` identify the backend: ``kind`` is the
    human-readable name, ``transport`` the plain-data token the sweep
    driver ships to process-pool workers so they rebuild an equivalent
    backend from the root path alone.
    """

    kind: str = "abstract"
    transport: Any = True
    root: Optional[Path] = None

    def path_for(self, key: str) -> Path:
        """Artifact path of ``key`` (whether or not it exists)."""
        raise NotImplementedError

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored artifact for ``key``, or ``None`` on a miss."""
        raise NotImplementedError

    def exists(self, key: str) -> bool:
        """Whether an artifact is stored under ``key`` — without reading it.

        This is the cheap existence probe (a single ``stat``, no locking,
        no JSON parse): status displays over thousand-point sweeps call it
        once per point, so it must never open the payload.  The trade-off
        is that a torn or corrupt artifact still *exists* here; only
        :meth:`load` detects (and heals) corruption, so existence is
        advisory — an actual run re-checks through :meth:`load`.
        """
        raise NotImplementedError

    def store(self, key: str, artifact: Mapping[str, Any]) -> Path:
        """Atomically write ``artifact`` under ``key``; return its path."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Drop one entry; returns whether anything was removed."""
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        """Every stored key."""
        raise NotImplementedError

    @contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Serialise a critical section on ``key`` across workers.

        The base protocol is single-writer-per-process friendly: the
        default lock is a no-op because :meth:`store` is already atomic.
        Shared backends override this with real cross-process locking.
        """
        yield

    def describe(self) -> Dict[str, Any]:
        """Plain-data description (kind, root, counters) for ``stats``."""
        return {"kind": self.kind,
                "root": None if self.root is None else str(self.root),
                "counters": {}}


class DirectoryBackend(CacheBackend):
    """The local content-addressed directory layout.

    Layout (unchanged since the cache's first release, so pre-existing
    warm caches keep hitting)::

        <root>/<key[:2]>/<key>.json

    Stores are write-temp-then-rename with an fsync on the temporary file;
    the temporary name is unique per (process, store call), so concurrent
    writers of one key cannot tear each other's artifact — whichever
    ``os.replace`` lands last wins with a complete file.
    """

    kind = "directory"
    transport = True

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Parse the artifact at ``key``; a corrupt file is healed.

        A corrupt artifact (interrupted legacy write, manual edit) is
        treated as a miss and removed so the caller recomputes it.
        """
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # read-only store: recompute without healing
            return None

    def exists(self, key: str) -> bool:
        """Lock-free stat of the artifact path — never opens the payload.

        Inherited unchanged by :class:`SharedDirectoryBackend`: existence
        probes deliberately bypass the per-key locks (a rename-in-progress
        either already landed — ``True`` — or has not — ``False``; both
        answers are coherent snapshots because stores are atomic).
        """
        return self.path_for(key).is_file()

    def store(self, key: str, artifact: Mapping[str, Any]) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(
            f".{os.getpid()}.{next(_TEMP_COUNTER)}.tmp")
        data = json.dumps(artifact, indent=1, sort_keys=True)
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        return path

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        if path.is_file():
            path.unlink()
            return True
        return False

    def keys(self) -> Iterator[str]:
        """All stored keys.

        Only files matching the content-addressed layout
        (``<key[:2]>/<key>.json`` with a 64-hex-digit key) count — an
        unrelated JSON file that happens to live under the cache root must
        never be treated (or deleted!) as a cache entry.
        """
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            key = path.stem
            if KEY_PATTERN.fullmatch(key) and path.parent.name == key[:2]:
                yield key

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "root": str(self.root), "counters": {}}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(root={str(self.root)!r})"


class _KeyLock:
    """Per-key lock state of a shared backend: a reentrant thread lock plus
    the open OS-lock handle and its reentrancy depth (guarded by ``rlock``)."""

    __slots__ = ("rlock", "depth", "handle")

    def __init__(self):
        self.rlock = threading.RLock()
        self.depth = 0
        self.handle: Optional[Any] = None


class SharedDirectoryBackend(DirectoryBackend):
    """A directory backend safe for N workers on one cache directory.

    Adds per-key advisory file locks on top of the atomic rename stores:

    * :meth:`store` takes the key's exclusive lock, so two workers racing
      to publish one key serialise (last complete write wins either way —
      the lock mainly bounds redundant IO and feeds the counters);
    * :meth:`lock` is exposed for *compute* critical sections: a worker
      wraps "check cache, compute on miss, store" in ``with
      backend.lock(key):`` and the double-check under the lock guarantees
      a key is computed at most once per cache directory, whatever the
      worker count or process topology.

    Lock files are sidecars under ``<root>/.locks/`` (outside the
    ``<key[:2]>/`` artifact layout, so key enumeration never sees them).
    Locking uses ``fcntl.flock``; on platforms without ``fcntl`` the
    backend degrades to intra-process locking only (stores stay atomic —
    only the cross-process compute dedup weakens).

    Counters (surfaced by ``repro cache stats --backend shared``):

    ``lock.acquired``
        Exclusive locks taken.
    ``lock.contended``
        Acquisitions that had to wait because another worker held the key.
    """

    kind = "shared-directory"
    transport = "shared"

    def __init__(self, root: Union[str, os.PathLike]):
        super().__init__(root)
        self.counters = CounterMonitor("backend")
        # Serialises same-process threads (flock is per file *description*:
        # a second flock on the same path from one process would conflict
        # with — not nest inside — the first, so the OS lock is taken once
        # per key and re-entered via the depth count).
        self._key_locks: Dict[str, "_KeyLock"] = {}
        self._registry_lock = threading.Lock()

    def _key_lock(self, key: str) -> "_KeyLock":
        with self._registry_lock:
            entry = self._key_locks.get(key)
            if entry is None:
                entry = self._key_locks[key] = _KeyLock()
            return entry

    def _lock_path(self, key: str) -> Path:
        return self.root / ".locks" / f"{key}.lock"

    @contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Hold the exclusive cross-process lock of ``key``.

        Reentrant within a thread: a worker wraps its whole
        check-compute-store critical section in one ``lock(key)`` and the
        engine's :meth:`store` re-enters for the same key without
        deadlocking (the OS lock is only taken on the outermost entry).
        """
        entry = self._key_lock(key)
        contended = not entry.rlock.acquire(blocking=False)
        if contended:
            entry.rlock.acquire()
        entry.depth += 1
        try:
            if entry.depth == 1:
                lock_path = self._lock_path(key)
                lock_path.parent.mkdir(parents=True, exist_ok=True)
                entry.handle = open(lock_path, "a+", encoding="utf-8")
                if fcntl is not None:
                    try:
                        fcntl.flock(entry.handle,
                                    fcntl.LOCK_EX | fcntl.LOCK_NB)
                    except OSError:
                        contended = True
                        fcntl.flock(entry.handle, fcntl.LOCK_EX)
                self.counters.increment("lock.acquired")
                if contended:
                    self.counters.increment("lock.contended")
            yield
        finally:
            entry.depth -= 1
            if entry.depth == 0 and entry.handle is not None:
                if fcntl is not None:
                    fcntl.flock(entry.handle, fcntl.LOCK_UN)
                entry.handle.close()
                entry.handle = None
            entry.rlock.release()

    def store(self, key: str, artifact: Mapping[str, Any]) -> Path:
        with self.lock(key):
            return super().store(key, artifact)

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "root": str(self.root),
                "counters": self.counters.as_dict()}


def resolve_backend(backend: Any,
                    root: Optional[Union[str, os.PathLike]] = None
                    ) -> CacheBackend:
    """Normalise a backend argument to a :class:`CacheBackend` instance.

    ``backend`` may be a ready instance (returned unchanged), or one of the
    :data:`BACKEND_KINDS` names — ``"directory"`` / ``"shared"`` — built
    over ``root`` (``None`` resolves like the cache default: the
    ``REPRO_CACHE_DIR`` environment variable, then
    ``~/.cache/repro-bougard``).
    """
    if isinstance(backend, CacheBackend):
        return backend
    if backend in ("directory", "shared"):
        if root is None:
            from repro.runner.cache import default_cache_root
            root = default_cache_root()
        if backend == "shared":
            return SharedDirectoryBackend(root)
        return DirectoryBackend(root)
    raise ValueError(f"Unknown cache backend {backend!r}; expected a "
                     f"CacheBackend instance or one of "
                     f"{', '.join(BACKEND_KINDS)}")
