"""Registry of every figure / case-study experiment the engine can run.

An :class:`ExperimentSpec` declares what one driver reproduces — its name,
the paper artefact, the tunable parameters with their defaults, the output
columns and a runtime estimate — plus the adapter callable that actually
executes it.  The registry is the single source the CLI, the examples and
the tests resolve experiments from, so ``python -m repro list`` is always
the authoritative catalogue.

The default registry is populated lazily (on the first
:func:`default_registry` call) from :mod:`repro.runner.drivers`, keeping
``import repro.runner`` cheap and cycle-free.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, Iterator, Mapping,
                    Optional, Tuple)

from repro._deprecation import warn_deprecated
from repro.runner.params import (ParamSchema, ParamSpec,
                                 ParameterValueError, UnknownParameterError)


class UnknownExperimentError(KeyError):
    """Raised when an experiment name is not in the registry."""

    def __init__(self, name: str, known: Tuple[str, ...]):
        self.name = name
        self.known = known
        suggestions = difflib.get_close_matches(name, known, n=3)
        message = f"Unknown experiment {name!r}. Known experiments: " \
                  f"{', '.join(known) or '(none)'}."
        if suggestions:
            message += f" Did you mean: {', '.join(suggestions)}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0]


class ExperimentSpec:
    """Declarative description of one runnable experiment.

    Parameters
    ----------
    name:
        Registry key and CLI name (e.g. ``fig6_csma``).
    title:
        One-line human description.
    figure:
        The paper artefact reproduced (``"Fig. 6"``, ``"Section 5"``, ...).
    runner:
        Adapter executing the experiment.  Called as
        ``runner(params, context)`` where ``params`` is the fully resolved
        parameter mapping and ``context`` a :class:`RunContext`; must return
        a JSON-serialisable dict with at least a ``"rows"`` list.
    params:
        The typed parameter declarations — an iterable of
        :class:`repro.runner.params.ParamSpec` (or a ready
        :class:`~repro.runner.params.ParamSchema`).  Every override, CLI
        ``--param`` and sweep axis validates against this schema.
    default_params:
        .. deprecated:: 1.1
            Legacy bare-dict declaration; converted to an inferred-type
            schema.  Declare ``params=[ParamSpec(...), ...]`` instead.
    output_names:
        Names of the columns of the result rows (documentation; shown by
        ``python -m repro list``).
    expected_runtime_s:
        Rough single-core runtime of the default parameters (serial, cold
        cache), so users know what to expect before launching.
    supports_jobs:
        Whether the adapter actually fans work out to the executor; serial
        drivers still accept ``--jobs`` but will not use the pool.
    """

    __slots__ = ("name", "title", "figure", "runner", "schema",
                 "output_names", "expected_runtime_s", "supports_jobs")

    def __init__(self, name: str, title: str = "", figure: str = "",
                 runner: Optional[Callable[[Mapping[str, Any], "RunContext"],
                                           Dict[str, Any]]] = None,
                 *,
                 params: Optional[Iterable[ParamSpec]] = None,
                 default_params: Optional[Mapping[str, Any]] = None,
                 output_names: Tuple[str, ...] = (),
                 expected_runtime_s: float = 1.0,
                 supports_jobs: bool = False):
        if params is not None and default_params is not None:
            raise ValueError(f"Experiment {name!r}: give either params= "
                             f"(typed schema) or the legacy default_params=, "
                             f"not both")
        if default_params is not None:
            warn_deprecated(
                f"ExperimentSpec(default_params=...) is deprecated; declare "
                f"a typed schema with params=[ParamSpec(...), ...] "
                f"(experiment {name!r})", stacklevel=2)
            schema = ParamSchema.untyped(default_params)
        elif isinstance(params, ParamSchema):
            schema = params
        else:
            schema = ParamSchema(params or ())
        self.name = name
        self.title = title
        self.figure = figure
        self.runner = runner
        self.schema = schema
        self.output_names = tuple(output_names)
        self.expected_runtime_s = expected_runtime_s
        self.supports_jobs = supports_jobs

    @property
    def default_params(self) -> Dict[str, Any]:
        """The canonical default of every parameter (derived from the schema)."""
        return self.schema.defaults()

    def resolve_params(self, overrides: Optional[Mapping[str, Any]] = None
                       ) -> Dict[str, Any]:
        """Merge ``overrides`` into the defaults, coercing every value.

        Values are canonicalised through the schema (``"4"`` resolves like
        ``4``), so equivalent spellings produce identical resolved
        parameters — and therefore identical cache keys.

        Raises
        ------
        UnknownParameterError
            (a ``KeyError``) for unknown names, with close-match
            suggestions.
        ParameterValueError
            (a ``ValueError``) for values outside a parameter's domain.
        """
        return self.schema.resolve(overrides, experiment=self.name)


@dataclass
class RunContext:
    """Ambient machinery handed to every adapter.

    Attributes
    ----------
    executor:
        Execution strategy (see :mod:`repro.runner.executor`) sized from the
        CLI ``--jobs`` flag.
    cache:
        Result cache (or :class:`repro.runner.cache.NullCache`); adapters may
        use it for expensive shared intermediates such as the contention
        table.
    seed:
        Master seed of the run; all task seeds must derive from it.
        ``None`` marks an intentionally non-reproducible run (the engine
        then hands the adapters a cache that never hits).
    """

    executor: Any
    cache: Any
    seed: Optional[int]


class ExperimentRegistry:
    """Name -> :class:`ExperimentSpec` mapping with helpful failure modes."""

    def __init__(self):
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add a spec; duplicate names are rejected."""
        if spec.name in self._specs:
            raise ValueError(f"Experiment {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ExperimentSpec:
        """The spec registered under ``name``.

        Raises
        ------
        UnknownExperimentError
            With close-match suggestions when the name is not registered.
        """
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownExperimentError(name, self.names()) from None

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._specs))

    def __iter__(self) -> Iterator[ExperimentSpec]:
        for name in self.names():
            yield self._specs[name]

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)


_DEFAULT: Optional[ExperimentRegistry] = None


def default_registry() -> ExperimentRegistry:
    """The registry pre-populated with every paper experiment (built once)."""
    global _DEFAULT
    if _DEFAULT is None:
        from repro.runner.drivers import build_default_registry
        _DEFAULT = build_default_registry()
    return _DEFAULT
