"""Typed parameter schemas of the experiment registry.

Every :class:`repro.runner.registry.ExperimentSpec` declares its tunable
parameters as :class:`ParamSpec` entries collected in a :class:`ParamSchema`.
The schema is the single validation boundary all callers share — the engine,
``python -m repro run --param``, the sweep spec builder and the
:mod:`repro.api` façade — so every entry point rejects the same inputs with
the same messages:

* unknown names fail with :class:`UnknownParameterError`, carrying
  ``difflib`` close-match suggestions just like unknown experiment names;
* values are *coerced* to their declared type (``"4"`` and ``4`` both
  canonicalise to ``4``), so equivalent spellings produce identical resolved
  parameters and therefore identical cache keys;
* bounds (``minimum``/``maximum``) and ``choices`` are enforced with a
  message naming the experiment, the parameter and the allowed domain
  (:class:`ParameterValueError`).

:func:`parse_param` is the shared ``--param key=value`` reader used by both
the runner and the sweep command lines (one normalisation table, one
behaviour).
"""

from __future__ import annotations

import ast
import difflib
import math
from typing import (Any, Dict, Iterable, Iterator, Mapping, Optional,
                    Sequence, Tuple)

#: Parameter types a :class:`ParamSpec` can declare.
PARAM_TYPES = ("int", "float", "bool", "str", "list", "any")

#: Bare-word spellings normalised to Python literals by ``--param`` — the
#: shell-friendly lowercase forms users type (``ast.literal_eval`` already
#: handles the canonical ``True``/``False``/``None``).
PARAM_LITERALS: Dict[str, Any] = {"true": True, "false": False,
                                  "none": None, "null": None}


def parse_param(text: str) -> Tuple[str, Any]:
    """Parse one ``--param key=value`` override (shared by both CLIs).

    The value is evaluated as a Python literal when possible; the common
    bare words ``true``/``false``/``none``/``null`` (any case) normalise to
    the corresponding literal, and anything else stays a plain string.
    Only the *first* ``=`` splits key from value, so ``key=a=b`` assigns
    the string ``"a=b"``.

    Raises
    ------
    ValueError
        When ``text`` has no ``=`` or an empty key.
    """
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise ValueError(f"--param expects key=value, got {text!r}")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        lowered = raw.strip().lower()
        if lowered in PARAM_LITERALS:
            value = PARAM_LITERALS[lowered]
        else:
            value = raw  # plain string value
    return key, value


def parse_param_arg(text: str) -> Tuple[str, Any]:
    """:func:`parse_param` as an argparse ``type=`` callable.

    Re-raises malformed input as ``argparse.ArgumentTypeError`` so both
    CLIs print the shared message instead of a generic "invalid value".
    """
    import argparse
    try:
        return parse_param(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _context(experiment: Optional[str]) -> str:
    return f"Experiment {experiment!r} " if experiment else ""


class UnknownParameterError(KeyError):
    """An override names a parameter the experiment does not declare.

    A :class:`KeyError` subclass so pre-schema callers catching ``KeyError``
    keep working; the message carries ``difflib`` close-match suggestions
    (mirroring :class:`repro.runner.registry.UnknownExperimentError`).
    """

    def __init__(self, name: str, known: Sequence[str],
                 experiment: Optional[str] = None):
        self.name = name
        self.known = tuple(known)
        self.experiment = experiment
        message = (f"{_context(experiment)}has no parameter {name!r}; "
                   f"tunable parameters: "
                   f"{', '.join(sorted(self.known)) or '(none)'}.")
        suggestions = difflib.get_close_matches(name, self.known, n=3)
        if suggestions:
            message += f" Did you mean: {', '.join(suggestions)}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0]


class ParameterValueError(ValueError):
    """A parameter value fails its spec's type, bounds or choices.

    The message always names the experiment (when known), the parameter and
    the allowed domain, so a failing sweep spec or CLI override is
    actionable without opening the registry.
    """

    def __init__(self, name: str, value: Any, domain: str,
                 experiment: Optional[str] = None, reason: str = ""):
        self.name = name
        self.value = value
        self.domain = domain
        self.experiment = experiment
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"{_context(experiment)}parameter {name!r}: invalid value "
            f"{value!r}{detail}; expected {domain}")


class ParamSpec:
    """Declaration of one tunable experiment parameter.

    Parameters
    ----------
    name:
        Parameter name (the ``--param`` / keyword-argument key).
    type:
        One of :data:`PARAM_TYPES`.  ``"any"`` disables type coercion
        (bounds and choices still apply).
    default:
        Default value; validated against the spec itself at construction.
    doc:
        One-line description (rendered by ``python -m repro list --verbose``
        and :func:`repro.api.Session.experiments` consumers).
    minimum / maximum:
        Inclusive numeric bounds for ``int``/``float`` parameters (and for
        the elements of ``list`` parameters with a numeric ``element``).
    choices:
        Explicit allowed values (checked after coercion).
    element:
        Element type of a ``list`` parameter (``"int"``/``"float"``/
        ``"str"``); ``None`` leaves elements uncoerced.
    nullable:
        Whether ``None`` is a legal value; implied when ``default`` is
        ``None``.
    """

    __slots__ = ("name", "type", "default", "doc", "minimum", "maximum",
                 "choices", "element", "nullable")

    def __init__(self, name: str, type: str = "any", default: Any = None,
                 doc: str = "", minimum: Optional[float] = None,
                 maximum: Optional[float] = None,
                 choices: Optional[Sequence[Any]] = None,
                 element: Optional[str] = None,
                 nullable: bool = False):
        if not name:
            raise ValueError("ParamSpec needs a non-empty name")
        if type not in PARAM_TYPES:
            raise ValueError(f"ParamSpec {name!r}: unknown type {type!r}; "
                             f"use one of {', '.join(PARAM_TYPES)}")
        if element is not None and element not in ("int", "float", "str"):
            raise ValueError(f"ParamSpec {name!r}: unknown element type "
                             f"{element!r}; use 'int', 'float' or 'str'")
        if element is not None and type != "list":
            raise ValueError(f"ParamSpec {name!r}: element= only applies to "
                             f"type='list'")
        self.name = name
        self.type = type
        self.doc = doc
        self.minimum = minimum
        self.maximum = maximum
        self.choices = tuple(choices) if choices is not None else None
        self.element = element
        self.nullable = bool(nullable) or default is None
        # Canonicalise the default through the spec itself, so declaration
        # mistakes fail at registry-build time, not at the first run.
        self.default = self.coerce(default)

    # -- validation ---------------------------------------------------------------
    def coerce(self, value: Any, experiment: Optional[str] = None) -> Any:
        """Validate ``value`` and return its canonical form.

        Raises
        ------
        ParameterValueError
            When the value cannot be coerced to the declared type, falls
            outside the bounds, or is not one of the choices.
        """
        if value is None:
            if self.nullable:
                return None
            raise ParameterValueError(self.name, value, self.domain(),
                                      experiment, "None is not allowed")
        canonical = self._coerce_type(value, experiment)
        self._check_bounds(canonical, experiment)
        if self.choices is not None and canonical not in self.choices:
            raise ParameterValueError(self.name, value, self.domain(),
                                      experiment)
        return canonical

    def _coerce_type(self, value: Any, experiment: Optional[str]) -> Any:
        kind = self.type
        try:
            if kind == "int":
                return _as_int(value)
            if kind == "float":
                return _as_float(value)
            if kind == "bool":
                if isinstance(value, bool):
                    return value
                raise TypeError
            if kind == "str":
                if isinstance(value, str):
                    return value
                raise TypeError
            if kind == "list":
                if not isinstance(value, (list, tuple)):
                    raise TypeError
                return [self._coerce_element(item, experiment)
                        for item in value]
        except ParameterValueError:
            raise
        except (TypeError, ValueError, OverflowError):
            raise ParameterValueError(self.name, value, self.domain(),
                                      experiment) from None
        return value  # type "any": passthrough

    def _coerce_element(self, item: Any, experiment: Optional[str]) -> Any:
        if self.element == "int":
            coerced: Any = _as_int(item)
        elif self.element == "float":
            coerced = _as_float(item)
        elif self.element == "str":
            if not isinstance(item, str):
                raise TypeError
            coerced = item
        else:
            return item
        self._check_bounds(coerced, experiment)
        return coerced

    def _check_bounds(self, value: Any, experiment: Optional[str]) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        if (self.minimum is not None and value < self.minimum) or \
                (self.maximum is not None and value > self.maximum):
            raise ParameterValueError(self.name, value, self.domain(),
                                      experiment, "out of bounds")

    # -- documentation ------------------------------------------------------------
    def domain(self) -> str:
        """Human-readable description of the allowed values."""
        if self.choices is not None:
            base = "one of " + ", ".join(repr(choice)
                                         for choice in self.choices)
        elif self.type == "list" and self.element:
            base = f"list[{self.element}]"
        else:
            base = self.type
        bounds = _bounds_text(self.minimum, self.maximum)
        if bounds:
            base += f" {bounds}"
        if self.nullable and self.choices is None:
            base += " or None"
        return base

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe description (documentation / ``list --verbose``)."""
        payload: Dict[str, Any] = {"name": self.name, "type": self.type,
                                   "default": self.default,
                                   "domain": self.domain()}
        if self.doc:
            payload["doc"] = self.doc
        if self.minimum is not None:
            payload["minimum"] = self.minimum
        if self.maximum is not None:
            payload["maximum"] = self.maximum
        if self.choices is not None:
            payload["choices"] = list(self.choices)
        if self.element is not None:
            payload["element"] = self.element
        if self.nullable:
            payload["nullable"] = True
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ParamSpec({self.name!r}, type={self.type!r}, "
                f"default={self.default!r})")


def _as_int(value: Any) -> int:
    if isinstance(value, bool):
        raise TypeError
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not value.is_integer():
            raise TypeError
        return int(value)
    if isinstance(value, str):
        return int(value.strip())
    raise TypeError


def _as_float(value: Any) -> float:
    if isinstance(value, bool):
        raise TypeError
    if isinstance(value, (int, float)):
        result = float(value)
    elif isinstance(value, str):
        result = float(value.strip())
    else:
        raise TypeError
    if not math.isfinite(result):
        raise TypeError
    return result


def _bounds_text(minimum: Optional[float], maximum: Optional[float]) -> str:
    if minimum is not None and maximum is not None:
        return f"in [{minimum:g}, {maximum:g}]"
    if minimum is not None:
        return f">= {minimum:g}"
    if maximum is not None:
        return f"<= {maximum:g}"
    return ""


class ParamSchema:
    """Ordered, validated collection of :class:`ParamSpec` entries.

    The schema owns parameter resolution for one experiment: merging
    overrides into the defaults, coercing every value to its canonical type
    and failing helpfully on unknown names or out-of-domain values.

    Examples
    --------
    >>> schema = ParamSchema([
    ...     ParamSpec("num_windows", "int", 15, minimum=1, maximum=30),
    ...     ParamSpec("mode", "str", "fast", choices=("fast", "slow"))])
    >>> schema.resolve({"num_windows": "4"})
    {'num_windows': 4, 'mode': 'fast'}
    """

    __slots__ = ("_specs",)

    def __init__(self, specs: Iterable[ParamSpec] = ()):
        ordered: Dict[str, ParamSpec] = {}
        for spec in specs:
            if spec.name in ordered:
                raise ValueError(f"Duplicate parameter {spec.name!r}")
            ordered[spec.name] = spec
        self._specs = ordered

    @classmethod
    def untyped(cls, defaults: Mapping[str, Any]) -> "ParamSchema":
        """Build a schema from a legacy ``default_params`` mapping.

        Types are inferred from the default values (``int`` default ->
        ``int`` parameter, and so on) so legacy declarations still gain
        coercion and canonical cache keys; no bounds or choices are
        inferred.
        """
        return cls(ParamSpec(name, _infer_type(value), value)
                   for name, value in defaults.items())

    # -- mapping protocol ---------------------------------------------------------
    def __iter__(self) -> Iterator[ParamSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> ParamSpec:
        return self._specs[name]

    def __bool__(self) -> bool:
        return bool(self._specs)

    def names(self) -> Tuple[str, ...]:
        """Parameter names, in declaration order."""
        return tuple(self._specs)

    def defaults(self) -> Dict[str, Any]:
        """The canonical default of every parameter, in declaration order."""
        return {spec.name: spec.default for spec in self}

    # -- resolution ---------------------------------------------------------------
    def validate(self, name: str, value: Any,
                 experiment: Optional[str] = None) -> Any:
        """Coerce one ``(name, value)`` pair to its canonical form.

        Raises
        ------
        UnknownParameterError
            When ``name`` is not declared (with close-match suggestions).
        ParameterValueError
            When ``value`` is outside the parameter's domain.
        """
        if name not in self._specs:
            raise UnknownParameterError(name, self.names(), experiment)
        return self._specs[name].coerce(value, experiment)

    def resolve(self, overrides: Optional[Mapping[str, Any]] = None,
                experiment: Optional[str] = None) -> Dict[str, Any]:
        """Merge ``overrides`` into the defaults, coercing every value."""
        params = self.defaults()
        for name, value in (overrides or {}).items():
            params[name] = self.validate(name, value, experiment)
        return params

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe description of every parameter (documentation)."""
        return {spec.name: spec.to_payload() for spec in self}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ParamSchema({list(self._specs)})"


def _infer_type(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, (list, tuple)):
        return "list"
    return "any"
