"""Execution strategies for the experiment engine.

The engine describes its work as a flat list of picklable *tasks* plus one
top-level *task function*; an executor decides where the calls run.  Two
strategies are provided:

* :class:`SerialExecutor` — evaluate in the calling process, in order.
* :class:`ProcessExecutor` — fan the tasks out over a
  :class:`concurrent.futures.ProcessPoolExecutor`, chunked to amortise the
  inter-process round-trip, yielding results as they complete.

Both yield ``(index, result)`` pairs so callers can either stream results as
they arrive (progress reporting, incremental table rows) or reassemble the
deterministic input order.  Determinism across strategies is the caller's
contract: every task must carry its own seed (see
:func:`repro.sim.random.spawn_seeds`) so the result of task ``i`` does not
depend on which worker — or how many workers — executed it.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple


def _run_chunk(function: Callable[[Any], Any],
               chunk: Sequence[Tuple[int, Any]]) -> List[Tuple[int, Any]]:
    """Worker entry point: evaluate one chunk of ``(index, task)`` pairs."""
    return [(index, function(task)) for index, task in chunk]


class SerialExecutor:
    """Evaluate tasks one after another in the calling process.

    This is the reference strategy: parallel strategies must produce the same
    ``(index, result)`` multiset for the same task list.
    """

    #: Worker count, kept for symmetry with :class:`ProcessExecutor`.
    jobs = 1

    def map_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, function(task))`` in input order."""
        for index, task in enumerate(tasks):
            yield index, function(task)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "SerialExecutor()"


class ProcessExecutor:
    """Evaluate tasks on a process pool, yielding results as they complete.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to ``os.cpu_count()``.
    chunksize:
        Tasks shipped per inter-process call.  The default splits the task
        list into about four chunks per worker, which keeps the pool busy
        while bounding the pickling overhead.

    Notes
    -----
    ``function`` and every task must be picklable (module-level function,
    plain-data task tuples).  Results are yielded unordered; callers that
    need the input order sort by the yielded index.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunksize: Optional[int] = None):
        resolved = jobs if jobs is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ValueError("jobs must be at least 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        self.jobs = resolved
        self.chunksize = chunksize

    def _chunks(self, tasks: Sequence[Any]) -> List[List[Tuple[int, Any]]]:
        indexed = list(enumerate(tasks))
        size = self.chunksize or max(1, math.ceil(len(indexed) / (self.jobs * 4)))
        return [indexed[start:start + size]
                for start in range(0, len(indexed), size)]

    def map_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, function(task))`` pairs in completion order."""
        tasks = list(tasks)
        if not tasks:
            return
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            pending = {pool.submit(_run_chunk, function, chunk)
                       for chunk in self._chunks(tasks)}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield from future.result()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ProcessExecutor(jobs={self.jobs}, chunksize={self.chunksize})"


def make_executor(jobs: Optional[int] = None,
                  chunksize: Optional[int] = None):
    """Build the executor matching a ``--jobs`` request.

    ``jobs`` of ``None`` or ``1`` selects the serial strategy; anything
    larger selects a process pool with that many workers.
    """
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessExecutor(jobs=jobs, chunksize=chunksize)


def run_ordered(executor, function: Callable[[Any], Any],
                tasks: Sequence[Any],
                on_result: Optional[Callable[[int, Any], None]] = None) -> List[Any]:
    """Evaluate all tasks and return the results in input order.

    ``on_result`` is invoked as each ``(index, result)`` arrives (completion
    order), which lets callers stream progress while still receiving a
    deterministic, input-ordered list.
    """
    tasks = list(tasks)
    results: List[Any] = [None] * len(tasks)
    for index, result in (executor or SerialExecutor()).map_tasks(function, tasks):
        results[index] = result
        if on_result is not None:
            on_result(index, result)
    return results
