"""Top-level orchestration: resolve, cache-check, execute, store.

:func:`run_experiment` is the single programmatic entry point of the
experiment engine — the CLI (``python -m repro run``), the examples and the
tests all go through it.  The flow for one run:

1. resolve the experiment name against the registry and merge parameter
   overrides into the spec's defaults;
2. compute the content-addressed cache key (experiment, parameters, seed,
   code version) and return the stored artifact on a hit;
3. otherwise execute the spec's adapter with an executor sized from
   ``jobs``, stamp the payload with its provenance, and store it.

Determinism contract: for a fixed seed the payload rows are identical
whatever ``jobs`` is, because every parallel task carries its own seed
spawned from the master seed (see :func:`repro.sim.random.spawn_seeds`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

from repro.obs.parallel import TracedExecutor
from repro.obs.tracer import activate, current_tracer
from repro.runner.backends import CacheBackend, resolve_backend
from repro.runner.cache import NullCache, ResultCache, code_version
from repro.runner.executor import make_executor
from repro.runner.registry import (ExperimentRegistry, RunContext,
                                   default_registry)
from repro.runner.result import RunResult

from repro.contention.tables import PAPER_SEED

#: Master seed every engine run defaults to (the paper's publication year,
#: matching ``repro.experiments.common.EXPERIMENT_SEED``).
DEFAULT_SEED = PAPER_SEED


def __getattr__(name: str):
    # Deprecation shim: the engine's result class is RunResult since the
    # repro.api redesign; the old name keeps resolving (to the same class)
    # with a once-per-call-site DeprecationWarning.
    if name == "ExperimentRun":
        from repro._deprecation import warn_deprecated
        warn_deprecated("repro.runner.engine.ExperimentRun is deprecated; "
                        "use repro.runner.RunResult", stacklevel=2)
        return RunResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def resolve_cache(cache: Any = True,
                  cache_root: Optional[str] = None):
    """Normalise the ``cache`` argument of :func:`run_experiment`.

    ``True`` builds the default on-disk cache (honouring ``cache_root`` and
    the ``REPRO_CACHE_DIR`` environment variable), ``False``/``None`` a
    :class:`NullCache`; a :class:`~repro.runner.backends.CacheBackend`
    instance or kind name (``"directory"``/``"shared"``) wraps in a
    :class:`ResultCache` over that backend (kind names are how the sweep
    driver ships a shared backend to process-pool workers); an existing
    cache object is passed through.
    """
    if cache is True:
        return ResultCache(root=cache_root)
    if cache is False or cache is None:
        return NullCache()
    if isinstance(cache, (CacheBackend, str)):
        return ResultCache(backend=resolve_backend(cache, cache_root))
    return cache


def run_experiment(name: str,
                   params: Optional[Mapping[str, Any]] = None,
                   jobs: int = 1,
                   seed: Optional[int] = DEFAULT_SEED,
                   cache: Any = True,
                   cache_root: Optional[str] = None,
                   registry: Optional[ExperimentRegistry] = None,
                   tracer: Any = None
                   ) -> RunResult:
    """Run one registered experiment, consulting the result cache.

    Parameters
    ----------
    name:
        Registry name (``python -m repro list`` prints them all).
    params:
        Overrides merged into the spec's schema defaults and coerced to
        their declared types (``"4"`` resolves — and caches — like ``4``).
        Unknown keys raise
        :class:`~repro.runner.params.UnknownParameterError` (a
        ``KeyError``) with close-match suggestions; out-of-domain values
        raise :class:`~repro.runner.params.ParameterValueError`.
    jobs:
        Worker processes; ``1`` runs serially, producing identical rows.
    seed:
        Master seed of the run (part of the cache key).  ``None`` draws
        unpredictable task seeds — such a run is *not* reproducible, so the
        result cache is bypassed entirely (neither looked up nor written):
        caching it would replay one arbitrary draw as if it were the
        deterministic answer.
    cache:
        ``True`` (default on-disk cache), ``False`` (no caching), or a cache
        object with ``key``/``load``/``store``.
    cache_root:
        Cache directory when ``cache`` is ``True``.
    registry:
        Registry to resolve ``name`` in; defaults to the full catalogue.
    tracer:
        Observability collector (:class:`repro.obs.Tracer`); defaults to
        the currently *active* tracer (usually the disabled
        :data:`~repro.obs.NULL_TRACER`).  Tracing never perturbs the run:
        it feeds neither the cache key nor any RNG stream, so a traced
        run's payload equals the untraced one for the same seed.

    Returns
    -------
    RunResult
        Rows, provenance and cache diagnostics of the run.
    """
    registry = registry or default_registry()
    jobs = max(1, jobs)
    spec = registry.get(name)
    resolved = spec.resolve_params(params)
    if seed is None:
        cache_obj = NullCache()
    else:
        cache_obj = resolve_cache(cache, cache_root)
    key = cache_obj.key(spec.name, _canonical_params(resolved), seed)

    tracer = tracer if tracer is not None else current_tracer()
    # ``jobs`` is deliberately NOT a span attribute: the deterministic view
    # of a trace must be identical for serial and parallel runs of one
    # workload (worker ids and meters live on the timing side).
    with activate(tracer), \
            tracer.span(f"run:{spec.name}", kind="run", experiment=spec.name,
                        seed=seed):
        start = time.perf_counter()
        with tracer.span("cache.lookup", kind="cache"):
            stored = cache_obj.load(key)
        if stored is not None:
            return RunResult(spec=spec, params=resolved, seed=seed,
                             jobs=jobs, cache_hit=True, cache_key=key,
                             code_version=stored.get("code_version",
                                                     code_version()),
                             elapsed_s=time.perf_counter() - start,
                             payload=stored["payload"])

        executor = make_executor(jobs)
        if tracer.enabled:
            executor = TracedExecutor(executor, tracer)
        context = RunContext(executor=executor, cache=cache_obj, seed=seed)
        with tracer.span(f"driver:{spec.name}", kind="driver"):
            payload = spec.runner(resolved, context)
        elapsed = time.perf_counter() - start
        try:
            with tracer.span("cache.store", kind="cache"):
                cache_obj.store(key, {
                    "experiment": spec.name,
                    "params": _canonical_params(resolved),
                    "seed": seed,
                    "code_version": code_version(),
                    "elapsed_s": elapsed,
                    "payload": payload,
                })
        except OSError:
            pass  # unwritable cache must not lose a finished computation
        return RunResult(spec=spec, params=resolved, seed=seed, jobs=jobs,
                         cache_hit=False, cache_key=key,
                         code_version=code_version(), elapsed_s=elapsed,
                         payload=payload)


def _canonical_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Parameters as they enter the cache key (JSON-safe, tuples as lists)."""
    from repro.runner.drivers import jsonify
    return jsonify(dict(params))


def canonical_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Public form of :func:`_canonical_params` — the exact JSON-safe
    parameter mapping that enters a run's cache key.  Callers above the
    runner (``Session.cache_key``, the service job hasher) use it so their
    identities coincide with the engine's."""
    return _canonical_params(params)
