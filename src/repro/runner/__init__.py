"""Experiment engine: registry, parallel executors and result caching.

This package turns the per-figure drivers of :mod:`repro.experiments` into
one orchestrated system:

* :mod:`repro.runner.params` — typed parameter schemas
  (:class:`ParamSpec`/:class:`ParamSchema`): validation, coercion to
  canonical values and did-you-mean errors shared by every entry point;
* :mod:`repro.runner.registry` — declarative catalogue of every experiment
  (name, typed schema, outputs, runtime estimate) with helpful lookup
  errors;
* :mod:`repro.runner.result` — :class:`RunResult`, the first-class result
  object every engine run returns (rows, metric accessors, provenance,
  deterministic ``to_table``/``to_json``/``to_csv``);
* :mod:`repro.runner.executor` — serial and process-pool execution
  strategies sharing one streaming ``(index, result)`` interface;
* :mod:`repro.runner.cache` — content-addressed on-disk JSON cache keyed by
  (experiment, parameters, seed, code version);
* :mod:`repro.runner.drivers` — adapters mapping each paper driver onto the
  engine contract (loaded lazily by :func:`default_registry`);
* :mod:`repro.runner.engine` — :func:`run_experiment`, the single
  programmatic entry point;
* :mod:`repro.runner.cli` — the ``python -m repro`` command line.

Determinism is the engine's core guarantee: every parallel task carries its
own seed spawned from the run's master seed, so ``--jobs N`` changes the
wall-clock, never the rows.
"""

from repro.runner.cache import NullCache, ResultCache, code_version
from repro.runner.engine import DEFAULT_SEED, run_experiment
from repro.runner.executor import (ProcessExecutor, SerialExecutor,
                                   make_executor, run_ordered)
from repro.runner.params import (ParamSchema, ParamSpec, ParameterValueError,
                                 UnknownParameterError, parse_param)
from repro.runner.registry import (ExperimentRegistry, ExperimentSpec,
                                   RunContext, UnknownExperimentError,
                                   default_registry)
from repro.runner.result import RunResult

__all__ = [
    "DEFAULT_SEED",
    "ExperimentRegistry",
    # "ExperimentRun" resolves too (deprecated alias of RunResult via the
    # module __getattr__ below) but is deliberately not in __all__.
    "ExperimentSpec",
    "NullCache",
    "ParamSchema",
    "ParamSpec",
    "ParameterValueError",
    "ProcessExecutor",
    "ResultCache",
    "RunContext",
    "RunResult",
    "SerialExecutor",
    "UnknownExperimentError",
    "UnknownParameterError",
    "code_version",
    "default_registry",
    "make_executor",
    "parse_param",
    "run_experiment",
    "run_ordered",
]


def __getattr__(name: str):
    # Deprecation shim mirroring repro.runner.engine.__getattr__.
    if name == "ExperimentRun":
        from repro._deprecation import warn_deprecated
        warn_deprecated("repro.runner.ExperimentRun is deprecated; use "
                        "repro.runner.RunResult", stacklevel=2)
        return RunResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
