"""Experiment engine: registry, parallel executors and result caching.

This package turns the per-figure drivers of :mod:`repro.experiments` into
one orchestrated system:

* :mod:`repro.runner.registry` — declarative catalogue of every experiment
  (name, parameters, outputs, runtime estimate) with helpful lookup errors;
* :mod:`repro.runner.executor` — serial and process-pool execution
  strategies sharing one streaming ``(index, result)`` interface;
* :mod:`repro.runner.cache` — content-addressed on-disk JSON cache keyed by
  (experiment, parameters, seed, code version);
* :mod:`repro.runner.drivers` — adapters mapping each paper driver onto the
  engine contract (loaded lazily by :func:`default_registry`);
* :mod:`repro.runner.engine` — :func:`run_experiment`, the single
  programmatic entry point;
* :mod:`repro.runner.cli` — the ``python -m repro`` command line.

Determinism is the engine's core guarantee: every parallel task carries its
own seed spawned from the run's master seed, so ``--jobs N`` changes the
wall-clock, never the rows.
"""

from repro.runner.cache import NullCache, ResultCache, code_version
from repro.runner.engine import DEFAULT_SEED, ExperimentRun, run_experiment
from repro.runner.executor import (ProcessExecutor, SerialExecutor,
                                   make_executor, run_ordered)
from repro.runner.registry import (ExperimentRegistry, ExperimentSpec,
                                   RunContext, UnknownExperimentError,
                                   default_registry)

__all__ = [
    "DEFAULT_SEED",
    "ExperimentRegistry",
    "ExperimentRun",
    "ExperimentSpec",
    "NullCache",
    "ProcessExecutor",
    "ResultCache",
    "RunContext",
    "SerialExecutor",
    "UnknownExperimentError",
    "code_version",
    "default_registry",
    "make_executor",
    "run_experiment",
    "run_ordered",
]
