"""Adapters wiring every experiment driver into the engine's registry.

Each adapter translates between the engine's uniform contract — a resolved
parameter dict plus a :class:`repro.runner.registry.RunContext` in, a
JSON-serialisable payload with a ``"rows"`` list out — and one driver from
:mod:`repro.experiments`.  The payloads are what the result cache stores, so
everything returned here must survive a JSON round trip unchanged.

The contention-heavy experiments (``fig6_csma``, ``contention_table``) fan
their Monte-Carlo grid points out through the context's executor with
per-point seeds, so their rows are identical for serial and parallel runs.
The analytical experiments (fig7–fig9, case study, improvements) share one
cached contention characterisation per ``(num_windows, seed)`` — built in
parallel when an executor is available and persisted through the result
cache, which is what makes a warm second run near-instant.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping

from repro.analysis.report import ExperimentReport
from repro.analysis.series import SeriesCollection
from repro.contention.monte_carlo import characterize_grid
from repro.contention.tables import ContentionTable, build_contention_table
from repro.core.energy_model import EnergyModel
from repro.experiments.common import TABLE_LOADS, TABLE_SIZES
from repro.mac.frames import total_packet_overhead_bytes
from repro.network.routing import ROUTING_KINDS
from repro.network.topology import TOPOLOGY_KINDS
from repro.network.traffic import TRAFFIC_MODEL_KINDS
from repro.runner.cache import code_version
from repro.runner.params import ParamSpec
from repro.runner.registry import ExperimentRegistry, ExperimentSpec, RunContext

#: Grid of the shared engine characterisation — the same axes
#: :func:`repro.experiments.common.fast_contention_table` uses, so the two
#: caching paths characterise identical (load, packet size) points.
ENGINE_TABLE_LOADS = TABLE_LOADS
ENGINE_TABLE_SIZES = TABLE_SIZES


# ---------------------------------------------------------------------------
# payload helpers
# ---------------------------------------------------------------------------

def jsonify(value: Any) -> Any:
    """Recursively coerce a payload to plain JSON types.

    Numpy scalars/arrays become Python numbers/lists, tuples become lists,
    and non-finite floats become ``None`` (JSON has no ``inf``/``nan``).
    """
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if hasattr(value, "tolist"):  # numpy array or scalar
        return jsonify(value.tolist())
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    return str(value)


def report_payload(report: ExperimentReport) -> Dict[str, Any]:
    """Serialise an :class:`ExperimentReport` (one dict per comparison row)."""
    return jsonify({
        "experiment_id": report.experiment_id,
        "title": report.title,
        "all_within_tolerance": report.all_within_tolerance,
        "rows": [{
            "quantity": row.quantity,
            "paper_value": row.paper_value,
            "measured_value": row.measured_value,
            "relative_error": row.relative_error,
            "within_tolerance": row.within_tolerance,
            "note": row.note,
        } for row in report.rows],
        "notes": list(report.notes),
    })


def report_rows(report: ExperimentReport) -> List[Dict[str, Any]]:
    """The comparison rows of a report, as engine result rows."""
    return report_payload(report)["rows"]


def series_rows(collection: SeriesCollection) -> List[Dict[str, Any]]:
    """Flatten a :class:`SeriesCollection` into one row per (series, x)."""
    rows: List[Dict[str, Any]] = []
    for series in collection.series:
        for x, y in zip(series.x, series.y):
            rows.append({"series": series.label,
                         "x": float(x), "y": float(y)})
    return jsonify(rows)


# ---------------------------------------------------------------------------
# shared contention characterisation
# ---------------------------------------------------------------------------

def engine_contention_table(context: RunContext, num_windows: int = 15,
                            num_nodes: int = 100) -> ContentionTable:
    """The shared (load, packet size) characterisation, cached on disk.

    Built with per-point seeds through the context's executor, so the table
    is identical for serial and parallel runs; the JSON snapshot is stored in
    the result cache, making every later experiment that needs it (fig7–fig9,
    case study, improvements, validation) start from a warm table.
    """
    params = {"loads": list(ENGINE_TABLE_LOADS),
              "packet_sizes": list(ENGINE_TABLE_SIZES),
              "num_windows": num_windows, "num_nodes": num_nodes}
    key = context.cache.key("contention_table", params, context.seed)
    cached = context.cache.load(key)
    if cached is not None:
        return ContentionTable.from_payload(cached["table"])
    table = build_contention_table(
        list(ENGINE_TABLE_LOADS), list(ENGINE_TABLE_SIZES),
        num_windows=num_windows, executor=context.executor,
        seed=context.seed, num_nodes=num_nodes)
    try:
        context.cache.store(key, {"experiment": "contention_table",
                                  "params": jsonify(params),
                                  "seed": context.seed,
                                  "code_version": code_version(),
                                  "table": jsonify(table.to_payload())})
    except OSError:
        pass  # unwritable cache: keep the freshly built table anyway
    return table


def engine_model(context: RunContext, num_windows: int = 15) -> EnergyModel:
    """The energy model the analytical experiments start from."""
    return EnergyModel(
        contention_source=engine_contention_table(context,
                                                  num_windows=num_windows))


def _table_rows(table: ContentionTable) -> List[Dict[str, Any]]:
    return jsonify([{
        "load": stats.load,
        "packet_bytes": stats.packet_bytes,
        "t_cont_s": stats.mean_contention_time_s,
        "n_cca": stats.mean_cca_count,
        "pr_col": stats.collision_probability,
        "pr_cf": stats.channel_access_failure_probability,
        "samples": stats.samples,
    } for stats in table.grid_statistics()])


# ---------------------------------------------------------------------------
# adapters
# ---------------------------------------------------------------------------

def run_contention_table(params: Mapping[str, Any],
                         context: RunContext) -> Dict[str, Any]:
    """Characterise the full contention grid (the engine's shared table)."""
    table = engine_contention_table(context,
                                    num_windows=params["num_windows"],
                                    num_nodes=params["num_nodes"])
    return {"rows": _table_rows(table)}


def run_fig6(params: Mapping[str, Any], context: RunContext) -> Dict[str, Any]:
    """Figure 6: contention quantities vs load, one row per (payload, load).

    Every (payload, load) point is an independent Monte-Carlo task with its
    own spawned seed, fanned out through the context executor.
    """
    loads = [float(load) for load in params["loads"]]
    payloads = [int(p) for p in params["payload_sizes"]]
    overhead = total_packet_overhead_bytes()
    points = [(load, payload + overhead)
              for payload in payloads for load in loads]
    stats = characterize_grid(points, num_windows=params["num_windows"],
                              num_nodes=params["num_nodes"],
                              seed=context.seed, executor=context.executor,
                              stream_name="fig6")

    grid = [(payload, load) for payload in payloads for load in loads]
    rows: List[Dict[str, Any]] = []
    for (payload, load), point in zip(grid, stats):
        rows.append({"payload_bytes": payload, "load": load,
                     "on_air_bytes": payload + overhead,
                     "t_cont_s": point.mean_contention_time_s,
                     "n_cca": point.mean_cca_count,
                     "pr_col": point.collision_probability,
                     "pr_cf": point.channel_access_failure_probability})

    report = ExperimentReport(
        experiment_id="EXP-F6",
        title="Slotted CSMA/CA behaviour vs load and packet size (Figure 6)")
    for payload in payloads:
        per_payload = [row for row in rows if row["payload_bytes"] == payload]
        low, high = per_payload[0], per_payload[-1]
        report.add(
            quantity=f"Pr_cf growth with load ({payload} B), high/low ratio",
            paper_value=None,
            measured_value=high["pr_cf"] / max(low["pr_cf"], 1e-9),
            note="must exceed 1: contention degrades with load")
        report.add(
            quantity=f"N_CCA at max load ({payload} B)",
            paper_value=None,
            measured_value=high["n_cca"],
            note="between 2 (always clear) and 6 (paper CSMA convention)")
    return {"rows": jsonify(rows), "report": report_payload(report)}


def run_fig3(params: Mapping[str, Any], context: RunContext) -> Dict[str, Any]:
    """Figure 3: CC2420 characterisation (pure table lookups, serial)."""
    from repro.experiments.fig3_radio import run_fig3_radio_characterization
    # Divide (don't multiply by 1e-6): 100.0 / 1e6 rounds to the exact
    # float of the paper's 100e-6 literal, keeping the default comparison
    # anchored on the stated 7.0 ratio.
    result = run_fig3_radio_characterization(
        power_goal_w=params["power_goal_uw"] / 1e6)
    return {"rows": report_rows(result.report),
            "report": report_payload(result.report)}


def run_fig4(params: Mapping[str, Any], context: RunContext) -> Dict[str, Any]:
    """Figure 4: BER curves and the equation (1) regression."""
    from repro.experiments.fig4_ber import run_fig4_ber
    result = run_fig4_ber(bench_bits_per_point=params["bench_bits_per_point"],
                          seed=context.seed)
    return {"rows": series_rows(result.curves),
            "report": report_payload(result.report),
            "fitted_coefficient": float(result.fitted_coefficient),
            "fitted_exponent": float(result.fitted_exponent)}


def run_fig7(params: Mapping[str, Any], context: RunContext) -> Dict[str, Any]:
    """Figure 7: optimal energy per bit vs path loss (per load)."""
    from repro.experiments.fig7_link import run_fig7_link_adaptation
    model = engine_model(context, num_windows=params["num_windows"])
    result = run_fig7_link_adaptation(
        model=model, loads=tuple(params["loads"]),
        payload_bytes=params["payload_bytes"],
        beacon_order=params["beacon_order"])
    return {"rows": series_rows(result.curves),
            "report": report_payload(result.report)}


def run_fig8(params: Mapping[str, Any], context: RunContext) -> Dict[str, Any]:
    """Figure 8: energy per bit vs payload size (per load)."""
    from repro.experiments.fig8_packet import run_fig8_packet_size
    model = engine_model(context, num_windows=params["num_windows"])
    result = run_fig8_packet_size(
        model=model, loads=tuple(params["loads"]),
        path_loss_db=params["path_loss_db"],
        beacon_order=params["beacon_order"])
    return {"rows": series_rows(result.curves),
            "report": report_payload(result.report)}


def run_fig9(params: Mapping[str, Any], context: RunContext) -> Dict[str, Any]:
    """Figure 9: case-study energy / time breakdowns."""
    from repro.experiments.fig9_breakdown import run_fig9_breakdown
    model = engine_model(context, num_windows=params["num_windows"])
    result = run_fig9_breakdown(
        model=model, path_loss_resolution=params["path_loss_resolution"])
    return {"rows": report_rows(result.report),
            "report": report_payload(result.report)}


def run_case_study(params: Mapping[str, Any],
                   context: RunContext) -> Dict[str, Any]:
    """Section 5 case study: the 211 µW / 1.45 s / 16 % headline numbers."""
    from repro.experiments.case_study import run_case_study as driver
    model = engine_model(context, num_windows=params["num_windows"])
    result = driver(model=model,
                    path_loss_resolution=params["path_loss_resolution"])
    return {"rows": report_rows(result.report),
            "report": report_payload(result.report),
            "average_power_uw": float(result.with_adaptation.average_power_w * 1e6)}


def run_improvements(params: Mapping[str, Any],
                     context: RunContext) -> Dict[str, Any]:
    """Section 6 improvement perspectives (−12 % transitions, −15 % RX)."""
    from repro.experiments.improvements import run_improvements as driver
    model = engine_model(context, num_windows=params["num_windows"])
    result = driver(model=model,
                    path_loss_resolution=params["path_loss_resolution"],
                    transition_factor=params["transition_factor"],
                    rx_scale=params["rx_scale"])
    return {"rows": report_rows(result.report),
            "report": report_payload(result.report)}


def run_case_study_full(params: Mapping[str, Any],
                        context: RunContext) -> Dict[str, Any]:
    """Section 5 case study simulated at full scale (batched backend).

    The default batched backend advances every (channel, replication) lane
    in one lockstep kernel call; the vectorized and event backends fan the
    channels out as independent tasks with their own spawned seeds through
    the context executor.  Per-channel summaries are aggregated NaN-safely
    (channels that delivered nothing are skipped in the delay mean instead
    of poisoning it).
    """
    from repro.experiments.case_study_full import run_full_case_study
    cap = params["nodes_per_channel_cap"]
    result = run_full_case_study(
        total_nodes=params["total_nodes"],
        num_channels=params["num_channels"],
        superframes=params["superframes"],
        beacon_order=params["beacon_order"],
        superframe_order=params["superframe_order"],
        payload_bytes=params["payload_bytes"],
        nodes_per_channel_cap=int(cap) if cap is not None else None,
        backend=params["backend"],
        battery_life_extension=params["battery_life_extension"],
        csma_convention=params["csma_convention"],
        tx_policy=params["tx_policy"],
        traffic_model=params["traffic_model"],
        traffic_rate_scale=params["traffic_rate_scale"],
        traffic_mix=params["traffic_mix"],
        topology=params["topology"],
        routing=params["routing"],
        max_hops=params["max_hops"],
        replications=params["replications"],
        seed=context.seed,
        executor=context.executor)
    return {"rows": jsonify(result.channel_rows),
            "aggregate": jsonify(result.aggregate),
            "report": report_payload(result.report)}


def run_model_vs_sim(params: Mapping[str, Any],
                     context: RunContext) -> Dict[str, Any]:
    """Cross-check: analytical model vs packet-level MAC simulation."""
    from repro.experiments.validation import run_model_vs_simulation
    model = engine_model(context, num_windows=params["num_windows"])
    result = run_model_vs_simulation(
        model=model, num_nodes=params["num_nodes"],
        beacon_order=params["beacon_order"],
        superframes=params["superframes"], seed=context.seed)
    simulation = result.simulation
    return {"rows": report_rows(result.report),
            "report": report_payload(result.report),
            "model_power_uw": float(result.model_power_w * 1e6),
            "simulated_power_uw": float(simulation.mean_node_power_w * 1e6),
            "simulated_failure_probability":
                float(simulation.failure_probability)}


# ---------------------------------------------------------------------------
# registry assembly
# ---------------------------------------------------------------------------

#: Row columns of experiments whose rows are report comparison rows.
REPORT_COLUMNS = ("quantity", "paper_value", "measured_value",
                  "relative_error", "within_tolerance", "note")


def _num_windows(default: int) -> ParamSpec:
    return ParamSpec("num_windows", "int", default, minimum=1, maximum=64,
                     doc="Monte-Carlo contention windows simulated per "
                         "grid point")


def _loads(default: List[float]) -> ParamSpec:
    return ParamSpec("loads", "list", default, element="float",
                     minimum=0.0, maximum=1.0,
                     doc="normalised offered loads evaluated")


def _beacon_order(default: int) -> ParamSpec:
    return ParamSpec("beacon_order", "int", default, minimum=0, maximum=14,
                     doc="IEEE 802.15.4 beacon order BO (inter-beacon "
                         "period 2^BO base superframes)")


def build_default_registry() -> ExperimentRegistry:
    """Register every paper experiment and return the populated registry.

    Every spec declares a *typed* parameter schema: overrides from any
    entry point (CLI ``--param``, sweep axes, :meth:`repro.api.Session.run`
    keywords) are validated and canonicalised against it before anything
    runs or touches the cache.
    """
    registry = ExperimentRegistry()
    registry.register(ExperimentSpec(
        name="contention_table", figure="Fig. 6 (grid)",
        title="Monte-Carlo contention characterisation over the full "
              "(load, packet size) grid",
        runner=run_contention_table,
        params=[
            _num_windows(15),
            ParamSpec("num_nodes", "int", 100, minimum=2,
                      doc="contending nodes sharing the channel"),
        ],
        output_names=("load", "packet_bytes", "t_cont_s", "n_cca",
                      "pr_col", "pr_cf", "samples"),
        expected_runtime_s=3.0, supports_jobs=True))
    registry.register(ExperimentSpec(
        name="fig3_radio", figure="Fig. 3",
        title="CC2420 state powers, transition times and energies",
        runner=run_fig3,
        params=[
            ParamSpec("power_goal_uw", "float", 100.0, minimum=1.0,
                      doc="energy-scavenging power budget the idle draw is "
                          "compared against [uW]"),
        ],
        output_names=REPORT_COLUMNS,
        expected_runtime_s=0.1))
    registry.register(ExperimentSpec(
        name="fig4_ber", figure="Fig. 4",
        title="Bit error rate vs received power and the eq. (1) regression",
        runner=run_fig4,
        params=[
            ParamSpec("bench_bits_per_point", "int", 60_000, minimum=1_000,
                      doc="bits pushed through the wired test bench per "
                          "receive-power point"),
        ],
        output_names=("series", "x", "y"),
        expected_runtime_s=5.0))
    registry.register(ExperimentSpec(
        name="fig6_csma", figure="Fig. 6",
        title="Slotted CSMA/CA contention quantities vs load and packet size",
        runner=run_fig6,
        params=[
            _loads([0.1, 0.2, 0.3, 0.42, 0.6, 0.8]),
            ParamSpec("payload_sizes", "list", [10, 20, 50, 100],
                      element="int", minimum=1, maximum=127,
                      doc="MAC payload sizes evaluated [bytes]"),
            _num_windows(12),
            ParamSpec("num_nodes", "int", 100, minimum=2,
                      doc="contending nodes sharing the channel"),
        ],
        output_names=("payload_bytes", "load", "on_air_bytes",
                      "t_cont_s", "n_cca", "pr_col", "pr_cf"),
        expected_runtime_s=2.0, supports_jobs=True))
    registry.register(ExperimentSpec(
        name="fig7_link", figure="Fig. 7",
        title="Link adaptation: optimal energy per bit vs path loss",
        runner=run_fig7,
        params=[
            _loads([0.2, 0.42, 0.6]),
            ParamSpec("payload_bytes", "int", 120, minimum=1, maximum=127,
                      doc="MAC payload per data packet [bytes]"),
            _beacon_order(6),
            _num_windows(15),
        ],
        output_names=("series", "x", "y"),
        expected_runtime_s=8.0, supports_jobs=True))
    registry.register(ExperimentSpec(
        name="fig8_packet", figure="Fig. 8",
        title="Energy per bit vs payload size",
        runner=run_fig8,
        params=[
            _loads([0.2, 0.42, 0.6]),
            ParamSpec("path_loss_db", "float", 75.0, minimum=0.0,
                      maximum=150.0,
                      doc="node-to-coordinator attenuation [dB]"),
            _beacon_order(6),
            _num_windows(15),
        ],
        output_names=("series", "x", "y"),
        expected_runtime_s=5.0, supports_jobs=True))
    registry.register(ExperimentSpec(
        name="fig9_breakdown", figure="Fig. 9",
        title="Energy per phase and time per state breakdowns",
        runner=run_fig9,
        params=[
            ParamSpec("path_loss_resolution", "int", 41, minimum=2,
                      doc="grid points of the path-loss expectation "
                          "integral"),
            _num_windows(15),
        ],
        output_names=REPORT_COLUMNS,
        expected_runtime_s=6.0, supports_jobs=True))
    registry.register(ExperimentSpec(
        name="case_study", figure="Section 5",
        title="Dense-network case study headline numbers",
        runner=run_case_study,
        params=[
            ParamSpec("path_loss_resolution", "int", 41, minimum=2,
                      doc="grid points of the path-loss expectation "
                          "integral"),
            _num_windows(15),
        ],
        output_names=REPORT_COLUMNS,
        expected_runtime_s=8.0, supports_jobs=True))
    registry.register(ExperimentSpec(
        name="improvements", figure="Section 6",
        title="Improvement perspectives: faster transitions, scalable receiver",
        runner=run_improvements,
        params=[
            ParamSpec("path_loss_resolution", "int", 31, minimum=2,
                      doc="grid points of the path-loss expectation "
                          "integral"),
            ParamSpec("transition_factor", "float", 0.5, minimum=0.0,
                      maximum=1.0,
                      doc="scale on every radio state-transition time"),
            ParamSpec("rx_scale", "float", 0.5, minimum=0.0, maximum=1.0,
                      doc="scale on the receive-state power draw"),
            _num_windows(15),
        ],
        output_names=REPORT_COLUMNS,
        expected_runtime_s=10.0, supports_jobs=True))
    registry.register(ExperimentSpec(
        name="case_study_full", figure="Section 5 (simulated)",
        title="Full-scale packet-level simulation of the dense-network "
              "case study (batched lockstep kernel)",
        runner=run_case_study_full,
        params=[
            ParamSpec("total_nodes", "int", 1600, minimum=1,
                      doc="sensor nodes in the network"),
            ParamSpec("num_channels", "int", None, minimum=1, maximum=16,
                      doc="FDMA cells (None: all 16 IEEE 802.15.4 "
                          "channels)"),
            ParamSpec("superframes", "int", 50, minimum=1,
                      doc="simulated horizon [superframes]"),
            _beacon_order(6),
            ParamSpec("superframe_order", "int", None, minimum=0, maximum=14,
                      doc="superframe order SO (None: SO = BO, no inactive "
                          "portion)"),
            ParamSpec("payload_bytes", "int", 120, minimum=1, maximum=127,
                      doc="MAC payload per data packet [bytes]"),
            ParamSpec("nodes_per_channel_cap", "int", None, minimum=1,
                      doc="cap on simulated nodes per channel (None: "
                          "uncapped)"),
            ParamSpec("backend", "str", "batched",
                      choices=("batched", "vectorized", "event"),
                      doc="simulation kernel: batched lockstep fan-out, "
                          "per-channel vectorized tasks, or the "
                          "discrete-event reference"),
            ParamSpec("replications", "int", 1, minimum=1,
                      doc="Monte-Carlo replications per channel "
                          "(replication 0 reuses the historical channel "
                          "seed)"),
            ParamSpec("battery_life_extension", "bool", False,
                      doc="IEEE 802.15.4 battery-life-extension CAP mode"),
            ParamSpec("csma_convention", "str", "paper",
                      choices=("paper", "standard"),
                      doc="CSMA give-up rule: paper (two BE increments) or "
                          "standard macMaxCSMABackoffs"),
            ParamSpec("tx_policy", "str", "adaptive",
                      choices=("adaptive", "fixed"),
                      doc="transmit power policy: channel inversion or "
                          "fixed 0 dBm"),
            ParamSpec("traffic_model", "str", "saturated",
                      choices=TRAFFIC_MODEL_KINDS,
                      doc="per-node packet process: saturated (paper's "
                          "one packet per superframe), periodic buffered "
                          "sensing, poisson, bursty alarms, or a mixed "
                          "population"),
            ParamSpec("traffic_rate_scale", "float", 1.0, minimum=0.01,
                      maximum=100.0,
                      doc="mean packet rate of the stochastic traffic "
                          "models relative to the paper's periodic "
                          "baseline (ignored by 'saturated')"),
            ParamSpec("traffic_mix", "float", 0.25, minimum=0.0, maximum=1.0,
                      doc="bursty-alarm node fraction of the 'mixed' "
                          "traffic population (the rest sense "
                          "periodically)"),
            ParamSpec("topology", "str", "star",
                      choices=TOPOLOGY_KINDS,
                      doc="per-channel node layout: the paper's star "
                          "(direct path-loss draw) or a geometric "
                          "placement (grid lattice, uniform disc, "
                          "clustered) whose losses derive from geometry"),
            ParamSpec("routing", "str", "gradient",
                      choices=ROUTING_KINDS,
                      doc="sink-tree discipline over a geometric "
                          "topology: gradient (min hops, then min "
                          "cumulative loss) or min_hop (seeded "
                          "tie-breaking)"),
            ParamSpec("max_hops", "int", 1, minimum=1, maximum=8,
                      doc="hop-depth cap of the routing tree (1: every "
                          "node on a direct sink link; needs a geometric "
                          "topology when above 1)"),
        ],
        output_names=("channel", "nodes", "packets_attempted",
                      "packets_delivered", "channel_access_failures",
                      "collisions", "failure_probability", "mean_power_uw",
                      "mean_delivery_delay_s", "energy_by_phase_j"),
        expected_runtime_s=20.0, supports_jobs=True))
    registry.register(ExperimentSpec(
        name="model_vs_sim", figure="Section 4 (validation)",
        title="Analytical model vs packet-level MAC simulation",
        runner=run_model_vs_sim,
        params=[
            ParamSpec("num_nodes", "int", 12, minimum=2,
                      doc="nodes in the simulated star network"),
            _beacon_order(3),
            ParamSpec("superframes", "int", 8, minimum=1,
                      doc="simulated horizon [superframes]"),
            _num_windows(15),
        ],
        output_names=REPORT_COLUMNS,
        expected_runtime_s=15.0, supports_jobs=True))
    return registry
