"""First-class result objects of the experiment engine.

A :class:`RunResult` is what :func:`repro.runner.engine.run_experiment` (and
therefore :meth:`repro.api.Session.run`) returns: the result rows plus
everything identifying how they were produced — resolved canonical
parameters, master seed, cache key and hit/miss, code-version token and
wall-clock.  It replaces the ad-hoc ``{"rows": [...]}`` dict plumbing: the
CLI output writers, the sweep tables and library callers all consume the
same typed accessors.

Serialisation goes through the shared writers of :mod:`repro.analysis.io`,
so ``result.to_json()`` is byte-identical to
``python -m repro run ... --output json`` and ``result.to_csv()`` to the
``--output csv`` export (declared ``output_names`` first, stable across
cache hits).

Two results compare equal when they describe the same computation — same
experiment, canonical parameters, seed and payload — regardless of whether
either was served from the cache or how long it took; a cache-hit replay is
*equal* to the run that populated the cache.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.io import ordered_columns, rows_to_csv_text, \
    rows_to_json_text
from repro.runner.registry import ExperimentSpec


@dataclass(eq=False)
class RunResult:
    """Outcome of one engine run.

    Attributes
    ----------
    spec:
        The resolved registry entry.
    params:
        The fully resolved *canonical* parameters of the run (defaults
        merged with coerced overrides — see
        :class:`repro.runner.params.ParamSchema`).
    seed / jobs:
        Master seed and worker count of the run.
    cache_hit:
        Whether the payload was served from the result cache.
    cache_key:
        Content hash identifying the artifact.
    code_version:
        Source-tree token the run (and its cache key) was produced under.
    elapsed_s:
        Wall-clock of the producing call (near zero on a hit).
    payload:
        The JSON-serialisable result; ``payload["rows"]`` is the row list.
    """

    spec: ExperimentSpec
    params: Dict[str, Any]
    seed: Optional[int]
    jobs: int
    cache_hit: bool
    cache_key: str
    code_version: str
    elapsed_s: float
    payload: Dict[str, Any]

    # -- identity -----------------------------------------------------------------
    @property
    def experiment(self) -> str:
        """Registry name of the experiment that produced this result."""
        return self.spec.name

    @property
    def output_names(self) -> Tuple[str, ...]:
        """The declared row columns of the experiment."""
        return tuple(self.spec.output_names)

    # -- rows and metrics ---------------------------------------------------------
    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The result rows of the experiment."""
        return self.payload["rows"]

    @property
    def report(self) -> Optional[Dict[str, Any]]:
        """The paper-vs-measured report payload, when the experiment has one."""
        return self.payload.get("report")

    def column(self, name: str) -> List[Any]:
        """The values of one row column, in row order.

        Raises
        ------
        KeyError
            With close-match suggestions when no row has the column.
        """
        available = self.csv_columns()
        if name not in available:
            raise KeyError(_missing(name, available, "column",
                                    self.experiment))
        return [row.get(name) for row in self.rows]

    @property
    def metrics(self) -> Dict[str, Any]:
        """Scalar top-level payload fields (``rows``/``report`` excluded)."""
        return {key: value for key, value in self.payload.items()
                if key not in ("rows", "report")
                and (value is None or isinstance(value, (bool, int, float,
                                                         str)))}

    def metric(self, name: str) -> Any:
        """One scalar payload metric by name (with suggestions on a miss)."""
        metrics = self.metrics
        if name not in metrics:
            raise KeyError(_missing(name, tuple(metrics), "metric",
                                    self.experiment))
        return metrics[name]

    # -- serialisation ------------------------------------------------------------
    def csv_columns(self) -> List[str]:
        """Deterministic column order of the row table.

        A cache-served payload comes back with JSON-sorted row keys while a
        fresh run keeps driver insertion order — exports and tables must not
        depend on which one happened.  The spec's declared ``output_names``
        (in their documented order) come first, any extra row keys follow
        sorted.
        """
        present = ordered_columns(self.rows)
        declared = [name for name in self.spec.output_names
                    if name in present]
        return declared + sorted(name for name in present
                                 if name not in declared)

    def to_json(self) -> str:
        """The rows as deterministic JSON text.

        Byte-identical to ``python -m repro run ... --output json`` (which
        calls exactly this).
        """
        return rows_to_json_text(self.rows)

    def to_csv(self) -> str:
        """The rows as deterministic CSV text (stable column order)."""
        return rows_to_csv_text(self.rows, columns=self.csv_columns())

    def to_table(self, title: Optional[str] = None) -> str:
        """Render the rows as the ASCII table the CLI prints."""
        from repro.analysis.tables import format_table
        if not self.rows:
            return "(no rows)"
        columns = self.csv_columns()
        table_rows = [[row.get(column, "") for column in columns]
                      for row in self.rows]
        return format_table(columns, table_rows,
                            title=title or
                            f"{self.spec.name} ({self.spec.figure})")

    def to_dict(self) -> Dict[str, Any]:
        """Full provenance document (JSON-safe)."""
        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "seed": self.seed,
            "jobs": self.jobs,
            "cache_hit": self.cache_hit,
            "cache_key": self.cache_key,
            "code_version": self.code_version,
            "elapsed_s": self.elapsed_s,
            "payload": self.payload,
        }

    # -- equality -----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Semantic equality: same computation, same data.

        Compares experiment, canonical parameters, seed, cache key and
        payload — *not* ``cache_hit``, ``jobs`` or ``elapsed_s``, so a
        cache-hit replay equals the run that populated the cache.
        """
        if not isinstance(other, RunResult):
            return NotImplemented
        return (self.experiment == other.experiment
                and self.params == other.params
                and self.seed == other.seed
                and self.cache_key == other.cache_key
                and self.payload == other.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"RunResult({self.experiment!r}, rows={len(self.rows)}, "
                f"seed={self.seed}, "
                f"{'cache hit' if self.cache_hit else 'computed'}, "
                f"key={self.cache_key[:12]})")


def _missing(name: str, known: Tuple[str, ...], kind: str,
             experiment: str) -> str:
    message = (f"Experiment {experiment!r} result has no {kind} {name!r}; "
               f"available: {', '.join(known) or '(none)'}.")
    suggestions = difflib.get_close_matches(name, known, n=3)
    if suggestions:
        message += f" Did you mean: {', '.join(suggestions)}?"
    return message
