"""Stable library façade of the reproduction — the documented entry point.

``repro.api`` is the one import a library user needs.  A :class:`Session`
bundles the run-time policy every call shares — cache directory, worker
count, master seed, experiment registry — so application code configures it
once and then talks to the engine and the sweep subsystem through three
methods:

>>> import repro.api as api
>>> session = api.Session(cache_dir="/tmp/doctest-repro-api")
>>> [spec.name for spec in session.experiments()][:2]
['case_study', 'case_study_full']

``session.run(name, **params)`` executes (or replays from the cache) one
registered experiment and returns a typed
:class:`~repro.runner.result.RunResult`; ``session.sweep(spec_or_name)``
runs a design-space exploration; ``session.cache`` exposes the underlying
result cache for inspection and maintenance.

Everything here is a thin veneer: the same registry, engine and cache the
``python -m repro`` CLI uses, with the same typed parameter validation
(unknown names fail with did-you-mean suggestions, values are coerced to
their declared types) and the same content-addressed cache keys — a
``session.run`` and the equivalent CLI invocation share artifacts.

Layering: ``repro.api`` sits *on top of* :mod:`repro.runner` and
:mod:`repro.sweep`; neither imports it back (asserted in CI).
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Union

from repro.runner.backends import (CacheBackend, DirectoryBackend,
                                   SharedDirectoryBackend, resolve_backend)
from repro.runner.cache import code_version
from repro.runner.engine import (DEFAULT_SEED, canonical_params,
                                 resolve_cache, run_experiment)
from repro.runner.params import (ParamSchema, ParamSpec, ParameterValueError,
                                 UnknownParameterError, parse_param_arg)
from repro.runner.registry import (ExperimentRegistry, ExperimentSpec,
                                   UnknownExperimentError, default_registry)
from repro.runner.result import RunResult
from repro.sweep.artifacts import optimize_json_text, sweep_json_text
from repro.sweep.catalog import (UnknownOptimizeError, UnknownSweepError,
                                 get_optimize, get_sweep)
from repro.sweep.driver import SweepRunResult, run_sweep, sweep_status
from repro.sweep.optimize import (ChoiceDimension, FloatDimension,
                                  IntDimension, OptimizeResult, OptimizeSpec,
                                  run_optimize)
from repro.sweep.spec import GridAxis, RandomAxis, RangeAxis, SweepSpec

__all__ = [
    "Session",
    "RunResult",
    "SweepRunResult",
    "SweepSpec",
    "OptimizeResult",
    "OptimizeSpec",
    "IntDimension",
    "FloatDimension",
    "ChoiceDimension",
    "UnknownOptimizeError",
    "optimize_json_text",
    "GridAxis",
    "RangeAxis",
    "RandomAxis",
    "ParamSpec",
    "ParamSchema",
    "ParameterValueError",
    "UnknownParameterError",
    "UnknownExperimentError",
    "UnknownSweepError",
    "DEFAULT_SEED",
    "code_version",
    "canonical_params",
    "parse_param_arg",
    "sweep_json_text",
    "CacheBackend",
    "DirectoryBackend",
    "SharedDirectoryBackend",
    "resolve_backend",
]

_UNSET = object()


class Session:
    """One configured connection to the experiment engine.

    Parameters
    ----------
    cache_dir:
        Result-cache directory.  ``None`` uses the default resolution
        (``REPRO_CACHE_DIR`` environment variable, then
        ``~/.cache/repro-bougard``).
    cache:
        ``True`` (on-disk cache at ``cache_dir``), ``False`` (no caching),
        or a ready cache object.
    backend:
        Cache storage backend: a
        :class:`~repro.runner.backends.CacheBackend` instance or a kind
        name (``"directory"`` — the default local layout — or ``"shared"``
        — cross-process file locking for N workers on one cache
        directory), built over ``cache_dir``.  Mutually exclusive with a
        non-default ``cache`` argument.
    jobs:
        Default worker-process count of every run and sweep (``1`` =
        serial; rows are identical either way).
    seed:
        Default master seed — the session's *seed policy*.  Every
        :meth:`run` uses it unless overridden per call; ``None`` makes runs
        intentionally non-reproducible (and uncached).
    registry:
        Experiment registry to resolve names in; defaults to the full
        catalogue.
    trace:
        Path of a :mod:`repro.obs` trace artifact.  When set, every
        :meth:`run` and :meth:`sweep` records spans into one session-wide
        :class:`~repro.obs.Tracer` and the artifact at ``trace`` is
        rewritten after each call, so it always reflects the session so
        far.  Tracing never perturbs results (see
        ``docs/observability.md``).

    Examples
    --------
    >>> session = Session(cache_dir="/tmp/doctest-repro-api", jobs=1)
    >>> result = session.run("fig3_radio")
    >>> result.experiment
    'fig3_radio'
    """

    def __init__(self, *,
                 cache_dir: Optional[Union[str, os.PathLike]] = None,
                 cache: Any = True,
                 backend: Any = None,
                 jobs: int = 1,
                 seed: Optional[int] = DEFAULT_SEED,
                 registry: Optional[ExperimentRegistry] = None,
                 trace: Optional[Union[str, os.PathLike]] = None):
        self._cache_root = None if cache_dir is None else str(cache_dir)
        if backend is not None:
            if cache is not True:
                raise ValueError("pass either backend= or cache=, not both")
            cache = resolve_backend(backend, self._cache_root)
        self._cache = resolve_cache(cache, self._cache_root)
        self._jobs = max(1, jobs)
        self._seed = seed
        self._registry = registry or default_registry()
        self._trace_path = None if trace is None else str(trace)
        self._tracer = None
        if self._trace_path is not None:
            from repro.obs import Tracer
            self._tracer = Tracer(name="session")

    # -- introspection ------------------------------------------------------------
    @property
    def cache(self):
        """The session's result cache (:class:`ResultCache` or
        :class:`NullCache`)."""
        return self._cache

    @property
    def jobs(self) -> int:
        """Default worker count of this session."""
        return self._jobs

    @property
    def seed(self) -> Optional[int]:
        """Default master seed of this session."""
        return self._seed

    @property
    def registry(self) -> ExperimentRegistry:
        """The experiment registry this session resolves names in."""
        return self._registry

    @property
    def tracer(self):
        """The session's :class:`repro.obs.Tracer` (``None`` untraced)."""
        return self._tracer

    def experiments(self) -> List[ExperimentSpec]:
        """Every registered experiment, sorted by name.

        Each spec carries its typed parameter schema (``spec.schema``),
        output columns and runtime estimate — everything
        ``python -m repro list --verbose`` prints.
        """
        return list(self._registry)

    def experiment(self, name: str) -> ExperimentSpec:
        """One registered experiment by name (with did-you-mean on a miss)."""
        return self._registry.get(name)

    # -- execution ----------------------------------------------------------------
    def run(self, name: str, *, jobs: Optional[int] = None,
            seed: Any = _UNSET, **params: Any) -> RunResult:
        """Run one registered experiment and return its :class:`RunResult`.

        Parameters are keyword arguments validated against the experiment's
        typed schema — ``session.run("fig6_csma", num_windows=4)`` — and
        coerced to canonical values, so equivalent spellings share one
        cache entry.  ``jobs`` and ``seed`` default to the session's
        policy.

        Raises
        ------
        UnknownExperimentError
            Unknown experiment name (with suggestions).
        UnknownParameterError
            Unknown parameter name (with suggestions).
        ParameterValueError
            A value outside its parameter's domain.
        """
        result = run_experiment(
            name, params=params,
            jobs=self._jobs if jobs is None else jobs,
            seed=self._seed if seed is _UNSET else seed,
            cache=self._cache, registry=self._registry,
            tracer=self._tracer)
        self._flush_trace()
        return result

    def sweep(self, spec: Union[SweepSpec, str], *, quick: bool = False,
              jobs: Optional[int] = None) -> SweepRunResult:
        """Run a design-space sweep (a :class:`SweepSpec` or catalogue name).

        A string resolves through the sweep catalogue (``quick=True``
        selects the scaled-down CI variant).  Finished points are served
        from the session cache, so repeating a sweep recomputes nothing.
        """
        spec = self._resolve_sweep(spec, quick)
        result = run_sweep(spec, jobs=self._jobs if jobs is None else jobs,
                           cache=self._cache, cache_root=self._cache_root,
                           registry=spec.registry or self._registry,
                           tracer=self._tracer)
        self._flush_trace()
        return result

    def optimize(self, spec: Union[OptimizeSpec, str], *,
                 quick: bool = False,
                 jobs: Optional[int] = None) -> OptimizeResult:
        """Run an adaptive design-space search (spec or catalogue name).

        A string resolves through the optimizer catalogue
        (:func:`repro.sweep.catalog.get_optimize`; ``quick=True`` selects
        the scaled-down CI variant).  Every proposal batch dispatches
        through the same executor/cache path as :meth:`sweep`, so a warm
        re-run replays the identical proposal sequence from the session
        cache and recomputes nothing.
        """
        if isinstance(spec, str):
            spec = get_optimize(spec, quick=quick)
        elif quick:
            raise ValueError("quick=True only applies to catalogue names; "
                             "build the quick variant of an explicit "
                             "OptimizeSpec yourself")
        result = run_optimize(spec,
                              jobs=self._jobs if jobs is None else jobs,
                              cache=self._cache,
                              cache_root=self._cache_root,
                              registry=spec.registry or self._registry,
                              tracer=self._tracer)
        self._flush_trace()
        return result

    def cache_key(self, name: str, *, seed: Any = _UNSET,
                  **params: Any) -> str:
        """The engine cache key :meth:`run` would use — without running.

        Parameters validate and coerce through the experiment's typed
        schema exactly as in :meth:`run`, so equivalent spellings map to
        one key.  This is what lets layers above the façade (the service
        job queue) deduplicate work against the shared result cache.
        """
        spec = self._registry.get(name)
        resolved = spec.resolve_params(params)
        return self._cache.key(spec.name, canonical_params(resolved),
                               self._seed if seed is _UNSET else seed)

    def sweep_spec(self, spec: Union[SweepSpec, str], *,
                   quick: bool = False) -> SweepSpec:
        """Resolve a sweep catalogue name to its :class:`SweepSpec`.

        A ready spec passes through unchanged (``quick=True`` is only
        meaningful for catalogue names).  Unknown names raise
        :class:`~repro.sweep.catalog.UnknownSweepError` with suggestions.
        """
        return self._resolve_sweep(spec, quick)

    def _flush_trace(self) -> None:
        # Rewrite the artifact after every traced call so an interrupted
        # session still leaves a valid, current trace on disk.
        if self._tracer is not None:
            from repro.obs import write_trace
            write_trace(self._tracer, self._trace_path)

    def sweep_status(self, spec: Union[SweepSpec, str], *,
                     quick: bool = False):
        """Cache occupancy of a sweep without running anything."""
        spec = self._resolve_sweep(spec, quick)
        return sweep_status(spec, cache=self._cache,
                            cache_root=self._cache_root,
                            registry=spec.registry or self._registry)

    @staticmethod
    def _resolve_sweep(spec: Union[SweepSpec, str], quick: bool) -> SweepSpec:
        if isinstance(spec, str):
            return get_sweep(spec, quick=quick)
        if quick:
            raise ValueError("quick=True only applies to catalogue names; "
                             "build the quick variant of an explicit "
                             "SweepSpec yourself")
        return spec

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        root = getattr(self._cache, "root", None)
        return (f"Session(cache={str(root) if root else 'off'}, "
                f"jobs={self._jobs}, seed={self._seed})")
