"""Self-time / phase-breakdown reports over trace artifacts.

:func:`render_report` turns a trace payload (see :mod:`repro.obs.trace`)
into a plain-text summary: an indented span tree with total time, self
time (total minus the children's totals) and share of the root, followed
by the global counters and duration meters.  With ``include_timing=False``
every timing-derived column and section is omitted, leaving a fully
deterministic phase table — that variant is what the golden-trace test
pins.

The formatter is self-contained on purpose: ``repro.obs`` sits below
``repro.analysis`` in the layering and must not import its table helpers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.trace import build_payload


def phase_durations(tracer_or_payload) -> Dict[str, float]:
    """Total seconds per phase name (spans of kind ``"phase"``).

    Accepts a live :class:`~repro.obs.tracer.Tracer` or a trace payload
    dict.  Kernel phases with one name are summed across kernels, lanes
    and rounds — the shape ``repro.bench`` records as its optional
    ``"phases"`` section.
    """
    payload = tracer_or_payload
    if not isinstance(payload, dict):
        payload = build_payload(payload)
    durations = payload["timing"]["durations_s"]
    totals: Dict[str, float] = {}
    for span in payload["spans"]:
        if span["kind"] != "phase":
            continue
        name = span["name"]
        totals[name] = totals.get(name, 0.0) + durations[str(span["id"])]
    return {name: totals[name] for name in sorted(totals)}


def _format_table(header: List[str], rows: List[List[str]],
                  align_left: int = 1) -> List[str]:
    """Columns padded to width; the first ``align_left`` stay left-aligned."""
    widths = [len(cell) for cell in header]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def fmt(row: List[str]) -> str:
        cells = [cell.ljust(widths[column]) if column < align_left
                 else cell.rjust(widths[column])
                 for column, cell in enumerate(row)]
        return "  ".join(cells).rstrip()

    lines = [fmt(header), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def _span_label(span: Dict[str, Any], depth: int) -> str:
    label = "  " * depth + span["name"]
    counters = span.get("counters")
    if counters:
        inline = ", ".join(f"{key}={counters[key]}"
                           for key in sorted(counters))
        label += f" [{inline}]"
    return label


def render_report(payload: Dict[str, Any],
                  include_timing: bool = True) -> str:
    """Plain-text span-tree report of a trace payload.

    ``include_timing=False`` drops the duration columns, the percentage
    column and the meters section, producing deterministic output for a
    fixed workload and seed.
    """
    spans = payload["spans"]
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)

    durations: Dict[str, float] = {}
    self_times: Dict[int, float] = {}
    root_total = 0.0
    if include_timing:
        durations = payload["timing"]["durations_s"]
        for span in spans:
            total = durations[str(span["id"])]
            child_total = sum(durations[str(child["id"])]
                              for child in children.get(span["id"], []))
            self_times[span["id"]] = max(0.0, total - child_total)
        root_total = durations[str(spans[0]["id"])]

    header = ["span", "kind"]
    if include_timing:
        header += ["total_s", "self_s", "%root"]
    rows: List[List[str]] = []

    def visit(span: Dict[str, Any], depth: int) -> None:
        row = [_span_label(span, depth), span["kind"]]
        if include_timing:
            total = durations[str(span["id"])]
            share = 100.0 * total / root_total if root_total > 0 else 0.0
            row += [f"{total:.6f}", f"{self_times[span['id']]:.6f}",
                    f"{share:.1f}"]
        rows.append(row)
        for child in children.get(span["id"], []):
            visit(child, depth + 1)

    visit(spans[0], 0)

    lines = [f"trace: {payload['name']}  "
             f"(schema v{payload['schema_version']}, {len(spans)} spans)"]
    lines.append("")
    lines.extend(_format_table(header, rows, align_left=2))

    counters = payload.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        lines.extend(_format_table(
            ["name", "count"],
            [[name, str(counters[name])] for name in sorted(counters)]))

    if include_timing:
        meters = payload["timing"].get("meters", {})
        if meters:
            lines.append("")
            lines.append("meters")
            meter_rows = []
            for name in sorted(meters):
                stats = meters[name]
                meter_rows.append([
                    name,
                    str(stats["count"]),
                    f"{stats['total_s']:.6f}",
                    "-" if stats["mean_s"] is None
                    else f"{stats['mean_s']:.6f}",
                    "-" if stats["max_s"] is None
                    else f"{stats['max_s']:.6f}",
                ])
            lines.extend(_format_table(
                ["meter", "count", "total_s", "mean_s", "max_s"],
                meter_rows))

    return "\n".join(lines) + "\n"
