"""Hierarchical span tracer with counters, meters and worker-buffer merge.

One :class:`Tracer` collects the telemetry of one run: a tree of
:class:`Span` records (identity, nesting, deterministic attributes and
counters — durations are kept *separately*, see below), a set of named
global counters (:class:`repro.sim.monitor.CounterMonitor`) and duration
meters (:class:`repro.sim.monitor.Monitor`).

Two recording styles cover the two kinds of call site:

* ``with tracer.span("driver:fig6_csma", kind="driver"):`` — a context
  manager measuring the enclosed block.  For orchestration code.
* ``tracer.record_span("beacon_grid", grid_s, kind="phase")`` — attach a
  *pre-measured* span.  For kernels, which accumulate per-phase elapsed
  time into plain floats across their round loop (guarded on
  ``tracer.enabled``) and emit once at the end, so even an enabled trace
  allocates no span objects inside hot loops.

The deterministic / timed split
-------------------------------
Span identity, nesting, names, kinds, attributes and counters are
deterministic for a fixed seed — they are what serial and parallel runs
of the same workload must agree on.  Durations (monotonic clock deltas),
meters and worker ids are not, so they live apart (``Span.duration_s``,
``Tracer.meters``, ``Tracer.workers``) and the trace artifact confines
them to its single ``"timing"`` field.

Process-pool transport: a worker activates its own buffer tracer, runs
the task, and ships :meth:`Tracer.export` back with the result; the
parent grafts the buffers in task order via :meth:`Tracer.merge_export`,
renumbering span ids deterministically — a ``--jobs 8`` trace equals the
serial trace modulo the timing field.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.monitor import CounterMonitor, Monitor


class Span:
    """One node of the trace tree.

    ``attrs`` and ``counters`` hold deterministic labels and integer
    event counts; ``duration_s`` is the span's monotonic wall time and
    belongs to the timing side of the artifact.
    """

    __slots__ = ("span_id", "parent_id", "name", "kind", "attrs",
                 "counters", "duration_s")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 kind: str = "span",
                 attrs: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: Dict[str, int] = {}
        self.duration_s = 0.0

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to this span's counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Span(id={self.span_id}, parent={self.parent_id}, "
                f"name={self.name!r}, kind={self.kind!r})")


class _NullSpanContext:
    """Shared, allocation-free context manager of the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A single module-level instance (:data:`NULL_TRACER`) is the default
    active tracer, so instrumentation sites need no ``if`` around their
    calls — and hot loops that *do* guard pay exactly one attribute
    check (``tracer.enabled``).
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, kind: str = "span", **attrs):
        return _NULL_SPAN_CONTEXT

    def record_span(self, name: str, duration_s: float, kind: str = "phase",
                    counters: Optional[Dict[str, int]] = None,
                    parent: Optional[Span] = None) -> None:
        return None

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def meter_record(self, name: str, value: float) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "NullTracer()"


#: The shared disabled tracer — the default return of :func:`current_tracer`.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects one run's spans, counters and meters.

    Parameters
    ----------
    name:
        Label of the root span (``"run:fig6_csma"``, ``"task"``, ...).
    """

    enabled = True

    def __init__(self, name: str = "trace"):
        self.name = name
        root = Span(0, None, name, kind="root")
        self.spans: List[Span] = [root]
        self._stack: List[Span] = [root]
        self.counters = CounterMonitor("obs")
        self.meters: Dict[str, Monitor] = {}
        self.workers: Dict[int, Any] = {}
        self._epoch = perf_counter()

    # -- span recording -----------------------------------------------------------
    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    def _new_span(self, name: str, kind: str,
                  attrs: Optional[Dict[str, Any]],
                  parent: Optional[Span]) -> Span:
        parent_span = parent if parent is not None else self._stack[-1]
        span = Span(len(self.spans), parent_span.span_id, name, kind, attrs)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, kind: str = "span",
             **attrs: Any) -> Iterator[Span]:
        """Open a child span around a block, measuring its duration."""
        span = self._new_span(name, kind, attrs or None, None)
        self._stack.append(span)
        start = perf_counter()
        try:
            yield span
        finally:
            span.duration_s = perf_counter() - start
            self._stack.pop()

    def record_span(self, name: str, duration_s: float, kind: str = "phase",
                    counters: Optional[Dict[str, int]] = None,
                    parent: Optional[Span] = None) -> Span:
        """Attach a pre-measured span under ``parent`` (default: current).

        This is the hot-loop API: kernels accumulate elapsed time into
        plain floats and emit each phase exactly once.
        """
        span = self._new_span(name, kind, None, parent)
        span.duration_s = float(duration_s)
        if counters:
            for key in counters:
                span.counters[key] = int(counters[key])
        return span

    # -- counters and meters ------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the global counter ``name``."""
        self.counters.increment(name, amount)

    def meter_record(self, name: str, value: float) -> None:
        """Record one observation of the duration meter ``name``."""
        meter = self.meters.get(name)
        if meter is None:
            meter = self.meters[name] = Monitor(name)
        meter.record(value)

    # -- cross-process transport --------------------------------------------------
    def export(self) -> Dict[str, Any]:
        """Plain-data snapshot of this tracer (picklable, JSON-safe).

        The root span's duration is closed at export time so a worker's
        buffer carries its total task time.
        """
        root = self.spans[0]
        if root.duration_s == 0.0:
            root.duration_s = perf_counter() - self._epoch
        return {
            "spans": [{"id": span.span_id, "parent": span.parent_id,
                       "name": span.name, "kind": span.kind,
                       "attrs": dict(span.attrs),
                       "counters": dict(span.counters),
                       "duration_s": span.duration_s}
                      for span in self.spans],
            "counters": self.counters.as_dict(),
            "meters": {name: list(meter.values)
                       for name, meter in self.meters.items()},
        }

    def merge_export(self, export: Dict[str, Any], name: str,
                     worker: Any = None) -> Span:
        """Graft a worker buffer under the current span as one task span.

        The exported root becomes a span named ``name`` (kind ``"task"``,
        keeping the root's counters and duration); its children are
        renumbered in creation order, so merging buffers in task order
        yields identical span ids whatever executor produced them.
        ``worker`` (an opaque tag, e.g. a pid) is recorded on the timing
        side only.
        """
        exported = export["spans"]
        root = exported[0]
        task_span = self._new_span(name, "task", None, None)
        task_span.duration_s = float(root["duration_s"])
        for key, value in root["counters"].items():
            task_span.counters[key] = int(value)
        if worker is not None:
            self.workers[task_span.span_id] = worker
        mapping = {root["id"]: task_span}
        for entry in exported[1:]:
            parent = mapping[entry["parent"]]
            span = self._new_span(entry["name"], entry["kind"],
                                  entry["attrs"] or None, parent)
            span.duration_s = float(entry["duration_s"])
            for key, value in entry["counters"].items():
                span.counters[key] = int(value)
            mapping[entry["id"]] = span
        for key, value in export["counters"].items():
            self.counters.increment(key, value)
        for meter_name, values in export["meters"].items():
            for value in values:
                self.meter_record(meter_name, value)
        return task_span

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tracer(name={self.name!r}, spans={len(self.spans)})"


class _TracerStack(threading.local):
    """Per-thread stack of active tracers (disabled default at the bottom).

    Thread-local, not process-global: the service worker pool runs several
    engine calls concurrently in one process, each under its own worker
    tracer — a shared stack would interleave ``activate``/``pop`` pairs
    across threads and attribute one worker's telemetry to another (or pop
    the wrong tracer entirely).  Every thread starts with its own fresh
    ``[NULL_TRACER]`` bottom, so single-threaded semantics are unchanged.
    """

    def __init__(self):
        self.stack: List[Any] = [NULL_TRACER]


_ACTIVE = _TracerStack()


def current_tracer():
    """The innermost active tracer *of this thread* (:data:`NULL_TRACER`
    when none is)."""
    return _ACTIVE.stack[-1]


@contextmanager
def activate(tracer) -> Iterator[Any]:
    """Make ``tracer`` the active tracer for the enclosed block.

    Instrumentation sites reach the tracer through
    :func:`current_tracer`, so activation is how a run's telemetry flows
    into one collector without threading it through every signature —
    including inside pool workers, where the task wrapper activates a
    fresh buffer (:mod:`repro.obs.parallel`).  Activation is scoped to the
    calling thread (see :class:`_TracerStack`).
    """
    stack = _ACTIVE.stack
    stack.append(tracer)
    try:
        yield tracer
    finally:
        stack.pop()
