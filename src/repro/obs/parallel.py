"""Telemetry transport across the process-pool boundary.

:class:`TracedExecutor` wraps any engine executor (serial or process
pool).  Each task function is replaced by a picklable :class:`_TracedTask`
that activates a *fresh* buffer :class:`~repro.obs.tracer.Tracer` inside
the worker, runs the task under it, and ships the buffer's export back
with the result.  The parent streams results through unchanged (callers
still see ``(index, result)`` in completion order) and, once the task
list drains, grafts the buffers into its own tracer **in task-index
order** — so the merged span tree is identical for ``--jobs 1`` and
``--jobs N`` and only the artifact's ``"timing"`` field differs.

Executor telemetry recorded on the timing side:

``executor.queue_wait_s`` (meter)
    Per task, how long it sat between submission in the parent and its
    first instruction in a worker.  Both endpoints read
    ``time.monotonic()``, which is a system-wide clock on the platforms
    we support, so the cross-process difference is meaningful; it is
    clamped at zero against scheduler jitter.
``executor.utilization`` (meter)
    One observation per ``map_tasks`` call: total busy worker time over
    ``wall x jobs``, clamped to ``[0, 1]``.
``executor.tasks`` (counter)
    Tasks executed through the wrapper.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Iterator, Sequence, Tuple

from repro.obs.tracer import Tracer, activate


class _TracedOutcome:
    """Picklable result envelope a :class:`_TracedTask` sends back."""

    __slots__ = ("result", "export", "started_monotonic", "duration_s", "pid")

    def __init__(self, result: Any, export: dict, started_monotonic: float,
                 duration_s: float, pid: int):
        self.result = result
        self.export = export
        self.started_monotonic = started_monotonic
        self.duration_s = duration_s
        self.pid = pid


class _TracedTask:
    """Picklable wrapper running one task under a fresh buffer tracer."""

    __slots__ = ("function",)

    def __init__(self, function: Callable[[Any], Any]):
        self.function = function

    def __call__(self, task: Any) -> _TracedOutcome:
        started = time.monotonic()
        begin = time.perf_counter()
        tracer = Tracer(name="task")
        with activate(tracer):
            result = self.function(task)
        duration = time.perf_counter() - begin
        return _TracedOutcome(result, tracer.export(), started, duration,
                              os.getpid())


class TracedExecutor:
    """Wrap an executor so every task reports into ``tracer``.

    Transparent to callers: ``jobs`` and the ``map_tasks`` streaming
    contract are the inner executor's.  Buffer merge happens after the
    last task arrives, in task-index order, keeping merged span ids
    deterministic across executors and completion orders.
    """

    def __init__(self, inner, tracer: Tracer):
        self.inner = inner
        self.tracer = tracer

    @property
    def jobs(self) -> int:
        return self.inner.jobs

    def map_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        tasks = list(tasks)
        if not tasks:
            return
        traced = _TracedTask(function)
        outcomes = {}
        submitted = time.monotonic()
        wall_begin = time.perf_counter()
        for index, outcome in self.inner.map_tasks(traced, tasks):
            outcomes[index] = outcome
            yield index, outcome.result
        wall = time.perf_counter() - wall_begin
        tracer = self.tracer
        busy = 0.0
        for index in sorted(outcomes):
            outcome = outcomes[index]
            tracer.merge_export(outcome.export, name=f"task[{index}]",
                                worker=outcome.pid)
            tracer.meter_record("executor.queue_wait_s",
                                max(0.0, outcome.started_monotonic - submitted))
            tracer.count("executor.tasks")
            busy += outcome.duration_s
        if wall > 0.0:
            capacity = wall * max(1, self.jobs)
            tracer.meter_record("executor.utilization",
                                min(1.0, busy / capacity))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TracedExecutor({self.inner!r})"
