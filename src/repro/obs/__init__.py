"""``repro.obs`` — structured tracing and run telemetry.

The observability seam of the stack: a hierarchical span :class:`Tracer`
(run -> experiment -> channel lane -> kernel phase) plus named counters
and duration meters built on the :mod:`repro.sim.monitor` collectors.
Instrumented layers (the engine, the executors, the cache, the sweep
driver and the three MAC kernels) consult the *active* tracer through
:func:`current_tracer`; when none is active they see the module-level
:data:`NULL_TRACER`, whose every operation is a no-op — hot loops pay a
single ``tracer.enabled`` attribute check and allocate nothing.

Layering: ``repro.obs`` imports nothing above :mod:`repro.sim` (asserted
in CI).  The runner, sweep, bench and MAC layers depend on it — never the
reverse.

Determinism contract
--------------------
Tracing must not perturb a run: nothing observable feeds cache keys or
RNG streams, and a traced run's :class:`SimulationSummary` equals the
untraced one for the same seed (pinned for all three backends).  The
trace artifact (:func:`write_trace`) is schema-versioned JSON whose key
order is stable and whose *every* nondeterministic quantity — wall-clock
timestamp, monotonic durations, meter statistics, worker ids — lives in
the single top-level ``"timing"`` field, so comparing traces minus that
one field is exact (serial vs ``--jobs N``, fresh vs committed golden).
"""

from repro.obs.parallel import TracedExecutor
from repro.obs.report import phase_durations, render_report
from repro.obs.trace import (TRACE_KIND, TRACE_SCHEMA_VERSION,
                             deterministic_view, read_trace, validate_trace,
                             write_trace)
from repro.obs.tracer import (NULL_TRACER, NullTracer, Span, Tracer,
                              activate, current_tracer)

__all__ = [
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "activate",
    "current_tracer",
    "TracedExecutor",
    "TRACE_KIND",
    "TRACE_SCHEMA_VERSION",
    "write_trace",
    "read_trace",
    "validate_trace",
    "deterministic_view",
    "render_report",
    "phase_durations",
]
