"""Trace artifacts: schema-versioned JSON with one isolated timing field.

A trace file is the serialised form of one :class:`repro.obs.tracer.Tracer`.
Its top-level key order is fixed (schema first, deterministic sections in
the middle, ``"timing"`` last) and every nondeterministic quantity — the
wall-clock timestamp, per-span monotonic durations, meter statistics and
worker ids — lives inside that single ``"timing"`` object:

``schema_version``
    Integer, currently ``1``.
``kind``
    The literal ``"repro.obs.trace"``.
``name``
    Root label of the trace (``"run:fig6_csma"``, ``"sweep:node_density"``).
``spans``
    Creation-ordered list of ``{"id", "parent", "name", "kind"}`` objects
    with optional sorted ``"attrs"`` / ``"counters"``; ``id`` values are
    consecutive from 0 (the root, ``parent: null``) and every parent id
    precedes its children.
``counters``
    Sorted global event counters (cache hits/misses, task counts, ...).
``timing``
    ``{"created_unix_s", "durations_s": {span id: seconds},
    "meters": {name: {count, total_s, mean_s, max_s}},
    "workers": {span id: tag}}`` — everything a comparison must exclude.

:func:`deterministic_view` drops ``"timing"``; two same-seed traces of one
workload compare equal under it whatever the job count, which is exactly
how the golden-trace and serial-vs-parallel regression tests work.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict

TRACE_SCHEMA_VERSION = 1

#: The ``kind`` tag every trace artifact carries.
TRACE_KIND = "repro.obs.trace"


def build_payload(tracer) -> Dict[str, Any]:
    """The artifact dict of ``tracer`` (deterministic key order)."""
    root = tracer.spans[0]
    if root.duration_s == 0.0:
        root.duration_s = time.perf_counter() - tracer._epoch
    spans = []
    for span in tracer.spans:
        entry: Dict[str, Any] = {"id": span.span_id, "parent": span.parent_id,
                                 "name": span.name, "kind": span.kind}
        if span.attrs:
            entry["attrs"] = {key: span.attrs[key]
                              for key in sorted(span.attrs)}
        if span.counters:
            entry["counters"] = {key: span.counters[key]
                                 for key in sorted(span.counters)}
        spans.append(entry)
    counters = tracer.counters.as_dict()
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "kind": TRACE_KIND,
        "name": tracer.name,
        "spans": spans,
        "counters": {key: counters[key] for key in sorted(counters)},
        "timing": {
            "created_unix_s": time.time(),
            "durations_s": {str(span.span_id): span.duration_s
                            for span in tracer.spans},
            "meters": {name: {"count": meter.count,
                              "total_s": meter.total,
                              "mean_s": meter.mean if meter.count else None,
                              "max_s": meter.max if meter.count else None}
                       for name, meter in sorted(tracer.meters.items())},
            "workers": {str(span_id): tracer.workers[span_id]
                        for span_id in sorted(tracer.workers)},
        },
    }


def write_trace(tracer_or_payload, path) -> Path:
    """Write a trace artifact to ``path`` and return it.

    Accepts a :class:`~repro.obs.tracer.Tracer` (serialised via
    :func:`build_payload`) or a ready payload dict.
    """
    payload = tracer_or_payload
    if not isinstance(payload, dict):
        payload = build_payload(payload)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return path


def read_trace(path) -> Dict[str, Any]:
    """Load a trace artifact (key order preserved)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def deterministic_view(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The payload minus its single nondeterministic ``"timing"`` field."""
    return {key: value for key, value in payload.items() if key != "timing"}


def validate_trace(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed trace.

    Checks the schema version and kind tags, the span list's id/parent
    integrity (consecutive ids, root first, parents before children) and
    the timing section's per-span duration coverage.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    if payload.get("schema_version") != TRACE_SCHEMA_VERSION:
        raise ValueError(f"unsupported trace schema_version "
                         f"{payload.get('schema_version')!r} "
                         f"(expected {TRACE_SCHEMA_VERSION})")
    if payload.get("kind") != TRACE_KIND:
        raise ValueError(f"not a trace artifact: kind is "
                         f"{payload.get('kind')!r}")
    spans = payload.get("spans")
    if not isinstance(spans, list) or not spans:
        raise ValueError("trace has no spans")
    for position, span in enumerate(spans):
        if not isinstance(span, dict):
            raise ValueError(f"span {position} is not an object")
        for field in ("id", "parent", "name", "kind"):
            if field not in span:
                raise ValueError(f"span {position} lacks {field!r}")
        if span["id"] != position:
            raise ValueError(f"span ids must be consecutive from 0; "
                             f"position {position} holds id {span['id']!r}")
        parent = span["parent"]
        if position == 0:
            if parent is not None:
                raise ValueError("the root span's parent must be null")
        elif not isinstance(parent, int) or not 0 <= parent < position:
            raise ValueError(f"span {position}: parent {parent!r} must be "
                             f"an earlier span id")
        counters = span.get("counters", {})
        if any(not isinstance(value, int) for value in counters.values()):
            raise ValueError(f"span {position}: counters must be integers")
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        raise ValueError("trace lacks a counters object")
    timing = payload.get("timing")
    if not isinstance(timing, dict):
        raise ValueError("trace lacks a timing object")
    durations = timing.get("durations_s")
    if not isinstance(durations, dict):
        raise ValueError("timing lacks durations_s")
    missing = [span["id"] for span in spans
               if str(span["id"]) not in durations]
    if missing:
        raise ValueError(f"timing.durations_s lacks spans {missing}")
