"""Slot-accurate Monte-Carlo simulation of the contention access period.

The simulator reproduces how the paper characterised the slotted CSMA/CA
procedure (Figure 6): a population of nodes (100 per channel in the paper)
each attempt to transmit one packet per superframe; their contention
procedures interact through the shared channel, producing the average
contention time ``T_cont``, average CCA count ``N_CCA``, residual collision
probability ``Pr_col`` and channel access failure probability ``Pr_cf`` as
functions of the network load λ and the packet duration.

Modelling choices (documented because the paper does not spell them out):

* Nodes start their contention procedures at times uniformly distributed
  over the inter-beacon window (``arrival_mode="uniform"``, the default).
  A node that gathers data continuously has its packet ready at an
  essentially random point of the superframe; starting all procedures at the
  beacon (``arrival_mode="aligned"``) is also supported and is used as an
  ablation — it produces the pathological burst congestion the paper's
  16 % failure figure excludes.
* The window length is derived from the load: ``window = N x T_packet / λ``,
  so that the aggregate offered airtime equals λ times the channel capacity.
* A transmission occupies the channel for the packet airtime plus the
  acknowledgement turnaround and the acknowledgement itself (other nodes'
  CCAs see the whole transaction as busy).
* Two transmissions starting in the same backoff slot collide and both are
  lost; there is no capture effect (worst case, consistent with the paper).
* The event granularity is one backoff slot (320 µs), exactly the
  granularity at which the slotted CSMA/CA algorithm operates.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.contention.statistics import ContentionStatistics, merge_statistics
from repro.mac.constants import MAC_2450MHZ, MacConstants
from repro.mac.csma import CsmaAction, CsmaOutcome, CsmaParameters, SlottedCsmaCa
from repro.mac.frames import AckFrame
from repro.sim.random import spawn_seeds


@dataclass
class NodeAttempt:
    """Per-node outcome of one contention window."""

    node_id: int
    arrival_slot: int
    finish_slot: Optional[int] = None
    transmit_slot: Optional[int] = None
    cca_count: int = 0
    backoff_slots: int = 0
    access_granted: bool = False
    collided: bool = False

    @property
    def contention_slots(self) -> Optional[int]:
        """Slots from arrival to channel acquisition (or abandonment)."""
        if self.finish_slot is None:
            return None
        return self.finish_slot - self.arrival_slot


@dataclass
class WindowResult:
    """All node attempts of one simulated contention window."""

    window_slots: int
    packet_slots: int
    attempts: List[NodeAttempt] = field(default_factory=list)

    @property
    def transmissions(self) -> int:
        """Number of nodes that acquired the channel."""
        return sum(1 for a in self.attempts if a.access_granted)

    @property
    def collisions(self) -> int:
        """Number of transmissions that collided."""
        return sum(1 for a in self.attempts if a.access_granted and a.collided)

    @property
    def access_failures(self) -> int:
        """Number of channel access failures."""
        return sum(1 for a in self.attempts if not a.access_granted)


@dataclass
class _ActiveTransmission:
    """Channel occupancy bookkeeping entry."""

    start_slot: int
    end_slot: int
    attempt: NodeAttempt


class ContentionSimulator:
    """Monte-Carlo simulator of the slotted CSMA/CA contention procedure.

    Parameters
    ----------
    num_nodes:
        Contending nodes per window (100 in the paper's characterisation).
    csma_params:
        Slotted CSMA/CA parameters (paper convention by default).
    constants:
        MAC constants (timing).
    arrival_mode:
        ``"uniform"`` — contention start times uniform over the window
        (default); ``"aligned"`` — all nodes start at slot 0 (ablation).
    include_ack_occupancy:
        Whether the acknowledgement turnaround + frame extend the busy period
        seen by other nodes' CCAs.
    seed:
        Master seed of the simulator's random generator.
    """

    #: Event ordering within a slot: transmissions become visible before CCAs.
    _EVENT_TX_START = 0
    _EVENT_CCA = 1

    def __init__(self, num_nodes: int = 100,
                 csma_params: Optional[CsmaParameters] = None,
                 constants: MacConstants = MAC_2450MHZ,
                 arrival_mode: str = "uniform",
                 include_ack_occupancy: bool = True,
                 seed: int = 0):
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if arrival_mode not in ("uniform", "aligned"):
            raise ValueError("arrival_mode must be 'uniform' or 'aligned'")
        self.num_nodes = num_nodes
        self.csma_params = csma_params or CsmaParameters.from_mac_constants(constants)
        self.constants = constants
        self.arrival_mode = arrival_mode
        self.include_ack_occupancy = include_ack_occupancy
        self.rng = np.random.default_rng(seed)

    # -- unit helpers ----------------------------------------------------------------
    def packet_slots(self, packet_bytes: int) -> int:
        """On-air packet duration in whole backoff slots (rounded up)."""
        airtime = packet_bytes * self.constants.timing.byte_period_s
        return max(1, math.ceil(airtime / self.constants.unit_backoff_period_s))

    def occupancy_slots(self, packet_bytes: int) -> int:
        """Channel-busy duration of one transaction in backoff slots."""
        slots = self.packet_slots(packet_bytes)
        if self.include_ack_occupancy:
            ack_airtime = (self.constants.turnaround_time_s
                           + AckFrame().airtime_s(self.constants.timing.byte_period_s))
            slots += math.ceil(ack_airtime / self.constants.unit_backoff_period_s)
        return slots

    def window_slots_for_load(self, load: float, packet_bytes: int) -> int:
        """Window length so the offered airtime equals ``load`` x capacity."""
        if not 0.0 < load <= 1.5:
            raise ValueError("Load must lie in (0, 1.5]")
        packet_airtime_slots = (packet_bytes * self.constants.timing.byte_period_s
                                / self.constants.unit_backoff_period_s)
        return max(1, int(round(self.num_nodes * packet_airtime_slots / load)))

    # -- single window ------------------------------------------------------------------
    def simulate_window(self, packet_bytes: int, window_slots: int) -> WindowResult:
        """Simulate one contention window and return every node's outcome."""
        if window_slots < 1:
            raise ValueError("window_slots must be at least 1")
        occupancy = self.occupancy_slots(packet_bytes)
        result = WindowResult(window_slots=window_slots,
                              packet_slots=self.packet_slots(packet_bytes))

        if self.arrival_mode == "uniform":
            arrivals = self.rng.integers(0, window_slots, size=self.num_nodes)
        else:
            arrivals = np.zeros(self.num_nodes, dtype=int)

        attempts = [NodeAttempt(node_id=i, arrival_slot=int(arrivals[i]))
                    for i in range(self.num_nodes)]
        machines = [SlottedCsmaCa(self.csma_params, rng=self.rng)
                    for _ in range(self.num_nodes)]

        # Event heap entries: (slot, event_type, sequence, node_id)
        heap: List[tuple] = []
        sequence = 0
        for node_id, attempt in enumerate(attempts):
            instruction = machines[node_id].begin()
            assert instruction.action is CsmaAction.WAIT_BACKOFF
            cca_slot = attempt.arrival_slot + instruction.slots
            heapq.heappush(heap, (cca_slot, self._EVENT_CCA, sequence, node_id))
            sequence += 1

        active: List[_ActiveTransmission] = []

        def channel_busy(slot: int) -> bool:
            nonlocal active
            active = [t for t in active if t.end_slot >= slot]
            return any(t.start_slot <= slot <= t.end_slot for t in active)

        while heap:
            slot, event_type, _seq, node_id = heapq.heappop(heap)
            attempt = attempts[node_id]
            machine = machines[node_id]

            if event_type == self._EVENT_TX_START:
                transmission = _ActiveTransmission(
                    start_slot=slot, end_slot=slot + occupancy - 1, attempt=attempt)
                # A transmission starting while the channel is occupied (in
                # particular: another transmission starting in the same slot)
                # collides with every overlapping transmission.
                overlapping = [t for t in active if t.end_slot >= slot]
                if overlapping:
                    attempt.collided = True
                    for other in overlapping:
                        other.attempt.collided = True
                active.append(transmission)
                attempt.transmit_slot = slot
                attempt.finish_slot = slot
                attempt.access_granted = True
                continue

            # CCA event: the machine told us to sense the channel at this slot.
            machine.backoff_elapsed()  # transition WAIT_BACKOFF -> PERFORM_CCA
            instruction = machine.cca_result(channel_busy(slot))
            attempt.cca_count += 1
            while True:
                if instruction.action is CsmaAction.PERFORM_CCA:
                    # Second CCA of the contention window: next slot.
                    heapq.heappush(heap, (slot + 1, self._EVENT_CCA, sequence, node_id))
                    sequence += 1
                    break
                if instruction.action is CsmaAction.WAIT_BACKOFF:
                    attempt.backoff_slots += instruction.slots
                    next_cca = slot + 1 + instruction.slots
                    heapq.heappush(heap, (next_cca, self._EVENT_CCA, sequence, node_id))
                    sequence += 1
                    break
                if instruction.action is CsmaAction.TRANSMIT:
                    heapq.heappush(heap, (slot + 1, self._EVENT_TX_START,
                                          sequence, node_id))
                    sequence += 1
                    break
                if instruction.action is CsmaAction.FAILURE:
                    attempt.finish_slot = slot
                    attempt.access_granted = False
                    break
                raise RuntimeError(  # pragma: no cover - defensive
                    f"Unexpected CSMA action {instruction.action}")

        result.attempts = attempts
        return result

    # -- the wiring the paper calls "CCA event handling" needs a small fix: the
    #    state machine counts the CCA itself, so avoid double counting.
    #    (attempt.cca_count mirrors the machine's count for reporting.)

    # -- characterisation --------------------------------------------------------------
    def characterize(self, load: float, packet_bytes: int,
                     num_windows: int = 40) -> ContentionStatistics:
        """Estimate the four contention quantities at one (load, size) point.

        Parameters
        ----------
        load:
            Network load λ.
        packet_bytes:
            Total on-air packet size (PHY + MAC + payload).
        num_windows:
            Number of independent contention windows to simulate.
        """
        if num_windows < 1:
            raise ValueError("num_windows must be at least 1")
        window_slots = self.window_slots_for_load(load, packet_bytes)
        slot_s = self.constants.unit_backoff_period_s

        parts: List[ContentionStatistics] = []
        for _ in range(num_windows):
            window = self.simulate_window(packet_bytes, window_slots)
            parts.append(window_statistics(window, load=load,
                                           packet_bytes=packet_bytes,
                                           slot_s=slot_s))
        return merge_statistics(parts)

    def sweep_loads(self, loads, packet_bytes: int,
                    num_windows: int = 40) -> List[ContentionStatistics]:
        """Characterise a list of load points at a fixed packet size."""
        return [self.characterize(load, packet_bytes, num_windows=num_windows)
                for load in loads]


def window_statistics(window: WindowResult, load: float, packet_bytes: int,
                      slot_s: float) -> ContentionStatistics:
    """Aggregate one simulated window into a :class:`ContentionStatistics`.

    The per-attempt reduction is vectorised with numpy: the attempt fields
    are gathered into flat arrays once and every mean/count is computed from
    them, instead of re-walking the attempt list per quantity.  The numbers
    are identical to the element-wise definition.
    """
    attempts = window.attempts
    n = len(attempts)
    cca_counts = np.fromiter((a.cca_count for a in attempts),
                             dtype=np.int64, count=n)
    backoff_slots = np.fromiter((a.backoff_slots for a in attempts),
                                dtype=np.int64, count=n)
    granted = np.fromiter((a.access_granted for a in attempts),
                          dtype=bool, count=n)
    collided = np.fromiter((a.collided for a in attempts), dtype=bool, count=n)
    arrival = np.fromiter((a.arrival_slot for a in attempts),
                          dtype=np.int64, count=n)
    finish = np.fromiter((-1 if a.finish_slot is None else a.finish_slot
                          for a in attempts), dtype=np.int64, count=n)

    finished = finish >= 0
    contention_slots = (finish - arrival)[finished]
    transmissions = int(np.count_nonzero(granted))
    collisions = int(np.count_nonzero(granted & collided))
    access_failures = int(np.count_nonzero(~granted))

    return ContentionStatistics(
        load=load,
        packet_bytes=packet_bytes,
        mean_contention_time_s=(float(contention_slots.mean()) * slot_s
                                if contention_slots.size else 0.0),
        mean_cca_count=float(cca_counts.mean()),
        collision_probability=(collisions / transmissions
                               if transmissions else 0.0),
        channel_access_failure_probability=access_failures / n,
        mean_backoff_slots=float(backoff_slots.mean()),
        samples=n,
    )


@dataclass(frozen=True)
class GridPointTask:
    """Picklable description of one (load, packet size) characterisation.

    The experiment engine fans these tasks out to worker processes; each
    carries its own ``seed`` (derived via :func:`repro.sim.random.spawn_seeds`)
    so the statistics of a grid point are independent of which worker — or
    how many workers — executed it.

    Attributes
    ----------
    load / packet_bytes / num_windows:
        The characterisation point, as in :meth:`ContentionSimulator.characterize`.
    num_nodes / arrival_mode / include_ack_occupancy / csma_params:
        Simulator construction parameters, as in :class:`ContentionSimulator`.
    seed:
        Master seed of this point's private simulator.
    """

    load: float
    packet_bytes: int
    num_windows: int
    num_nodes: int
    seed: int
    arrival_mode: str = "uniform"
    include_ack_occupancy: bool = True
    csma_params: Optional[CsmaParameters] = None


def characterize_point(task: GridPointTask) -> ContentionStatistics:
    """Characterise one grid point with its own freshly seeded simulator.

    Module-level (and therefore picklable) so it can serve as the task
    function of a process-pool executor.
    """
    simulator = ContentionSimulator(
        num_nodes=task.num_nodes,
        csma_params=task.csma_params,
        arrival_mode=task.arrival_mode,
        include_ack_occupancy=task.include_ack_occupancy,
        seed=task.seed,
    )
    return simulator.characterize(task.load, task.packet_bytes,
                                  num_windows=task.num_windows)


def characterize_grid(points, num_windows: int = 30, num_nodes: int = 100,
                      seed: int = 0, executor=None,
                      arrival_mode: str = "uniform",
                      include_ack_occupancy: bool = True,
                      csma_params: Optional[CsmaParameters] = None,
                      stream_name: str = "contention.grid",
                      on_result=None) -> List[ContentionStatistics]:
    """Characterise many (load, packet size) points, optionally in parallel.

    Parameters
    ----------
    points:
        Sequence of ``(load, packet_bytes)`` pairs.
    num_windows / num_nodes / arrival_mode / include_ack_occupancy / csma_params:
        Shared simulator configuration, see :class:`ContentionSimulator`.
    seed:
        Master seed; point ``i`` receives the ``i``-th child seed of
        ``spawn_seeds(seed, stream_name, len(points))``, making the result
        list bit-identical for the serial and process executors.
    executor:
        A :mod:`repro.runner.executor` strategy; ``None`` runs serially.
    stream_name:
        Seed-stream label, so different grids of the same experiment draw
        unrelated seeds.
    on_result:
        Optional ``(index, statistics)`` callback invoked as points complete.

    Returns
    -------
    list of ContentionStatistics
        One entry per input point, in input order.
    """
    from repro.runner.executor import run_ordered

    points = [(float(load), int(size)) for load, size in points]
    seeds = spawn_seeds(seed, stream_name, len(points))
    tasks = [GridPointTask(load=load, packet_bytes=size,
                           num_windows=num_windows, num_nodes=num_nodes,
                           seed=point_seed, arrival_mode=arrival_mode,
                           include_ack_occupancy=include_ack_occupancy,
                           csma_params=csma_params)
             for (load, size), point_seed in zip(points, seeds)]
    return run_ordered(executor, characterize_point, tasks,
                       on_result=on_result)
