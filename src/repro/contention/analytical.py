"""Closed-form approximation of the contention statistics.

Used as an ablation baseline against the Monte-Carlo characterisation
(DESIGN.md, ablation 1), and as a fast fallback when a quick estimate of
``T_cont``, ``N_CCA``, ``Pr_col`` and ``Pr_cf`` is needed without running
the simulator.

The approximation treats the channel seen by a tagged node as busy at a
random CCA instant with probability equal to the channel occupancy
(``p_busy ≈ λ``, slightly inflated by the acknowledgement overhead), and
assumes successive CCAs are independent:

* a backoff stage succeeds (two consecutive clear CCAs) with probability
  ``(1 - p_busy)^2``;
* ``Pr_cf`` is the probability that all ``1 + max_csma_backoffs`` stages
  fail;
* ``N_CCA`` follows from the expected number of CCAs per stage
  (1 + (1 - p_busy), i.e. the second CCA only happens if the first was
  clear ... plus the stages that end busy on the first CCA);
* ``T_cont`` sums the expected random backoff delays of the visited stages
  plus one slot per CCA;
* ``Pr_col`` is the probability that at least one other node ends its own
  contention in the same backoff slot, approximated from the per-slot
  transmission-start rate of the offered load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.contention.statistics import ContentionStatistics
from repro.mac.constants import MAC_2450MHZ, MacConstants
from repro.mac.csma import CsmaParameters
from repro.mac.frames import AckFrame


@dataclass
class ClosedFormContentionModel:
    """Analytic approximation of the slotted CSMA/CA behaviour.

    Parameters
    ----------
    num_nodes:
        Number of nodes sharing the channel (100 in the paper).
    csma_params:
        CSMA/CA parameters (paper convention: at most 2 extra backoffs).
    constants:
        MAC constants.
    busy_inflation:
        Multiplicative factor applied to the load to obtain the CCA busy
        probability (accounts for the acknowledgement airtime that also
        occupies the channel); calibrated to ~1.15 against the Monte-Carlo.
    """

    num_nodes: int = 100
    csma_params: Optional[CsmaParameters] = None
    constants: MacConstants = MAC_2450MHZ
    busy_inflation: float = 1.15

    def __post_init__(self):
        if self.csma_params is None:
            self.csma_params = CsmaParameters.from_mac_constants(self.constants)

    # -- internals -----------------------------------------------------------------
    def busy_probability(self, load: float) -> float:
        """Probability a random CCA finds the channel occupied."""
        return min(0.999, max(0.0, load * self.busy_inflation))

    def _stage_backoff_means(self) -> list:
        """Expected random delay (slots) of each backoff stage."""
        params = self.csma_params
        means = []
        be = params.initial_backoff_exponent()
        for _ in range(params.max_csma_backoffs + 1):
            means.append((2 ** be - 1) / 2.0)
            be = params.clamp_backoff_exponent(be + 1)
        return means

    # -- the four quantities ----------------------------------------------------------
    def evaluate(self, load: float, packet_bytes: int) -> ContentionStatistics:
        """Closed-form estimate of the contention statistics at (λ, size)."""
        params = self.csma_params
        p_busy = self.busy_probability(load)
        p_clear = 1.0 - p_busy
        p_stage_success = p_clear ** params.contention_window
        stages = params.max_csma_backoffs + 1

        # Probability of reaching (and failing) every stage.
        pr_cf = (1.0 - p_stage_success) ** stages

        # Expected CCAs: per visited stage, the node performs 1 CCA always and
        # a second one only if the first was clear (for CW = 2).
        ccas_per_stage = 1.0 + p_clear if params.contention_window == 2 else \
            sum(p_clear ** k for k in range(params.contention_window))
        expected_stages = 0.0
        reach_probability = 1.0
        for _ in range(stages):
            expected_stages += reach_probability
            reach_probability *= (1.0 - p_stage_success)
        n_cca = ccas_per_stage * expected_stages

        # Contention time: backoff delays of the visited stages + CCA slots.
        slot_s = self.constants.unit_backoff_period_s
        backoff_means = self._stage_backoff_means()
        expected_backoff_slots = 0.0
        reach_probability = 1.0
        for stage_index in range(stages):
            expected_backoff_slots += reach_probability * backoff_means[stage_index]
            reach_probability *= (1.0 - p_stage_success)
        t_cont = (expected_backoff_slots + n_cca) * slot_s

        # Collision probability: another node starts transmitting in the same
        # slot.  The aggregate transmission-start rate is (load x capacity) /
        # packet airtime; per backoff slot that is:
        packet_airtime_s = packet_bytes * self.constants.timing.byte_period_s
        starts_per_slot = load * slot_s / packet_airtime_s * (self.num_nodes - 1) \
            / max(self.num_nodes, 1) * self.num_nodes
        # Probability at least one of the *other* nodes starts in the same slot:
        other_rate = load * slot_s / packet_airtime_s
        pr_col = 1.0 - math.exp(-other_rate)

        return ContentionStatistics(
            load=load,
            packet_bytes=packet_bytes,
            mean_contention_time_s=t_cont,
            mean_cca_count=n_cca,
            collision_probability=min(1.0, pr_col),
            channel_access_failure_probability=min(1.0, pr_cf),
            mean_backoff_slots=expected_backoff_slots,
            samples=0,
        )

    def __call__(self, load: float, packet_bytes: int) -> ContentionStatistics:
        """Alias for :meth:`evaluate` so the model can act as a source."""
        return self.evaluate(load, packet_bytes)
