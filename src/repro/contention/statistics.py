"""Result containers for the contention characterisation."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class ContentionStatistics:
    """The four contention quantities consumed by the energy model.

    Attributes
    ----------
    load:
        Network load λ (aggregate airtime relative to the channel capacity).
    packet_bytes:
        Total on-air packet size (PHY + MAC overhead + payload) the
        characterisation was run for.
    mean_contention_time_s:
        ``T_cont`` — average time from the start of a node's contention
        procedure until it acquires the channel (or gives up), excluding the
        transmission itself.
    mean_cca_count:
        ``N_CCA`` — average number of clear channel assessments per attempt.
    collision_probability:
        ``Pr_col`` — probability a transmitted packet overlaps another
        node's transmission.
    channel_access_failure_probability:
        ``Pr_cf`` — probability the contention procedure aborts after
        exhausting its backoff attempts.
    mean_backoff_slots:
        Average number of backoff slots spent in random delays (informational).
    samples:
        Number of per-node contention attempts the statistics are based on.
    """

    load: float
    packet_bytes: int
    mean_contention_time_s: float
    mean_cca_count: float
    collision_probability: float
    channel_access_failure_probability: float
    mean_backoff_slots: float = 0.0
    samples: int = 0

    def __post_init__(self):
        for name in ("collision_probability",
                     "channel_access_failure_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.mean_contention_time_s < 0 or self.mean_cca_count < 0:
            raise ValueError("Contention time and CCA count must be non-negative")

    def scaled_time(self, factor: float) -> "ContentionStatistics":
        """A copy with the contention time scaled by ``factor`` (for ablations)."""
        return ContentionStatistics(
            load=self.load,
            packet_bytes=self.packet_bytes,
            mean_contention_time_s=self.mean_contention_time_s * factor,
            mean_cca_count=self.mean_cca_count,
            collision_probability=self.collision_probability,
            channel_access_failure_probability=self.channel_access_failure_probability,
            mean_backoff_slots=self.mean_backoff_slots,
            samples=self.samples,
        )


def merge_statistics(parts: Sequence[ContentionStatistics]) -> ContentionStatistics:
    """Sample-weighted merge of statistics from independent replications.

    Raises
    ------
    ValueError
        If the sequence is empty or mixes different (load, packet size) points.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("Cannot merge an empty sequence of statistics")
    load = parts[0].load
    packet_bytes = parts[0].packet_bytes
    for part in parts:
        if not math.isclose(part.load, load, rel_tol=1e-9) \
                or part.packet_bytes != packet_bytes:
            raise ValueError("All merged statistics must describe the same "
                             "(load, packet size) point")
    total = sum(max(p.samples, 1) for p in parts)

    def weighted(attr: str) -> float:
        return sum(getattr(p, attr) * max(p.samples, 1) for p in parts) / total

    return ContentionStatistics(
        load=load,
        packet_bytes=packet_bytes,
        mean_contention_time_s=weighted("mean_contention_time_s"),
        mean_cca_count=weighted("mean_cca_count"),
        collision_probability=weighted("collision_probability"),
        channel_access_failure_probability=weighted(
            "channel_access_failure_probability"),
        mean_backoff_slots=weighted("mean_backoff_slots"),
        samples=sum(p.samples for p in parts),
    )
