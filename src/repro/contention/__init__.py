"""Empirical characterisation of the slotted CSMA/CA contention procedure.

The analytical energy model of the paper (Section 4) is driven by four
quantities that "depend mainly on the network load λ and the packet
duration" and are "characterised empirically by Monte-Carlo simulation of
the contention procedure" (Figure 6):

* the average contention duration ``T_cont``,
* the average number of clear channel assessments ``N_CCA``,
* the residual collision probability ``Pr_col``, and
* the channel access failure probability ``Pr_cf``.

This package provides

* :mod:`repro.contention.monte_carlo` — a slot-accurate Monte-Carlo
  simulator of the contention access period (100 nodes per channel by
  default, matching the paper);
* :mod:`repro.contention.statistics` — the result containers and
  aggregation helpers;
* :mod:`repro.contention.tables` — cached characterisation tables over a
  (load, packet size) grid with bilinear interpolation, which is how the
  energy model consumes the characterisation without re-running the
  Monte-Carlo for every query;
* :mod:`repro.contention.analytical` — a closed-form approximation of the
  same four quantities, used as an ablation baseline for the Monte-Carlo
  characterisation.
"""

from repro.contention.analytical import ClosedFormContentionModel
from repro.contention.monte_carlo import ContentionSimulator, WindowResult
from repro.contention.statistics import ContentionStatistics, merge_statistics
from repro.contention.tables import ContentionTable, build_contention_table

__all__ = [
    "ContentionSimulator",
    "WindowResult",
    "ContentionStatistics",
    "merge_statistics",
    "ContentionTable",
    "build_contention_table",
    "ClosedFormContentionModel",
]
