"""Cached contention-characterisation tables with interpolation.

Re-running the Monte-Carlo for every query of the energy model would be
wasteful — the paper itself characterises the contention behaviour once
(Figure 6) and then reads the curves.  :class:`ContentionTable` stores the
statistics on a (load, packet size) grid and answers arbitrary queries by
bilinear interpolation, which is exactly how the analytical model consumes
the characterisation.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.contention.monte_carlo import ContentionSimulator
from repro.contention.statistics import ContentionStatistics

#: The project's canonical master seed (the paper's publication year).
#: ``repro.experiments.common.EXPERIMENT_SEED`` and
#: ``repro.runner.engine.DEFAULT_SEED`` both alias this constant, so the
#: seed is defined exactly once.
PAPER_SEED = 2005


class ContentionTable:
    """Interpolating lookup table of contention statistics.

    Parameters
    ----------
    loads:
        Grid of load values (ascending).
    packet_sizes:
        Grid of on-air packet sizes in bytes (ascending).
    statistics:
        Mapping ``(load_index, size_index) -> ContentionStatistics``.
    """

    _FIELDS = ("mean_contention_time_s", "mean_cca_count",
               "collision_probability", "channel_access_failure_probability",
               "mean_backoff_slots")

    def __init__(self, loads: Sequence[float], packet_sizes: Sequence[int],
                 statistics: Dict[Tuple[int, int], ContentionStatistics]):
        self.loads = sorted(float(l) for l in loads)
        self.packet_sizes = sorted(int(s) for s in packet_sizes)
        if list(self.loads) != [float(l) for l in loads]:
            raise ValueError("loads must be given in ascending order")
        if list(self.packet_sizes) != [int(s) for s in packet_sizes]:
            raise ValueError("packet_sizes must be given in ascending order")
        for i in range(len(self.loads)):
            for j in range(len(self.packet_sizes)):
                if (i, j) not in statistics:
                    raise ValueError(
                        f"Missing statistics for grid point ({i}, {j})")
        self._statistics = dict(statistics)

    # -- construction --------------------------------------------------------------
    @classmethod
    def from_callable(cls, source: Callable[[float, int], ContentionStatistics],
                      loads: Sequence[float],
                      packet_sizes: Sequence[int]) -> "ContentionTable":
        """Build a table by evaluating ``source`` on the full grid."""
        statistics: Dict[Tuple[int, int], ContentionStatistics] = {}
        for i, load in enumerate(loads):
            for j, size in enumerate(packet_sizes):
                statistics[(i, j)] = source(load, size)
        return cls(loads, packet_sizes, statistics)

    # -- lookup -----------------------------------------------------------------------
    def _bracket(self, grid: List[float], value: float) -> Tuple[int, int, float]:
        """Indices and interpolation weight for ``value`` on ``grid`` (clamped)."""
        if value <= grid[0]:
            return 0, 0, 0.0
        if value >= grid[-1]:
            last = len(grid) - 1
            return last, last, 0.0
        hi = bisect.bisect_right(grid, value)
        lo = hi - 1
        weight = (value - grid[lo]) / (grid[hi] - grid[lo])
        return lo, hi, weight

    def lookup(self, load: float, packet_bytes: int) -> ContentionStatistics:
        """Bilinearly interpolated statistics at (``load``, ``packet_bytes``).

        Queries outside the grid are clamped to the nearest edge.
        """
        li_lo, li_hi, lw = self._bracket(self.loads, float(load))
        si_lo, si_hi, sw = self._bracket([float(s) for s in self.packet_sizes],
                                         float(packet_bytes))

        def value(field: str) -> float:
            v00 = getattr(self._statistics[(li_lo, si_lo)], field)
            v01 = getattr(self._statistics[(li_lo, si_hi)], field)
            v10 = getattr(self._statistics[(li_hi, si_lo)], field)
            v11 = getattr(self._statistics[(li_hi, si_hi)], field)
            v0 = v00 * (1 - sw) + v01 * sw
            v1 = v10 * (1 - sw) + v11 * sw
            return v0 * (1 - lw) + v1 * lw

        return ContentionStatistics(
            load=float(load),
            packet_bytes=int(packet_bytes),
            mean_contention_time_s=value("mean_contention_time_s"),
            mean_cca_count=value("mean_cca_count"),
            collision_probability=min(1.0, max(0.0, value("collision_probability"))),
            channel_access_failure_probability=min(
                1.0, max(0.0, value("channel_access_failure_probability"))),
            mean_backoff_slots=value("mean_backoff_slots"),
            samples=0,
        )

    def __call__(self, load: float, packet_bytes: int) -> ContentionStatistics:
        """Alias for :meth:`lookup` so the table can act as a model source."""
        return self.lookup(load, packet_bytes)

    # -- export ------------------------------------------------------------------------
    def grid_statistics(self) -> List[ContentionStatistics]:
        """All grid-point statistics (row-major: loads outer, sizes inner)."""
        out = []
        for i in range(len(self.loads)):
            for j in range(len(self.packet_sizes)):
                out.append(self._statistics[(i, j)])
        return out

    def to_payload(self) -> Dict:
        """A JSON-serialisable snapshot of the full table.

        The inverse of :meth:`from_payload`; used by the experiment engine's
        on-disk result cache so a characterisation survives across processes.
        """
        cells = []
        for i in range(len(self.loads)):
            for j in range(len(self.packet_sizes)):
                stats = self._statistics[(i, j)]
                cells.append({field: getattr(stats, field)
                              for field in self._FIELDS}
                             | {"load": stats.load,
                                "packet_bytes": stats.packet_bytes,
                                "samples": stats.samples})
        return {"loads": list(self.loads),
                "packet_sizes": list(self.packet_sizes),
                "cells": cells}

    @classmethod
    def from_payload(cls, payload: Dict) -> "ContentionTable":
        """Rebuild a table from a :meth:`to_payload` snapshot."""
        loads = payload["loads"]
        packet_sizes = payload["packet_sizes"]
        statistics: Dict[Tuple[int, int], ContentionStatistics] = {}
        cells = iter(payload["cells"])
        for i in range(len(loads)):
            for j in range(len(packet_sizes)):
                statistics[(i, j)] = ContentionStatistics(**next(cells))
        return cls(loads, packet_sizes, statistics)


def build_contention_table(loads: Sequence[float],
                           packet_sizes: Sequence[int],
                           simulator: Optional[ContentionSimulator] = None,
                           num_windows: int = 30,
                           executor=None,
                           seed: int = PAPER_SEED,
                           num_nodes: int = 100) -> ContentionTable:
    """Characterise the full (load, packet size) grid by Monte-Carlo.

    Two modes:

    * **Shared-simulator (default, ``executor=None``)** — one simulator walks
      the grid in order, drawing all windows from a single random stream.
      This is the historical behaviour every seeded test relies on.
    * **Executor (``executor`` given)** — each grid point is characterised by
      its own simulator seeded via :func:`repro.sim.random.spawn_seeds`, so
      the points are independent tasks that can run on a process pool.  The
      table is bit-identical whether the executor is serial or parallel (the
      ``simulator`` argument is ignored; pass ``seed``/``num_nodes`` instead).

    Parameters
    ----------
    loads / packet_sizes:
        Grid axes (ascending).
    simulator:
        Shared-simulator mode only: the Monte-Carlo simulator to walk the
        grid with (a default 100-node simulator with the paper's CSMA
        convention is created when omitted).
    num_windows:
        Contention windows simulated per grid point.
    executor:
        A :mod:`repro.runner.executor` strategy enabling the per-point-seed
        mode; ``None`` keeps the shared-simulator behaviour.
    seed / num_nodes:
        Executor mode only: master seed of the per-point seed family and
        contending node count.
    """
    if executor is not None:
        from repro.contention.monte_carlo import characterize_grid

        points = [(load, size) for load in loads for size in packet_sizes]
        stats = characterize_grid(points, num_windows=num_windows,
                                  num_nodes=num_nodes, seed=seed,
                                  executor=executor,
                                  stream_name="contention.table")
        by_point = dict(zip(points, stats))
        statistics = {(i, j): by_point[(load, size)]
                      for i, load in enumerate(loads)
                      for j, size in enumerate(packet_sizes)}
        return ContentionTable(loads, packet_sizes, statistics)

    simulator = simulator or ContentionSimulator()
    return ContentionTable.from_callable(
        lambda load, size: simulator.characterize(load, size,
                                                  num_windows=num_windows),
        loads, packet_sizes)


_DEFAULT_TABLE_CACHE: Dict[Tuple, ContentionTable] = {}


def default_contention_table(num_windows: int = 20,
                             seed: int = PAPER_SEED) -> ContentionTable:
    """A lazily built, cached characterisation table for common queries.

    The grid spans loads 0.05–0.9 and on-air packet sizes 20–133 bytes,
    covering every experiment of the paper.  The table is built once per
    process and cached.
    """
    key = (num_windows, seed)
    if key not in _DEFAULT_TABLE_CACHE:
        simulator = ContentionSimulator(seed=seed)
        loads = [0.05, 0.1, 0.2, 0.3, 0.42, 0.5, 0.6, 0.75, 0.9]
        sizes = [20, 33, 63, 93, 113, 133]
        _DEFAULT_TABLE_CACHE[key] = build_contention_table(
            loads, sizes, simulator=simulator, num_windows=num_windows)
    return _DEFAULT_TABLE_CACHE[key]
