"""Timing constants of the IEEE 802.15.4-2003 physical layers.

The paper works exclusively in the 2450 MHz band: O-QPSK with direct-sequence
spread spectrum at 2 Mchip/s, 32 chips per 4-bit symbol, which gives a 16 µs
symbol period, a 32 µs byte period and a 250 kbit/s gross rate.  The slotted
CSMA/CA backoff slot is 20 symbols (320 µs).  All constants are expressed in
SI units (seconds, bits per second).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhyTiming:
    """Timing parameters of one 802.15.4 PHY option.

    Attributes
    ----------
    name:
        Human-readable identifier of the PHY option.
    chip_rate_hz:
        Spreading chip rate in chip/s.
    chips_per_symbol:
        Length of the pseudo-noise sequence representing one symbol.
    bits_per_symbol:
        Number of data bits carried by one symbol.
    """

    name: str
    chip_rate_hz: float
    chips_per_symbol: int
    bits_per_symbol: int

    @property
    def symbol_rate_hz(self) -> float:
        """Symbols per second."""
        return self.chip_rate_hz / self.chips_per_symbol

    @property
    def symbol_period_s(self) -> float:
        """Duration of one symbol (T_S in the paper; 16 µs at 2450 MHz)."""
        return 1.0 / self.symbol_rate_hz

    @property
    def bit_rate_bps(self) -> float:
        """Gross data rate in bit/s (250 kbit/s at 2450 MHz)."""
        return self.symbol_rate_hz * self.bits_per_symbol

    @property
    def byte_period_s(self) -> float:
        """Time to transmit one octet (T_B in the paper; 32 µs at 2450 MHz)."""
        return 8.0 / self.bit_rate_bps

    @property
    def backoff_slot_symbols(self) -> int:
        """Slotted CSMA/CA backoff period in symbols (aUnitBackoffPeriod)."""
        return 20

    @property
    def backoff_slot_s(self) -> float:
        """Slotted CSMA/CA backoff period in seconds (T_slot = 20 T_S)."""
        return self.backoff_slot_symbols * self.symbol_period_s

    def bytes_to_seconds(self, n_bytes: float) -> float:
        """Airtime of ``n_bytes`` octets at the gross rate."""
        return n_bytes * self.byte_period_s

    def seconds_to_symbols(self, seconds: float) -> float:
        """Convert a duration to (fractional) symbol periods."""
        return seconds / self.symbol_period_s

    def symbols_to_seconds(self, symbols: float) -> float:
        """Convert a number of symbol periods to seconds."""
        return symbols * self.symbol_period_s


#: The 2450 MHz O-QPSK/DSSS PHY the paper (and the CC2420) uses:
#: 2 Mchip/s, 32-chip symbols, 4 bits per symbol -> 250 kbit/s.
TIMING_2450MHZ = PhyTiming(
    name="2450MHz O-QPSK",
    chip_rate_hz=2_000_000.0,
    chips_per_symbol=32,
    bits_per_symbol=4,
)

#: The 915 MHz BPSK PHY (US only) -- 40 kbit/s. Included for completeness of
#: the standard model; the paper's analysis is restricted to 2450 MHz.
TIMING_915MHZ = PhyTiming(
    name="915MHz BPSK",
    chip_rate_hz=600_000.0,
    chips_per_symbol=15,
    bits_per_symbol=1,
)

#: The 868 MHz BPSK PHY (EU/Japan) -- 20 kbit/s.
TIMING_868MHZ = PhyTiming(
    name="868MHz BPSK",
    chip_rate_hz=300_000.0,
    chips_per_symbol=15,
    bits_per_symbol=1,
)

#: Symbols in aTurnaroundTime (RX<->TX turnaround of the standard).
TURNAROUND_SYMBOLS = 12

#: Minimum time between a data frame and its acknowledgement
#: (t-ack in the paper): 192 us at 2450 MHz = aTurnaroundTime.
T_ACK_MIN_S = TURNAROUND_SYMBOLS * TIMING_2450MHZ.symbol_period_s

#: Maximum time a transmitter waits for an acknowledgement
#: (t+ack in the paper): 864 us = macAckWaitDuration (54 symbols).
ACK_WAIT_SYMBOLS = 54
T_ACK_MAX_S = ACK_WAIT_SYMBOLS * TIMING_2450MHZ.symbol_period_s

#: Long interframe spacing (frames > aMaxSIFSFrameSize octets): 40 symbols.
LIFS_SYMBOLS = 40
#: Short interframe spacing: 12 symbols.
SIFS_SYMBOLS = 12
#: MPDU size above which the long IFS applies (aMaxSIFSFrameSize).
MAX_SIFS_FRAME_SIZE_BYTES = 18

#: Maximum PHY service data unit (aMaxPHYPacketSize) in octets.
MAX_PHY_PACKET_SIZE_BYTES = 127

#: Duration of the clear channel assessment (8 symbols per the standard).
CCA_DURATION_SYMBOLS = 8
CCA_DURATION_S = CCA_DURATION_SYMBOLS * TIMING_2450MHZ.symbol_period_s

#: Receiver sensitivity required by the standard at 2450 MHz (dBm).  The
#: CC2420 datasheet specifies -95 dBm typical; the paper's BER curve spans
#: -94 .. -85 dBm.
STANDARD_SENSITIVITY_DBM = -85.0
CC2420_SENSITIVITY_DBM = -94.0
