"""Frequency bands and channel catalogue of IEEE 802.15.4-2003.

The standard defines 27 channels across three bands:

* channel 0           — 868.3 MHz (Europe / Japan), BPSK, 20 kbit/s;
* channels 1 – 10     — 902–928 MHz (US), BPSK, 40 kbit/s;
* channels 11 – 26    — 2400–2483.5 MHz (worldwide ISM), O-QPSK, 250 kbit/s.

The dense-network case study of the paper uses the sixteen 2450 MHz channels
to split 1600 nodes into groups of 100 nodes per channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.phy.constants import (
    PhyTiming,
    TIMING_2450MHZ,
    TIMING_868MHZ,
    TIMING_915MHZ,
)


class Band(Enum):
    """The three frequency bands of 802.15.4-2003."""

    BAND_868MHZ = "868MHz"
    BAND_915MHZ = "915MHz"
    BAND_2450MHZ = "2450MHz"


@dataclass(frozen=True)
class ChannelPage:
    """Description of one band: its channels, timing and centre frequencies."""

    band: Band
    timing: PhyTiming
    first_channel: int
    last_channel: int
    base_frequency_hz: float
    channel_spacing_hz: float

    @property
    def channel_count(self) -> int:
        """Number of channels in the band."""
        return self.last_channel - self.first_channel + 1

    def channels(self) -> List[int]:
        """Channel numbers belonging to this band."""
        return list(range(self.first_channel, self.last_channel + 1))

    def center_frequency_hz(self, channel: int) -> float:
        """Centre frequency of ``channel``.

        Raises
        ------
        ValueError
            If ``channel`` does not belong to this band.
        """
        if not self.first_channel <= channel <= self.last_channel:
            raise ValueError(
                f"Channel {channel} is not in band {self.band.value} "
                f"({self.first_channel}..{self.last_channel})")
        return (self.base_frequency_hz
                + (channel - self.first_channel) * self.channel_spacing_hz)


#: Catalogue of the three channel pages keyed by band.
CHANNEL_PAGES: Dict[Band, ChannelPage] = {
    Band.BAND_868MHZ: ChannelPage(
        band=Band.BAND_868MHZ,
        timing=TIMING_868MHZ,
        first_channel=0,
        last_channel=0,
        base_frequency_hz=868.3e6,
        channel_spacing_hz=0.0,
    ),
    Band.BAND_915MHZ: ChannelPage(
        band=Band.BAND_915MHZ,
        timing=TIMING_915MHZ,
        first_channel=1,
        last_channel=10,
        base_frequency_hz=906.0e6,
        channel_spacing_hz=2.0e6,
    ),
    Band.BAND_2450MHZ: ChannelPage(
        band=Band.BAND_2450MHZ,
        timing=TIMING_2450MHZ,
        first_channel=11,
        last_channel=26,
        base_frequency_hz=2405.0e6,
        channel_spacing_hz=5.0e6,
    ),
}


def channels_in_band(band: Band) -> List[int]:
    """Channel numbers available in ``band``."""
    return CHANNEL_PAGES[band].channels()


def band_of_channel(channel: int) -> Band:
    """The band a channel number belongs to.

    Raises
    ------
    ValueError
        If ``channel`` is not one of the 27 channels of the standard.
    """
    for band, page in CHANNEL_PAGES.items():
        if page.first_channel <= channel <= page.last_channel:
            return band
    raise ValueError(f"Channel {channel} is not defined by IEEE 802.15.4-2003")


def channel_center_frequency_hz(channel: int) -> float:
    """Centre frequency of ``channel`` in Hz."""
    return CHANNEL_PAGES[band_of_channel(channel)].center_frequency_hz(channel)


def timing_of_channel(channel: int) -> PhyTiming:
    """PHY timing parameters applicable to ``channel``."""
    return CHANNEL_PAGES[band_of_channel(channel)].timing
