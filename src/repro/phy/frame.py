"""PHY protocol data unit (PPDU) framing.

A transmitted 802.15.4 packet consists of (Figure 5 of the paper):

* a 4-byte preamble used by the receiver for synchronisation,
* a 1-byte start-of-frame delimiter (SFD),
* a 1-byte frame-length field (the PHY header), and
* the PHY service data unit (PSDU), i.e. the MAC frame, of up to 127 bytes.

The paper counts 13 bytes of combined PHY + MAC overhead per data frame
(``L_o``): 4 (preamble) + 1 (SFD) + 1 (length) + 7 bytes of MAC header/footer
with short addressing (frame control 2, sequence number 1, addressing 4 when
short 16-bit PAN-compressed addresses are used... the paper rounds the MAC
overhead to 8 bytes including the 2-byte FCS).  The exact MAC accounting
lives in :mod:`repro.mac.frames`; this module only models the PHY portion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.phy.constants import MAX_PHY_PACKET_SIZE_BYTES, PhyTiming, TIMING_2450MHZ

#: Synchronisation preamble length (octets of zeros).
PHY_PREAMBLE_BYTES = 4
#: Start-of-frame delimiter length.
PHY_SFD_BYTES = 1
#: Frame-length field length (the "PHY header" proper).
PHY_LENGTH_FIELD_BYTES = 1
#: Total PHY overhead per packet: preamble + SFD + length field = 6 bytes.
PHY_HEADER_BYTES = PHY_PREAMBLE_BYTES + PHY_SFD_BYTES + PHY_LENGTH_FIELD_BYTES

#: SFD value defined by the standard.
SFD_VALUE = 0xA7


@dataclass
class PhyFrame:
    """A PHY frame (synchronisation header + PHY header + PSDU).

    Parameters
    ----------
    psdu:
        The MAC frame bytes (PHY service data unit).
    timing:
        PHY timing option used to compute airtime; defaults to the 2450 MHz
        O-QPSK PHY used throughout the paper.
    """

    psdu: bytes
    timing: PhyTiming = field(default=TIMING_2450MHZ)

    def __post_init__(self):
        if len(self.psdu) > MAX_PHY_PACKET_SIZE_BYTES:
            raise ValueError(
                f"PSDU of {len(self.psdu)} bytes exceeds aMaxPHYPacketSize "
                f"({MAX_PHY_PACKET_SIZE_BYTES})")

    # -- sizes ----------------------------------------------------------------
    @property
    def psdu_length(self) -> int:
        """Length of the PSDU (value carried in the frame-length field)."""
        return len(self.psdu)

    @property
    def total_bytes(self) -> int:
        """Total on-air bytes including preamble, SFD and length field."""
        return PHY_HEADER_BYTES + self.psdu_length

    @property
    def synchronisation_bytes(self) -> int:
        """Bytes that only serve receiver synchronisation (preamble + SFD)."""
        return PHY_PREAMBLE_BYTES + PHY_SFD_BYTES

    # -- timing ---------------------------------------------------------------
    @property
    def airtime_s(self) -> float:
        """Time needed to transmit the whole frame."""
        return self.timing.bytes_to_seconds(self.total_bytes)

    @property
    def payload_airtime_s(self) -> float:
        """Airtime of the PSDU alone (without synchronisation header)."""
        return self.timing.bytes_to_seconds(self.psdu_length + PHY_LENGTH_FIELD_BYTES)

    # -- serialisation --------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the frame as it appears on air (preamble first)."""
        preamble = bytes(PHY_PREAMBLE_BYTES)
        sfd = bytes([SFD_VALUE])
        length = bytes([self.psdu_length & 0x7F])
        return preamble + sfd + length + self.psdu

    @classmethod
    def from_bytes(cls, raw: bytes, timing: PhyTiming = TIMING_2450MHZ) -> "PhyFrame":
        """Parse an on-air byte stream back into a :class:`PhyFrame`.

        Raises
        ------
        ValueError
            If the preamble/SFD are malformed or the length is inconsistent.
        """
        if len(raw) < PHY_HEADER_BYTES:
            raise ValueError("Byte stream shorter than the PHY header")
        preamble = raw[:PHY_PREAMBLE_BYTES]
        if any(preamble):
            raise ValueError("Preamble must be all-zero octets")
        if raw[PHY_PREAMBLE_BYTES] != SFD_VALUE:
            raise ValueError(
                f"Bad SFD: expected {SFD_VALUE:#x}, got {raw[PHY_PREAMBLE_BYTES]:#x}")
        length = raw[PHY_PREAMBLE_BYTES + PHY_SFD_BYTES] & 0x7F
        psdu = raw[PHY_HEADER_BYTES:PHY_HEADER_BYTES + length]
        if len(psdu) != length:
            raise ValueError(
                f"Frame-length field says {length} bytes but only "
                f"{len(psdu)} PSDU bytes are present")
        return cls(psdu=psdu, timing=timing)


def frame_airtime_s(psdu_bytes: int,
                    timing: Optional[PhyTiming] = None) -> float:
    """Airtime of a frame with a ``psdu_bytes``-byte PSDU.

    This is equation (3) of the paper expressed at the PHY level:
    ``T_packet = (L_o + L) * T_B`` where the PHY part of ``L_o`` is the
    6-byte synchronisation + length header.
    """
    timing = timing or TIMING_2450MHZ
    if psdu_bytes < 0:
        raise ValueError("PSDU size must be non-negative")
    if psdu_bytes > MAX_PHY_PACKET_SIZE_BYTES:
        raise ValueError(
            f"PSDU of {psdu_bytes} bytes exceeds aMaxPHYPacketSize")
    return timing.bytes_to_seconds(PHY_HEADER_BYTES + psdu_bytes)
