"""O-QPSK / DSSS modulation model of the 2450 MHz PHY.

Each 4-bit symbol is mapped onto one of sixteen nearly-orthogonal 32-chip
pseudo-noise sequences; the chips are transmitted with offset-QPSK and
half-sine pulse shaping.  For the energy analysis only the *timing* matters,
but the full chip mapping is implemented so the analytic bit-error model can
be derived from the actual code distance properties, and so the wired test
bench (:mod:`repro.channel.wired`) can run true chip-level Monte-Carlo
experiments when regenerating Figure 4.

The sixteen sequences follow Table 24 of IEEE 802.15.4-2003: sequences 1–7
are cyclic shifts (by 4 chips) of sequence 0, and sequences 8–15 are the
conjugated (odd-indexed chips inverted) versions of 0–7.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

#: Chip sequence of data symbol 0 (LSB-first chip order), per the standard.
_SYMBOL0_CHIPS = np.array(
    [1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
     0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0],
    dtype=np.uint8,
)


def _build_chip_sequences() -> Dict[int, np.ndarray]:
    """Construct the sixteen 32-chip PN sequences of the 2450 MHz PHY."""
    sequences: Dict[int, np.ndarray] = {}
    for symbol in range(8):
        shifted = np.roll(_SYMBOL0_CHIPS, 4 * symbol)
        sequences[symbol] = shifted.copy()
    for symbol in range(8, 16):
        base = sequences[symbol - 8].copy()
        # Conjugation: invert every odd-indexed chip (the Q-phase chips).
        base[1::2] ^= 1
        sequences[symbol] = base
    return sequences


#: Mapping 4-bit data symbol -> 32-chip PN sequence (numpy uint8 arrays).
CHIP_SEQUENCES: Dict[int, np.ndarray] = _build_chip_sequences()


def chip_sequence_matrix() -> np.ndarray:
    """All sixteen chip sequences stacked as a (16, 32) uint8 matrix."""
    return np.vstack([CHIP_SEQUENCES[s] for s in range(16)])


def hamming_distance_matrix() -> np.ndarray:
    """Pairwise Hamming distances between the sixteen chip sequences."""
    matrix = chip_sequence_matrix().astype(np.int32)
    distances = np.zeros((16, 16), dtype=np.int32)
    for i in range(16):
        distances[i] = np.sum(matrix ^ matrix[i], axis=1)
    return distances


class OqpskDsssModulator:
    """Bit <-> chip conversion for the 2450 MHz O-QPSK/DSSS PHY.

    The modulator provides

    * :meth:`bytes_to_symbols` / :meth:`symbols_to_bytes` — nibble packing,
      least-significant nibble first as required by the standard;
    * :meth:`spread` — symbols to chips;
    * :meth:`despread` — chips back to symbols using minimum-Hamming-distance
      (hard-decision) correlation, which is what a low-complexity sensor-node
      receiver such as the CC2420 implements.
    """

    chips_per_symbol = 32
    bits_per_symbol = 4

    def __init__(self):
        self._matrix = chip_sequence_matrix().astype(np.int16)

    # -- bit / symbol packing ----------------------------------------------
    @staticmethod
    def bytes_to_symbols(data: bytes) -> np.ndarray:
        """Split octets into 4-bit symbols, least-significant nibble first."""
        arr = np.frombuffer(bytes(data), dtype=np.uint8)
        low = arr & 0x0F
        high = arr >> 4
        symbols = np.empty(2 * len(arr), dtype=np.uint8)
        symbols[0::2] = low
        symbols[1::2] = high
        return symbols

    @staticmethod
    def symbols_to_bytes(symbols: Sequence[int]) -> bytes:
        """Inverse of :meth:`bytes_to_symbols`.

        Raises
        ------
        ValueError
            If the number of symbols is odd or a symbol is out of range.
        """
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size % 2 != 0:
            raise ValueError("Symbol stream length must be even to form octets")
        if symbols.size and (symbols.min() < 0 or symbols.max() > 15):
            raise ValueError("Symbols must lie in 0..15")
        low = symbols[0::2]
        high = symbols[1::2]
        return bytes((high << 4 | low).astype(np.uint8).tolist())

    # -- spreading ----------------------------------------------------------
    def spread(self, symbols: Sequence[int]) -> np.ndarray:
        """Map data symbols to the transmitted chip stream (uint8 0/1)."""
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size and (symbols.min() < 0 or symbols.max() > 15):
            raise ValueError("Symbols must lie in 0..15")
        if symbols.size == 0:
            return np.zeros(0, dtype=np.uint8)
        return self._matrix[symbols].astype(np.uint8).reshape(-1)

    def despread(self, chips: Sequence[int]) -> np.ndarray:
        """Hard-decision despreading: nearest chip sequence per 32-chip block.

        Raises
        ------
        ValueError
            If the chip stream length is not a multiple of 32.
        """
        chips = np.asarray(chips, dtype=np.int16)
        if chips.size % self.chips_per_symbol != 0:
            raise ValueError("Chip stream length must be a multiple of 32")
        if chips.size == 0:
            return np.zeros(0, dtype=np.uint8)
        blocks = chips.reshape(-1, self.chips_per_symbol)
        # Hamming distance of each block to each of the 16 candidate codes.
        distances = np.count_nonzero(
            blocks[:, None, :] != self._matrix[None, :, :], axis=2)
        return np.argmin(distances, axis=1).astype(np.uint8)

    # -- convenience --------------------------------------------------------
    def modulate(self, data: bytes) -> np.ndarray:
        """Full transmit mapping: octets to chip stream."""
        return self.spread(self.bytes_to_symbols(data))

    def demodulate(self, chips: Sequence[int]) -> bytes:
        """Full receive mapping: chip stream back to octets."""
        return self.symbols_to_bytes(self.despread(chips))

    def minimum_code_distance(self) -> int:
        """Smallest pairwise Hamming distance between distinct chip codes."""
        distances = hamming_distance_matrix()
        off_diagonal = distances[~np.eye(16, dtype=bool)]
        return int(off_diagonal.min())
