"""Bit- and packet-error models for the 2450 MHz PHY.

Two bit-error models are provided:

``EmpiricalBerModel``
    The paper's measured AWGN regression (equation 1):

        Pr_bit(P_Rx) = 2.35e-30 * exp(-0.659 * P_Rx[dBm])

    valid in the neighbourhood of the CC2420 sensitivity (about -94 dBm to
    -85 dBm).  Because ``P_Rx`` is negative in dBm the exponent is positive
    and the error rate falls steeply with increasing received power, matching
    Figure 4 of the paper.

``AnalyticOqpskErrorModel``
    A from-first-principles model of the DSSS O-QPSK receiver over AWGN,
    used to regenerate a Figure-4-like curve without the measurement bench:
    the per-chip error probability follows the offset-QPSK matched-filter
    bound and the 32-chip nearly-orthogonal block code is approximated by a
    union bound on the minimum code distance.

The packet-error conversion (equation 10 of the paper) assumes independent
bit errors over the packet minus the 4-byte synchronisation preamble:

    Pr_e = 1 - (1 - Pr_bit)^((L_packet - 4) * 8)
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.phy.constants import TIMING_2450MHZ
from repro.phy.frame import PHY_PREAMBLE_BYTES

#: Boltzmann constant [J/K] for thermal-noise computations.
BOLTZMANN_J_PER_K = 1.380649e-23
#: Reference temperature [K].
REFERENCE_TEMPERATURE_K = 290.0


def dbm_to_watt(dbm: float) -> float:
    """Convert a power level from dBm to watts."""
    return 10.0 ** (dbm / 10.0) * 1e-3


def watt_to_dbm(watt: float) -> float:
    """Convert a power level from watts to dBm.

    Raises
    ------
    ValueError
        If ``watt`` is not strictly positive.
    """
    if watt <= 0.0:
        raise ValueError("Power must be strictly positive to express in dBm")
    return 10.0 * math.log10(watt / 1e-3)


def thermal_noise_power_dbm(bandwidth_hz: float,
                            noise_figure_db: float = 0.0,
                            temperature_k: float = REFERENCE_TEMPERATURE_K) -> float:
    """Thermal noise floor ``kTB`` (plus receiver noise figure) in dBm."""
    if bandwidth_hz <= 0:
        raise ValueError("Bandwidth must be positive")
    noise_w = BOLTZMANN_J_PER_K * temperature_k * bandwidth_hz
    return watt_to_dbm(noise_w) + noise_figure_db


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


class ErrorModel(ABC):
    """Interface of a bit-error model parameterised by received power."""

    @abstractmethod
    def bit_error_probability(self, received_power_dbm: float) -> float:
        """Probability that a single data bit is received in error."""

    def bit_error_probability_array(self, received_power_dbm) -> np.ndarray:
        """Vectorised :meth:`bit_error_probability` over an array of powers."""
        powers = np.asarray(received_power_dbm, dtype=float)
        return np.vectorize(self.bit_error_probability)(powers)

    def packet_error_probability(self, received_power_dbm: float,
                                 packet_bytes: int) -> float:
        """Packet-error probability via equation (10) of the paper."""
        ber = self.bit_error_probability(received_power_dbm)
        return packet_error_probability(ber, packet_bytes)


@dataclass(frozen=True)
class EmpiricalBerModel(ErrorModel):
    """The paper's exponential BER regression (equation 1).

    Attributes
    ----------
    coefficient:
        Multiplicative constant (2.35e-30 in the paper).
    exponent_per_dbm:
        Decay rate per dBm of received power (0.659 in the paper).
    """

    coefficient: float = 2.35e-30
    exponent_per_dbm: float = 0.659

    def bit_error_probability(self, received_power_dbm: float) -> float:
        """Evaluate the regression, clipped to the valid range [0, 0.5]."""
        ber = self.coefficient * math.exp(-self.exponent_per_dbm
                                          * received_power_dbm)
        return min(max(ber, 0.0), 0.5)


@dataclass(frozen=True)
class AnalyticOqpskErrorModel(ErrorModel):
    """Analytic DSSS O-QPSK AWGN model (union bound on the block code).

    The per-chip SNR is computed from the received power, the thermal noise
    in the 2 MHz chip-rate bandwidth and the receiver noise figure.  Chip
    decisions behave like antipodal signalling, and a symbol error occurs
    when the received 32-chip block is closer to another code word; the union
    bound over the 15 competitors with the pairwise Hamming distance spectrum
    approximated by the minimum distance gives the symbol-error probability.
    Each symbol error corrupts on average half of its four bits.

    Attributes
    ----------
    noise_figure_db:
        Effective receiver noise figure (including implementation losses of
        the low-cost hard-decision receiver).  The default of 19 dB places
        the waterfall's BER = 1e-4 point near -91 dBm, i.e. in the CC2420's
        measured sensitivity region, so the analytic curve lands close to
        the empirical regression of Figure 4.
    minimum_distance:
        Hamming distance used in the union bound (the true minimum pairwise
        distance of the 802.15.4 code set is 12).
    competitors:
        Number of competing code words (15 for the 16-ary code).
    """

    noise_figure_db: float = 19.0
    minimum_distance: int = 12
    competitors: int = 15

    @property
    def chip_rate_hz(self) -> float:
        """Chip rate defining the noise bandwidth."""
        return TIMING_2450MHZ.chip_rate_hz

    def chip_snr_linear(self, received_power_dbm: float) -> float:
        """Per-chip signal-to-noise ratio (linear)."""
        noise_dbm = thermal_noise_power_dbm(self.chip_rate_hz,
                                            self.noise_figure_db)
        return 10.0 ** ((received_power_dbm - noise_dbm) / 10.0)

    def chip_error_probability(self, received_power_dbm: float) -> float:
        """Probability of a hard chip decision error (antipodal over AWGN)."""
        snr = self.chip_snr_linear(received_power_dbm)
        return q_function(math.sqrt(2.0 * snr))

    def symbol_error_probability(self, received_power_dbm: float) -> float:
        """Union-bound symbol-error probability of the 32-chip block code."""
        p_chip = self.chip_error_probability(received_power_dbm)
        # Probability the received block is closer to one specific competitor
        # at Hamming distance d: the decision flips when more than d/2 of the
        # d differing chip positions are received in error.
        d = self.minimum_distance
        half = d // 2
        pairwise = 0.0
        for errors in range(half + 1, d + 1):
            pairwise += (math.comb(d, errors)
                         * p_chip ** errors * (1.0 - p_chip) ** (d - errors))
        # Ties (exactly d/2 chip errors) are broken randomly.
        pairwise += 0.5 * math.comb(d, half) * p_chip ** half \
            * (1.0 - p_chip) ** (d - half)
        return min(self.competitors * pairwise, 1.0)

    def bit_error_probability(self, received_power_dbm: float) -> float:
        """Bit-error probability: a symbol error corrupts ~half its bits."""
        p_symbol = self.symbol_error_probability(received_power_dbm)
        # For an M-ary orthogonal-like code, P_bit = M/(2(M-1)) * P_symbol.
        m = self.competitors + 1
        return min(0.5, p_symbol * m / (2.0 * (m - 1)))


def packet_error_probability(bit_error_probability: float,
                             packet_bytes: int,
                             preamble_bytes: int = PHY_PREAMBLE_BYTES) -> float:
    """Equation (10): Pr_e = 1 - (1 - Pr_bit)^((L_packet - preamble) * 8).

    Parameters
    ----------
    bit_error_probability:
        Per-bit error probability.
    packet_bytes:
        Total packet size in bytes (``L_packet`` in the paper, i.e. PHY +
        MAC overhead + payload).
    preamble_bytes:
        Synchronisation preamble bytes excluded from the error accounting
        (4 in the paper; errors there only affect acquisition, which the
        model treats as ideal).

    Raises
    ------
    ValueError
        If the probability is outside [0, 1] or the sizes are inconsistent.
    """
    if not 0.0 <= bit_error_probability <= 1.0:
        raise ValueError("bit_error_probability must lie in [0, 1]")
    if packet_bytes < preamble_bytes:
        raise ValueError("packet_bytes must be at least the preamble size")
    n_bits = (packet_bytes - preamble_bytes) * 8
    return 1.0 - (1.0 - bit_error_probability) ** n_bits
