"""IEEE 802.15.4 physical layer model (2450 MHz O-QPSK/DSSS PHY).

The package covers everything the paper's analysis needs from the PHY:

* timing constants (2 Mchip/s, 16 µs symbol, 32 µs byte, 250 kbit/s,
  20-symbol backoff slot) — :mod:`repro.phy.constants`;
* the O-QPSK / DSSS symbol-to-chip mapping used both for completeness and to
  derive the analytic DSSS bit-error-rate — :mod:`repro.phy.modulation`;
* PHY protocol data unit (PPDU) framing: preamble, start-of-frame delimiter,
  frame-length field and payload — :mod:`repro.phy.frame`;
* bit/packet error models: the paper's empirical exponential regression
  (equation 1) and an analytic AWGN model of the DSSS receiver, plus the
  packet-error conversion of equation (10) — :mod:`repro.phy.error_model`;
* the channel page / frequency band catalogue (2450 MHz, 915 MHz, 868 MHz)
  — :mod:`repro.phy.bands`.
"""

from repro.phy.bands import Band, CHANNEL_PAGES, channels_in_band, channel_center_frequency_hz
from repro.phy.constants import PhyTiming, TIMING_2450MHZ
from repro.phy.error_model import (
    AnalyticOqpskErrorModel,
    EmpiricalBerModel,
    ErrorModel,
    packet_error_probability,
)
from repro.phy.frame import PhyFrame, PHY_PREAMBLE_BYTES, PHY_SFD_BYTES, PHY_HEADER_BYTES
from repro.phy.modulation import OqpskDsssModulator, CHIP_SEQUENCES

__all__ = [
    "Band",
    "CHANNEL_PAGES",
    "channels_in_band",
    "channel_center_frequency_hz",
    "PhyTiming",
    "TIMING_2450MHZ",
    "ErrorModel",
    "EmpiricalBerModel",
    "AnalyticOqpskErrorModel",
    "packet_error_probability",
    "PhyFrame",
    "PHY_PREAMBLE_BYTES",
    "PHY_SFD_BYTES",
    "PHY_HEADER_BYTES",
    "OqpskDsssModulator",
    "CHIP_SEQUENCES",
]
