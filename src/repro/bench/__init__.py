"""Tracked performance trajectory of the simulation kernels.

The benchmark suite under ``benchmarks/`` asserts *relative* perf floors in
pytest; this package records the *absolute* history: each tracked
experiment owns a committed ``BENCH_<experiment>.json`` baseline (median
wall-times per kernel, kernel-vs-kernel speedups, the git SHA and a machine
fingerprint), regenerated with ``python -m repro bench`` and guarded in CI
by a quick-mode run compared against the committed speedups with a 2x
tolerance.  See :mod:`repro.bench.trajectory` for the schema and
:mod:`repro.bench.cases` for the tracked workloads.
"""

from repro.bench.trajectory import (SCHEMA_VERSION, bench_path, build_record,
                                    compare_records, git_sha,
                                    machine_fingerprint, read_record,
                                    write_record)
from repro.bench.cases import BENCH_CASES, run_bench_case

__all__ = [
    "SCHEMA_VERSION",
    "BENCH_CASES",
    "bench_path",
    "build_record",
    "compare_records",
    "git_sha",
    "machine_fingerprint",
    "read_record",
    "run_bench_case",
    "write_record",
]
