"""``BENCH_*.json`` perf-trajectory records: schema, IO and the CI gate.

One record tracks one benchmarked experiment.  The JSON object keys are
written in a fixed order (schema version first, measurements in the middle,
provenance last) so that regenerating a baseline produces a minimal diff:

``schema_version``
    Integer, currently ``1``.
``experiment``
    Name of the benchmarked workload (``BENCH_<experiment>.json``).
``mode``
    ``"full"`` for the headline baselines, ``"quick"`` for the scaled-down
    CI smoke variant (stored as ``BENCH_<experiment>_quick.json``); each
    mode gates only against its own committed baseline.
``params``
    The workload parameters the timings were measured with.
``timings_s``
    ``{kernel: {"median_s": float, "runs": int}}`` — median wall-clock
    seconds over ``runs`` repetitions, per simulation kernel.
``speedup``
    ``{"<fast>_vs_<slow>": float}`` — wall-time ratios between kernels.
    Ratios, not absolute times, are what the CI gate compares: they are
    far more portable across machines than seconds.
``phases`` (optional, ``--phases``)
    ``{kernel: {phase: seconds}}`` — per-phase wall-clock breakdown of one
    instrumented run per kernel, collected through :mod:`repro.obs`.
    Diagnostic only: the CI gate never compares it.
``git_sha`` / ``machine``
    Provenance: the short commit hash and a host fingerprint (platform,
    python, numpy, CPU count).

No timestamp is recorded on purpose — regenerating an unchanged baseline
must be a no-op diff.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path
from statistics import median
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

SCHEMA_VERSION = 1

#: CI regression tolerance: a measured speedup may fall to 1/2 of the
#: committed baseline's before the gate fails.
DEFAULT_TOLERANCE = 2.0


def git_sha(root: Optional[str] = None) -> str:
    """Short commit hash of ``root`` (or the cwd); ``"unknown"`` outside git."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=root, capture_output=True, text=True,
                             timeout=10)
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def machine_fingerprint() -> Dict[str, Any]:
    """Host provenance recorded alongside every measurement."""
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


def timed_median(fn: Callable[[], Any],
                 repeats: int = 3) -> Tuple[float, int]:
    """``(median wall-clock seconds, repeats)`` of calling ``fn``."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    samples = []
    for _ in range(repeats):
        start = perf_counter()
        fn()
        samples.append(perf_counter() - start)
    return float(median(samples)), repeats


def build_record(experiment: str, mode: str, params: Dict[str, Any],
                 timings_s: Dict[str, Dict[str, Any]],
                 speedup: Dict[str, float],
                 sha: Optional[str] = None,
                 machine: Optional[Dict[str, Any]] = None,
                 phases: Optional[Dict[str, Dict[str, float]]] = None
                 ) -> Dict[str, Any]:
    """Assemble a schema-ordered record from its parts."""
    if mode not in ("full", "quick"):
        raise ValueError(f"Unknown bench mode {mode!r}; "
                         f"choose 'full' or 'quick'")
    record = {
        "schema_version": SCHEMA_VERSION,
        "experiment": experiment,
        "mode": mode,
        "params": dict(params),
        "timings_s": {kernel: {"median_s": float(entry["median_s"]),
                               "runs": int(entry["runs"])}
                      for kernel, entry in timings_s.items()},
        "speedup": {key: float(value) for key, value in speedup.items()},
    }
    if phases is not None:
        record["phases"] = {
            kernel: {phase: float(seconds)
                     for phase, seconds in sorted(breakdown.items())}
            for kernel, breakdown in phases.items()}
    record["git_sha"] = sha if sha is not None else git_sha()
    record["machine"] = (machine if machine is not None
                         else machine_fingerprint())
    return record


def bench_path(out_dir, experiment: str, mode: str = "full") -> Path:
    """``<out_dir>/BENCH_<experiment>.json`` (``_quick`` suffix in quick mode).

    The two modes get separate files because their speedup ratios are not
    comparable: vectorization pays off less on the scaled-down quick
    workload, so a quick run must be gated against a quick baseline.
    """
    suffix = "" if mode == "full" else f"_{mode}"
    return Path(out_dir) / f"BENCH_{experiment}{suffix}.json"


def write_record(record: Dict[str, Any], path) -> Path:
    """Write ``record`` to ``path``, guarding against cross-experiment clobber.

    Refreshing a baseline in place is normal; silently replacing the
    baseline of a *different* experiment or mode (a copy-paste slip in
    ``--out``, a renamed workload, a quick run pointed at the full
    baseline) is not, and raises ``ValueError`` before touching the file.
    """
    path = Path(path)
    if path.exists():
        existing = read_record(path)
        if existing.get("experiment") != record.get("experiment"):
            raise ValueError(
                f"{path} already holds a baseline for experiment "
                f"{existing.get('experiment')!r}; refusing to overwrite it "
                f"with {record.get('experiment')!r}")
        if existing.get("mode") != record.get("mode"):
            raise ValueError(
                f"{path} already holds a {existing.get('mode')!r}-mode "
                f"baseline; refusing to overwrite it with a "
                f"{record.get('mode')!r}-mode record")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path


def read_record(path) -> Dict[str, Any]:
    """Load a ``BENCH_*.json`` record (key order preserved)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def compare_records(fresh: Dict[str, Any], baseline: Dict[str, Any],
                    tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Regression messages of ``fresh`` against ``baseline`` (empty = pass).

    Every speedup key present in both records must not have fallen below
    ``baseline / tolerance``.  Speedups are compared rather than wall
    times so a committed baseline can gate a CI run on a different
    machine; keys only one record has are ignored.  Both records must be
    of the same experiment *and* mode — the quick workload's ratios are
    structurally smaller than the full workload's, so cross-mode
    comparison is an error, not a regression.
    """
    if tolerance < 1.0:
        raise ValueError("tolerance must be at least 1.0")
    if fresh.get("experiment") != baseline.get("experiment"):
        raise ValueError(
            f"Cannot compare experiment {fresh.get('experiment')!r} "
            f"against a baseline for {baseline.get('experiment')!r}")
    if fresh.get("mode") != baseline.get("mode"):
        raise ValueError(
            f"Cannot compare a {fresh.get('mode')!r}-mode record against "
            f"a {baseline.get('mode')!r}-mode baseline")
    problems = []
    base_speedups = baseline.get("speedup", {})
    for key, measured in fresh.get("speedup", {}).items():
        if key not in base_speedups:
            continue
        floor = base_speedups[key] / tolerance
        if measured < floor:
            problems.append(
                f"{fresh['experiment']}: speedup {key} regressed to "
                f"{measured:.2f}x (committed baseline {base_speedups[key]:.2f}x, "
                f"tolerance floor {floor:.2f}x)")
    return problems
