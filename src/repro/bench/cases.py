"""The tracked benchmark workloads behind ``python -m repro bench``.

Two workloads cover the two levels the kernels are consumed at:

``vectorized_channel``
    One dense channel (the paper's 100-node population), event kernel vs
    the vectorized fast path — the single-channel speedup the benchmark
    suite has asserted since the fast path landed.
``case_study_full``
    The full Section 5 fan-out (16 channels x 100 nodes), per-channel
    vectorized vs the batched lockstep backend, plus the retained
    pre-batching reference kernel (``vectorized_reference``, forced via
    :data:`repro.mac.vectorized.COMPAT_ENV`) so the trajectory keeps the
    baseline the batched kernel was measured against.

Each case returns a schema-ordered record (:mod:`repro.bench.trajectory`);
``quick`` mode shrinks the population and horizon to CI-smoke size while
keeping every speedup ratio meaningful.  The slow reference kernels run
once per record in full mode (their medians move little and dominate wall
time); the fast kernels always get the full repeat count.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict

from repro.bench.trajectory import build_record, timed_median

#: Master seed of every benchmark run — timings must not wander with the
#: workload's random draws.
BENCH_SEED = 2005


def _timed_compat(fn: Callable[[], Any], repeats: int):
    """Time ``fn`` with the pre-batching reference kernel forced."""
    from repro.mac.vectorized import COMPAT_ENV

    previous = os.environ.get(COMPAT_ENV)
    os.environ[COMPAT_ENV] = "1"
    try:
        return timed_median(fn, repeats)
    finally:
        if previous is None:
            os.environ.pop(COMPAT_ENV, None)
        else:  # pragma: no cover - depends on the caller's environment
            os.environ[COMPAT_ENV] = previous


def _phase_breakdown(fn: Callable[[], Any],
                     compat: bool = False) -> Dict[str, float]:
    """Per-phase seconds of one instrumented run of ``fn``.

    Runs once under a fresh :class:`repro.obs.Tracer` (timings are
    diagnostic, not gated, so a single sample is enough); ``compat``
    forces the pre-batching reference kernel the way :func:`_timed_compat`
    does for the median timings.
    """
    from repro.mac.vectorized import COMPAT_ENV
    from repro.obs import Tracer, activate, phase_durations

    tracer = Tracer(name="bench")
    previous = os.environ.get(COMPAT_ENV)
    if compat:
        os.environ[COMPAT_ENV] = "1"
    try:
        with activate(tracer):
            fn()
    finally:
        if compat:
            if previous is None:
                os.environ.pop(COMPAT_ENV, None)
            else:  # pragma: no cover - depends on caller's environment
                os.environ[COMPAT_ENV] = previous
    return phase_durations(tracer)


def bench_vectorized_channel(quick: bool = False, repeats: int = 3,
                             phases: bool = False) -> Dict[str, Any]:
    """Single dense channel: event kernel vs the vectorized fast path."""
    from repro.network.scenario import DenseNetworkScenario

    max_nodes = 20 if quick else None
    superframes = 4 if quick else 10
    scenario = DenseNetworkScenario(seed=1)
    channel = scenario.channel_scenario(11, max_nodes=max_nodes,
                                        seed=BENCH_SEED)

    def run(backend: str):
        return channel.run(superframes=superframes, backend=backend)

    timings: Dict[str, Dict[str, Any]] = {}
    for kernel in ("event", "vectorized"):
        median_s, runs = timed_median(lambda: run(kernel), repeats)
        timings[kernel] = {"median_s": median_s, "runs": runs}
    speedup = {
        "vectorized_vs_event": (timings["event"]["median_s"]
                                / timings["vectorized"]["median_s"]),
    }
    breakdown = None
    if phases:
        breakdown = {kernel: _phase_breakdown(lambda: run(kernel))
                     for kernel in ("event", "vectorized")}
    return build_record(
        experiment="vectorized_channel",
        mode="quick" if quick else "full",
        params={"nodes": len(channel.nodes), "superframes": superframes,
                "seed": BENCH_SEED},
        timings_s=timings, speedup=speedup, phases=breakdown)


def bench_case_study_full(quick: bool = False, repeats: int = 3,
                          phases: bool = False) -> Dict[str, Any]:
    """Full Section 5 fan-out: batched vs per-channel vs reference kernels."""
    from repro.experiments.case_study_full import run_full_case_study

    superframes = 5 if quick else 50
    cap = 25 if quick else None

    def run(backend: str):
        return run_full_case_study(superframes=superframes, backend=backend,
                                   nodes_per_channel_cap=cap,
                                   seed=BENCH_SEED)

    # The slow per-channel baselines dominate a full-mode record's wall
    # time; one run each keeps regeneration cheap without moving the
    # ratios materially.
    slow_repeats = repeats if quick else 1
    timings: Dict[str, Dict[str, Any]] = {}
    for kernel, timer, count in (
            ("event", timed_median, slow_repeats),
            ("vectorized_reference", _timed_compat, slow_repeats),
            ("vectorized", timed_median, repeats),
            ("batched", timed_median, repeats)):
        median_s, runs = timer(lambda: run(kernel.split("_")[0]), count)
        timings[kernel] = {"median_s": median_s, "runs": runs}
    batched = timings["batched"]["median_s"]
    speedup = {
        "batched_vs_reference": (timings["vectorized_reference"]["median_s"]
                                 / batched),
        "batched_vs_vectorized": timings["vectorized"]["median_s"] / batched,
        "batched_vs_event": timings["event"]["median_s"] / batched,
    }
    breakdown = None
    if phases:
        breakdown = {
            kernel: _phase_breakdown(lambda: run(kernel.split("_")[0]),
                                     compat=kernel == "vectorized_reference")
            for kernel in ("event", "vectorized_reference", "vectorized",
                           "batched")}
    return build_record(
        experiment="case_study_full",
        mode="quick" if quick else "full",
        params={"total_nodes": 1600, "superframes": superframes,
                "nodes_per_channel_cap": cap, "seed": BENCH_SEED},
        timings_s=timings, speedup=speedup, phases=breakdown)


#: Registry of benchmarkable experiments, in trajectory order.
BENCH_CASES: Dict[str, Callable[..., Dict[str, Any]]] = {
    "vectorized_channel": bench_vectorized_channel,
    "case_study_full": bench_case_study_full,
}


def run_bench_case(name: str, quick: bool = False, repeats: int = 3,
                   phases: bool = False) -> Dict[str, Any]:
    """Run one registered case and return its record."""
    try:
        case = BENCH_CASES[name]
    except KeyError:
        raise ValueError(
            f"Unknown bench case {name!r}; "
            f"choose from {', '.join(sorted(BENCH_CASES))}") from None
    return case(quick=quick, repeats=repeats, phases=phases)
