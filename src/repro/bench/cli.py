"""``python -m repro bench`` — regenerate or check the perf trajectory.

Regenerate the committed baselines (writes ``benchmarks/BENCH_*.json``)::

    python -m repro bench

CI smoke (scaled-down run, compared against the committed baselines with
the 2x tolerance, artifacts written elsewhere)::

    python -m repro bench --quick --out /tmp/bench --check

Exit status: 0 on success, 1 when ``--check`` finds a regressed speedup,
2 on bad arguments.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.cases import BENCH_CASES, run_bench_case
from repro.bench.trajectory import (DEFAULT_TOLERANCE, bench_path,
                                    compare_records, read_record,
                                    write_record)

#: Default location of the committed baselines, relative to the cwd.
DEFAULT_BASELINE_DIR = "benchmarks"


def add_bench_parser(commands) -> None:
    """Attach the ``bench`` subcommand to the engine's subparser tree."""
    parser = commands.add_parser(
        "bench", help="measure the simulation kernels and track the "
                      "BENCH_*.json perf trajectory")
    parser.add_argument("cases", nargs="*", metavar="CASE",
                        help=f"cases to run (default: all of "
                             f"{', '.join(BENCH_CASES)})")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down CI-smoke variant (small "
                             "population, short horizon)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per kernel (median is "
                             "recorded; default 3)")
    parser.add_argument("--out", default=DEFAULT_BASELINE_DIR,
                        metavar="DIR",
                        help="directory for the BENCH_*.json records "
                             f"(default: {DEFAULT_BASELINE_DIR}/, i.e. the "
                             "committed baselines)")
    parser.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                        metavar="DIR",
                        help="committed baselines for --check "
                             f"(default: {DEFAULT_BASELINE_DIR}/)")
    parser.add_argument("--check", action="store_true",
                        help="compare the fresh speedups against the "
                             "committed baselines; exit 1 on a >"
                             f"{DEFAULT_TOLERANCE}x regression")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="speedup regression tolerance for --check "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--phases", action="store_true",
                        help="record a per-phase kernel breakdown (one "
                             "instrumented run each, via repro.obs) in the "
                             "record's optional 'phases' section")


def command_bench(arguments: argparse.Namespace) -> int:
    names = arguments.cases or list(BENCH_CASES)
    unknown = [name for name in names if name not in BENCH_CASES]
    if unknown:
        print(f"error: unknown bench case(s): {', '.join(unknown)}; "
              f"choose from {', '.join(BENCH_CASES)}", file=sys.stderr)
        return 2
    if arguments.repeats < 1:
        print("error: --repeats must be at least 1", file=sys.stderr)
        return 2

    problems = []
    for name in names:
        record = run_bench_case(name, quick=arguments.quick,
                                repeats=arguments.repeats,
                                phases=arguments.phases)
        path = write_record(record, bench_path(arguments.out, name,
                                               mode=record["mode"]))
        timing_bits = ", ".join(
            f"{kernel} {entry['median_s']:.3f}s"
            for kernel, entry in record["timings_s"].items())
        speedup_bits = ", ".join(f"{key} {value:.2f}x"
                                 for key, value in record["speedup"].items())
        print(f"{name} [{record['mode']}]: {timing_bits}")
        print(f"  speedups: {speedup_bits}")
        print(f"  wrote {path}")
        if arguments.check:
            baseline_path = bench_path(arguments.baseline_dir, name,
                                       mode=record["mode"])
            if not Path(baseline_path).exists():
                problems.append(f"{name}: no committed baseline at "
                                f"{baseline_path}")
                continue
            problems.extend(compare_records(
                record, read_record(baseline_path),
                tolerance=arguments.tolerance))

    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    if arguments.check:
        print(f"perf trajectory OK (tolerance {arguments.tolerance}x)")
    return 0
