"""Node-side MAC entity implementing the paper's radio activation policy.

Each :class:`Device` models one sensor node of the star network.  Per
superframe (Figure 5 of the paper) the node:

1. pre-emptively wakes its radio ~1 ms before the beacon (shutdown -> idle
   transition) and turns the receiver on to listen to the beacon;
2. returns to idle after the beacon; if it has a packet buffered it starts
   the slotted CSMA/CA contention procedure: random backoff delays are spent
   in idle, each clear channel assessment turns the receiver on briefly;
3. on channel access failure the node gives up for this superframe; on
   success it transmits the data frame, waits ``t-ack`` in idle, then turns
   the receiver on until the acknowledgement arrives or ``t+ack`` expires;
4. a missed acknowledgement triggers a new contention procedure, up to
   ``N_max`` total transmissions;
5. once the transaction completes (or fails) the node shuts its radio down
   until the next pre-beacon wake-up.

All radio activity is charged to a per-node :class:`CC2420Radio` energy
ledger tagged with the protocol phase, which is what the simulation-side
energy breakdown (cross-validating Figure 9) is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps mac below network)
    from repro.network.traffic import TrafficSource

from repro.mac.commands import AssociationService, CommandFrame, CommandType
from repro.mac.constants import MAC_2450MHZ, MacConstants
from repro.mac.coordinator import Coordinator
from repro.mac.csma import CsmaAction, CsmaOutcome, CsmaParameters, SlottedCsmaCa
from repro.mac.frames import AckFrame, DataFrame
from repro.mac.medium import Medium
from repro.mac.superframe import Superframe, SuperframeConfig
from repro.radio.cc2420 import CC2420Radio
from repro.radio.power_profile import (
    CC2420_PROFILE,
    RadioPowerProfile,
    T_SHUTDOWN_TO_IDLE_POLICY_S,
)
from repro.radio.states import RadioState
from repro.sim.engine import Environment
from repro.sim.monitor import CounterMonitor, Monitor

#: Phase labels used in the energy ledger (match Figure 9 of the paper).
PHASE_BEACON = "beacon"
PHASE_CONTENTION = "contention"
PHASE_TRANSMIT = "transmit"
PHASE_ACK = "ackifs"
PHASE_SLEEP = "sleep"
#: Downlink (indirect transmission) activity — not part of the paper's
#: uplink model, so it gets its own phase label and stays out of the
#: Figure 9 comparison.
PHASE_DOWNLINK = "downlink"


@dataclass
class TransactionRecord:
    """Outcome of one per-superframe uplink transaction attempt."""

    superframe_start_s: float
    completed_s: Optional[float]
    success: bool
    transmissions: int
    channel_access_failures: int
    deferred: bool = False

    @property
    def delay_s(self) -> Optional[float]:
        """Time from superframe start to successful completion."""
        if not self.success or self.completed_s is None:
            return None
        return self.completed_s - self.superframe_start_s


class Device:
    """One sensor node of the beacon-enabled star network.

    Parameters
    ----------
    env:
        Simulation environment.
    node_id:
        Unique node identifier (must not be 0, which is the coordinator).
    medium:
        The RF channel shared with the coordinator and the other nodes.
    coordinator:
        The PAN coordinator (decides frame acceptance and acknowledges).
    config:
        Superframe configuration.
    payload_bytes:
        Application payload per uplink packet (L in the paper).
    tx_power_dbm:
        Transmit power level; ``None`` lets a link-adaptation callback decide.
    csma_params / constants / profile:
        MAC and radio parameterisation.
    packet_source:
        Callable returning ``True`` when the node has a packet to send this
        superframe (default: always — one packet per superframe, as in the
        paper's model).
    traffic_source:
        Stateful per-node packet feed
        (:class:`repro.network.traffic.TrafficSource`).  When set, the node
        polls it at every beacon: data sensed by the superframe boundary is
        drainable in that superframe, and a superframe without a buffered
        packet is slept through (beacon reception only).  ``None`` keeps
        the saturated default.  ``packet_source`` — the legacy hook — is
        consulted first; a packet is only drained when both agree.
    stagger_transactions:
        When ``True`` (default) the node starts its uplink transaction at a
        uniformly random offset within the contention access period instead
        of immediately after the beacon, shutting the radio down in between.
        This matches the arrival model used by the Monte-Carlo contention
        characterisation (a node's buffered packet completes at an arbitrary
        point of the superframe) and avoids the pathological burst of 100
        simultaneous contention procedures right after each beacon.
    enable_downlink:
        When ``True`` (default) the node checks the beacon's pending-address
        indication and extracts buffered downlink data with a data-request
        command (indirect transmission, Figure 1b of the paper).
    rng:
        Random generator (backoff draws).
    """

    def __init__(self, env: Environment, node_id: int, medium: Medium,
                 coordinator: Coordinator, config: SuperframeConfig,
                 payload_bytes: int = 120,
                 tx_power_dbm: Optional[float] = 0.0,
                 csma_params: Optional[CsmaParameters] = None,
                 constants: MacConstants = MAC_2450MHZ,
                 profile: RadioPowerProfile = CC2420_PROFILE,
                 packet_source: Optional[Callable[[], bool]] = None,
                 traffic_source: Optional["TrafficSource"] = None,
                 stagger_transactions: bool = True,
                 enable_downlink: bool = True,
                 rng: Optional[np.random.Generator] = None):
        if node_id == Coordinator.COORDINATOR_ID:
            raise ValueError("Node id 0 is reserved for the coordinator")
        self.env = env
        self.node_id = node_id
        self.medium = medium
        self.coordinator = coordinator
        self.config = config
        self.payload_bytes = payload_bytes
        self.tx_power_dbm = tx_power_dbm
        self.constants = constants
        self.csma_params = csma_params or CsmaParameters.from_mac_constants(constants)
        self.profile = profile
        self.packet_source = packet_source or (lambda: True)
        self.traffic_source = traffic_source
        self.stagger_transactions = stagger_transactions
        self.enable_downlink = enable_downlink
        self.downlink_payloads: List[bytes] = []
        self.rng = rng if rng is not None else np.random.default_rng(node_id)

        self.radio = CC2420Radio(profile=profile,
                                 initial_state=RadioState.SHUTDOWN,
                                 time_s=env.now)
        self.counters = CounterMonitor(f"node{node_id}")
        self.delays = Monitor(f"node{node_id}.delay")
        self.transactions: List[TransactionRecord] = []
        self._sequence_number = 0
        self._process = None

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        """Launch the per-superframe uplink process."""
        if self._process is None:
            self._process = self.env.process(self._run())

    # -- helpers ----------------------------------------------------------------------
    def _next_sequence(self) -> int:
        self._sequence_number = (self._sequence_number + 1) % 256
        return self._sequence_number

    def _build_data_frame(self) -> DataFrame:
        return DataFrame(
            source=self.node_id,
            destination=Coordinator.COORDINATOR_ID,
            sequence_number=self._next_sequence(),
            ack_request=True,
            payload=bytes(self.payload_bytes),
        )

    @property
    def packet_airtime_s(self) -> float:
        """Airtime of one uplink data frame (equation 3)."""
        return self._build_data_frame().airtime_s(self.constants.timing.byte_period_s)

    def _charge_radio(self, duration_s: float, state: RadioState, phase: str) -> None:
        """Move the radio to ``state`` and dwell ``duration_s``, tagging ``phase``."""
        self.radio.transition_to(state, phase=phase)
        if duration_s > 0:
            self.radio.dwell(duration_s, phase=phase)

    # -- main process ------------------------------------------------------------------
    def _run(self):
        beacon_interval = self.config.beacon_interval_s
        byte_period = self.constants.timing.byte_period_s
        slot_s = self.constants.unit_backoff_period_s
        wake_lead = T_SHUTDOWN_TO_IDLE_POLICY_S

        # Align with the coordinator: the first beacon is emitted at t = 0,
        # subsequent ones every beacon interval.  The node sleeps up to each
        # wake-up point, then follows the activation policy.
        next_beacon_s = 0.0
        while True:
            # ---- sleep until the pre-beacon wake-up --------------------------------
            wake_time = max(self.env.now, next_beacon_s - wake_lead)
            sleep_duration = wake_time - self.env.now
            if sleep_duration > 0:
                self._charge_radio(sleep_duration, RadioState.SHUTDOWN, PHASE_SLEEP)
                yield self.env.timeout(sleep_duration)

            # ---- wake up and listen to the beacon ----------------------------------
            # The shutdown->idle transition (~1 ms) is charged to the beacon
            # phase; any residual lead time is spent in idle.
            self.radio.transition_to(RadioState.IDLE, phase=PHASE_BEACON)
            startup_wait = next_beacon_s - self.env.now
            if startup_wait > 0:
                self.radio.dwell(startup_wait, phase=PHASE_BEACON)
                yield self.env.timeout(startup_wait)

            superframe = self.coordinator.current_superframe
            if superframe is None or abs(superframe.beacon_time_s - next_beacon_s) > 1e-9:
                # Beacon not observed (should not happen with an ideal
                # coordinator); treat as a lost beacon and sleep a full period.
                self.counters.increment("beacons_missed")
                next_beacon_s += beacon_interval
                continue

            beacon_airtime = superframe.beacon_airtime_s
            self._charge_radio(beacon_airtime, RadioState.RX, PHASE_BEACON)
            yield self.env.timeout(beacon_airtime)
            self.radio.transition_to(RadioState.IDLE, phase=PHASE_BEACON)
            self.counters.increment("beacons_received")

            # ---- downlink (indirect transmission) ------------------------------------
            if self.enable_downlink and \
                    self.coordinator.has_pending_downlink(self.node_id):
                self.counters.increment("downlink_pending_seen")
                yield from self._downlink_transaction(superframe)

            # ---- uplink transaction -------------------------------------------------
            if self._take_packet(superframe.beacon_time_s):
                if self.stagger_transactions:
                    yield from self._stagger_delay(superframe, wake_lead)
                yield from self._uplink_transaction(superframe)

            # ---- shutdown until the next wake-up -------------------------------------
            next_beacon_s += beacon_interval
            self.radio.transition_to(RadioState.SHUTDOWN, phase=PHASE_SLEEP)

    def _take_packet(self, beacon_time_s: float) -> bool:
        """Whether a packet is sendable this superframe; drains it if so.

        The traffic source is polled at the superframe boundary — data
        sensed by the beacon instant is drainable in the superframe the
        beacon starts.  The drained packet is committed to this superframe's
        single transaction attempt (delivered, failed or deferred).
        """
        if not self.packet_source():
            return False
        if self.traffic_source is None:
            return True
        if not self.traffic_source.poll(beacon_time_s):
            self.counters.increment("superframes_without_traffic")
            return False
        self.traffic_source.drain_packet()
        return True

    def _downlink_transaction(self, superframe: Superframe):
        """Extract pending downlink data with a data-request command.

        Indirect transmission (Figure 1b): the beacon advertised pending
        data, so the node contends for the channel, transmits a data-request
        command, receives its acknowledgement, stays in receive mode for the
        downlink data frame and finally acknowledges it.  Failures (channel
        access failure, collision of the request) are abandoned for this
        superframe — the data stays queued at the coordinator and is
        advertised again in the next beacon.
        """
        constants = self.constants
        slot_s = constants.unit_backoff_period_s
        byte_period = constants.timing.byte_period_s
        request = AssociationService.build_data_request(self.node_id)
        request_airtime = request.airtime_s(byte_period)
        ack_airtime = AckFrame().airtime_s(byte_period)

        # ---- contention for the data-request command -------------------------------
        csma = SlottedCsmaCa(self.csma_params, rng=self.rng)
        instruction = csma.begin()
        while True:
            if instruction.action is CsmaAction.WAIT_BACKOFF:
                wait_s = instruction.slots * slot_s
                if wait_s > 0:
                    self._charge_radio(wait_s, RadioState.IDLE, PHASE_DOWNLINK)
                    yield self.env.timeout(wait_s)
                instruction = csma.backoff_elapsed()
            elif instruction.action is CsmaAction.PERFORM_CCA:
                if not superframe.in_cap(self.env.now):
                    self.counters.increment("downlink_deferred")
                    return
                self._charge_radio(slot_s, RadioState.RX, PHASE_DOWNLINK)
                yield self.env.timeout(slot_s)
                busy = self.medium.is_busy()
                self.radio.transition_to(RadioState.IDLE, phase=PHASE_DOWNLINK)
                instruction = csma.cca_result(busy)
            elif instruction.action is CsmaAction.TRANSMIT:
                break
            else:  # CsmaAction.FAILURE
                self.counters.increment("downlink_access_failures")
                return

        # ---- transmit the data request ------------------------------------------------
        self.counters.increment("data_requests_sent")
        self.radio.transition_to(RadioState.TX, phase=PHASE_DOWNLINK)
        transmission = self.medium.start_transmission(
            source=self.node_id, duration_s=request_airtime, frame=request,
            tx_power_dbm=self.radio.tx_level_dbm)
        self.radio.dwell(request_airtime, phase=PHASE_DOWNLINK)
        yield self.env.timeout(request_airtime)
        self.radio.transition_to(RadioState.IDLE, phase=PHASE_DOWNLINK)
        if transmission.collided:
            # Request lost; wait out the acknowledgement window and give up.
            self._charge_radio(constants.ack_wait_duration_s, RadioState.RX,
                               PHASE_DOWNLINK)
            yield self.env.timeout(constants.ack_wait_duration_s)
            self.radio.transition_to(RadioState.IDLE, phase=PHASE_DOWNLINK)
            self.counters.increment("downlink_request_lost")
            return

        # ---- acknowledgement of the request, then the data frame -----------------------
        self._charge_radio(constants.turnaround_time_s, RadioState.IDLE,
                           PHASE_DOWNLINK)
        yield self.env.timeout(constants.turnaround_time_s)
        self._charge_radio(ack_airtime, RadioState.RX, PHASE_DOWNLINK)
        yield self.env.timeout(ack_airtime)

        downlink_frame = self.coordinator.handle_data_request(self.node_id)
        if downlink_frame is None:
            self.radio.transition_to(RadioState.IDLE, phase=PHASE_DOWNLINK)
            return
        frame_airtime = downlink_frame.airtime_s(byte_period)
        # The coordinator turns the frame around after aTurnaroundTime; the
        # node keeps its receiver on throughout.
        self._charge_radio(constants.turnaround_time_s + frame_airtime,
                           RadioState.RX, PHASE_DOWNLINK)
        self.medium.start_transmission(
            source=Coordinator.COORDINATOR_ID, duration_s=frame_airtime,
            frame=downlink_frame, tx_power_dbm=0.0)
        yield self.env.timeout(constants.turnaround_time_s + frame_airtime)
        self.radio.transition_to(RadioState.IDLE, phase=PHASE_DOWNLINK)

        # ---- acknowledge the downlink frame ----------------------------------------------
        self._charge_radio(constants.turnaround_time_s, RadioState.IDLE,
                           PHASE_DOWNLINK)
        yield self.env.timeout(constants.turnaround_time_s)
        self.radio.transition_to(RadioState.TX, phase=PHASE_DOWNLINK)
        self.medium.start_transmission(
            source=self.node_id, duration_s=ack_airtime,
            frame=AckFrame(source=self.node_id), tx_power_dbm=self.radio.tx_level_dbm)
        self.radio.dwell(ack_airtime, phase=PHASE_DOWNLINK)
        yield self.env.timeout(ack_airtime)
        self.radio.transition_to(RadioState.IDLE, phase=PHASE_DOWNLINK)
        self.downlink_payloads.append(downlink_frame.payload)
        self.counters.increment("downlink_received")

    def _stagger_delay(self, superframe: Superframe, wake_lead: float):
        """Shut down until a random transaction start within the CAP.

        The node keeps enough margin at the end of the contention access
        period for a worst-case contention (three maximum backoff windows),
        the data frame and the acknowledgement exchange.
        """
        constants = self.constants
        slot_s = constants.unit_backoff_period_s
        margin = (56 * slot_s + self.packet_airtime_s
                  + constants.ack_wait_duration_s)
        latest_start = superframe.cfp_start_time_s - margin
        earliest_start = self.env.now
        if latest_start <= earliest_start + wake_lead:
            return
        start = float(self.rng.uniform(earliest_start + wake_lead, latest_start))
        sleep_duration = start - self.env.now - wake_lead
        if sleep_duration > 0:
            self._charge_radio(sleep_duration, RadioState.SHUTDOWN, PHASE_SLEEP)
            yield self.env.timeout(sleep_duration)
        # Wake the chip back up ahead of the transaction (second shutdown ->
        # idle transition of the superframe; small but accounted).
        self.radio.transition_to(RadioState.IDLE, phase=PHASE_CONTENTION)
        self._charge_radio(wake_lead, RadioState.IDLE, PHASE_CONTENTION)
        yield self.env.timeout(wake_lead)

    def _uplink_transaction(self, superframe: Superframe):
        """Run the contention / transmit / acknowledge cycle for one packet."""
        constants = self.constants
        slot_s = constants.unit_backoff_period_s
        byte_period = constants.timing.byte_period_s
        frame = self._build_data_frame()
        frame_airtime = frame.airtime_s(byte_period)
        ack_airtime = AckFrame().airtime_s(byte_period)

        record = TransactionRecord(
            superframe_start_s=superframe.beacon_time_s,
            completed_s=None, success=False,
            transmissions=0, channel_access_failures=0,
        )
        self.counters.increment("packets_attempted")

        for attempt in range(constants.max_transmissions):
            # ---- contention ------------------------------------------------------
            csma = SlottedCsmaCa(self.csma_params, rng=self.rng)
            instruction = csma.begin()
            access_granted = False
            while True:
                if instruction.action is CsmaAction.WAIT_BACKOFF:
                    wait_s = instruction.slots * slot_s
                    if wait_s > 0:
                        self._charge_radio(wait_s, RadioState.IDLE, PHASE_CONTENTION)
                        yield self.env.timeout(wait_s)
                    instruction = csma.backoff_elapsed()
                elif instruction.action is CsmaAction.PERFORM_CCA:
                    # Abort if the CCA (and a subsequent transmission) can no
                    # longer fit in the contention access period.
                    if not superframe.in_cap(self.env.now):
                        record.deferred = True
                        self.counters.increment("transactions_deferred")
                        self.transactions.append(record)
                        return
                    # Turn the receiver on for one backoff slot to sense.
                    self._charge_radio(slot_s, RadioState.RX, PHASE_CONTENTION)
                    yield self.env.timeout(slot_s)
                    busy = self.medium.is_busy()
                    self.radio.transition_to(RadioState.IDLE, phase=PHASE_CONTENTION)
                    self.counters.increment("cca_performed")
                    if busy:
                        self.counters.increment("cca_busy")
                    instruction = csma.cca_result(busy)
                elif instruction.action is CsmaAction.TRANSMIT:
                    access_granted = True
                    break
                elif instruction.action is CsmaAction.FAILURE:
                    break
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"Unknown CSMA action {instruction.action}")

            if not access_granted:
                record.channel_access_failures += 1
                self.counters.increment("channel_access_failures")
                self.transactions.append(record)
                return

            if not superframe.transaction_fits_in_cap(
                    self.env.now,
                    frame_airtime + constants.turnaround_time_s + ack_airtime):
                record.deferred = True
                self.counters.increment("transactions_deferred")
                self.transactions.append(record)
                return

            # ---- transmit the data frame ---------------------------------------------
            record.transmissions += 1
            self.counters.increment("frames_transmitted")
            self.radio.transition_to(RadioState.TX, phase=PHASE_TRANSMIT)
            if self.tx_power_dbm is not None:
                self.radio.set_tx_level(self.tx_power_dbm)
            transmission = self.medium.start_transmission(
                source=self.node_id,
                duration_s=frame_airtime,
                frame=frame,
                tx_power_dbm=self.radio.tx_level_dbm,
            )
            self.radio.dwell(frame_airtime, phase=PHASE_TRANSMIT)
            yield self.env.timeout(frame_airtime)
            self.radio.transition_to(RadioState.IDLE, phase=PHASE_TRANSMIT)

            # ---- acknowledgement ------------------------------------------------------
            acked = self.coordinator.frame_received(transmission,
                                                    record.transmissions)
            # Idle during the minimum turnaround (t-ack), then receive.
            self._charge_radio(constants.turnaround_time_s, RadioState.IDLE, PHASE_ACK)
            yield self.env.timeout(constants.turnaround_time_s)
            if acked:
                self._charge_radio(ack_airtime, RadioState.RX, PHASE_ACK)
                yield self.env.timeout(ack_airtime)
                self.radio.transition_to(RadioState.IDLE, phase=PHASE_ACK)
                record.success = True
                record.completed_s = self.env.now
                self.counters.increment("packets_delivered")
                self.delays.record(record.delay_s)
                self.transactions.append(record)
                return
            # No acknowledgement: listen until t+ack expires, then retry.
            residual_wait = max(0.0, constants.ack_wait_duration_s
                                - constants.turnaround_time_s)
            self._charge_radio(residual_wait, RadioState.RX, PHASE_ACK)
            yield self.env.timeout(residual_wait)
            self.radio.transition_to(RadioState.IDLE, phase=PHASE_ACK)
            self.counters.increment("acks_missed")

        # All transmissions exhausted without an acknowledgement.
        self.counters.increment("packets_failed")
        self.transactions.append(record)

    # -- reporting ------------------------------------------------------------------------
    def average_power_w(self) -> float:
        """Average power over the node's elapsed simulation time."""
        elapsed = self.radio.time_s
        if elapsed <= 0:
            raise RuntimeError("No simulated time has elapsed for this node")
        return self.radio.ledger.total_energy_j / elapsed

    def failure_probability(self) -> float:
        """Fraction of attempted packets that were not delivered."""
        attempted = self.counters.get("packets_attempted")
        if attempted == 0:
            return 0.0
        delivered = self.counters.get("packets_delivered")
        return 1.0 - delivered / attempted
