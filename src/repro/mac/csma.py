"""Slotted CSMA/CA channel access algorithm (IEEE 802.15.4-2003, section 7.5.1.4).

The algorithm, as summarised in Section 2 of the paper:

* a node must sense the channel free **twice** in consecutive backoff slots
  before transmitting (the contention window ``CW`` counts down from 2);
* the first clear channel assessment (CCA) is delayed by a random number of
  backoff slots drawn uniformly from ``0 .. 2^BE - 1`` where ``BE`` is the
  backoff exponent (initially ``macMinBE`` = 3);
* whenever the channel is sensed busy, ``CW`` is reset to 2, the backoff
  exponent is incremented (saturating at ``aMaxBE`` = 5), the number of
  backoff attempts ``NB`` is incremented, and a fresh random delay is drawn;
* after ``NB`` exceeds ``macMaxCSMABackoffs`` the MAC reports a **channel
  access failure** (probability ``Pr_cf`` in the paper).

The paper's description ("If the latter has been incremented twice and the
channel is not sensed to be free, a transmission failure is notified") maps
to ``max_csma_backoffs = 2``; the standard default is 4.  Both are supported
via :class:`CsmaParameters`, as is the battery-life-extension mode where
``BE`` is capped at 2 and the initial backoff is shortened.

The implementation is a step-driven state machine so that

* the Monte-Carlo contention characterisation can drive thousands of nodes
  slot-by-slot against a shared channel occupancy trace, and
* the packet-level MAC simulation can drive it in event time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.mac.constants import MAC_2450MHZ, MacConstants


class BatteryLifeExtensionError(ValueError):
    """Raised when battery-life-extension parameters are inconsistent."""


@dataclass(frozen=True)
class CsmaParameters:
    """Tunable parameters of the slotted CSMA/CA algorithm.

    Attributes
    ----------
    min_be:
        Initial backoff exponent (macMinBE, default 3).
    max_be:
        Saturation value of the backoff exponent (aMaxBE, default 5).
    max_csma_backoffs:
        Number of *additional* backoff attempts allowed after the first
        before a channel access failure is declared (macMaxCSMABackoffs).
        The paper's description corresponds to 2; the standard default is 4.
    contention_window:
        Number of consecutive clear CCAs required (CW, fixed at 2 in the
        standard's slotted mode).
    battery_life_extension:
        When ``True`` the backoff exponent is capped at
        ``battery_life_extension_max_be`` (2 in the standard) — the mode the
        paper deliberately avoids in dense networks.
    battery_life_extension_max_be:
        The BE cap applied in battery-life-extension mode.
    """

    min_be: int = 3
    max_be: int = 5
    max_csma_backoffs: int = 2
    contention_window: int = 2
    battery_life_extension: bool = False
    battery_life_extension_max_be: int = 2

    def __post_init__(self):
        if self.min_be < 0 or self.max_be < self.min_be:
            raise ValueError("Backoff exponents must satisfy 0 <= min_be <= max_be")
        if self.max_csma_backoffs < 0:
            raise ValueError("max_csma_backoffs must be non-negative")
        if self.contention_window < 1:
            raise ValueError("The contention window must be at least 1")
        if self.battery_life_extension and self.battery_life_extension_max_be < 0:
            raise BatteryLifeExtensionError(
                "battery_life_extension_max_be must be non-negative")

    @classmethod
    def from_mac_constants(cls, constants: MacConstants = MAC_2450MHZ,
                           paper_convention: bool = True,
                           battery_life_extension: bool = False) -> "CsmaParameters":
        """Build parameters from :class:`MacConstants`.

        ``paper_convention`` selects the paper's "incremented twice" abort
        rule (2 extra backoffs) instead of the standard default of 4.
        """
        return cls(
            min_be=constants.min_be,
            max_be=constants.max_be,
            max_csma_backoffs=2 if paper_convention else constants.max_csma_backoffs,
            battery_life_extension=battery_life_extension,
            battery_life_extension_max_be=constants.battery_life_extension_max_be,
        )

    def initial_backoff_exponent(self) -> int:
        """BE used for the first backoff delay."""
        if self.battery_life_extension:
            return min(self.battery_life_extension_max_be, self.min_be)
        return self.min_be

    def clamp_backoff_exponent(self, be: int) -> int:
        """Apply the aMaxBE (and BLE) cap to a candidate exponent."""
        cap = self.max_be
        if self.battery_life_extension:
            cap = min(cap, self.battery_life_extension_max_be)
        return min(be, cap)


class CsmaAction(Enum):
    """What the MAC must do next, as instructed by the state machine."""

    WAIT_BACKOFF = "wait_backoff"      # wait a number of backoff slots
    PERFORM_CCA = "perform_cca"        # sense the channel for one CCA
    TRANSMIT = "transmit"              # channel clear twice: transmit now
    FAILURE = "failure"                # channel access failure reported


class CsmaOutcome(Enum):
    """Terminal outcome of one contention attempt."""

    SUCCESS = "success"
    CHANNEL_ACCESS_FAILURE = "channel_access_failure"


@dataclass
class CsmaResult:
    """Statistics of one completed contention attempt.

    Attributes
    ----------
    outcome:
        Whether the channel was acquired or a channel access failure occurred.
    backoff_slots_waited:
        Total number of backoff slots spent in random delays.
    cca_count:
        Number of clear channel assessments performed (N_CCA contributions).
    backoff_attempts:
        Number of backoff stages entered (1 for an immediately clear channel).
    duration_slots:
        Total contention duration in backoff slots (delays + CCA slots),
        i.e. the per-attempt contribution to the paper's average contention
        time T_cont.
    """

    outcome: CsmaOutcome
    backoff_slots_waited: int
    cca_count: int
    backoff_attempts: int
    duration_slots: int


class SlottedCsmaCa:
    """Step-driven slotted CSMA/CA state machine for a single frame attempt.

    Typical use::

        csma = SlottedCsmaCa(params, rng)
        action = csma.begin()
        while True:
            if action.action is CsmaAction.WAIT_BACKOFF:
                ... wait action.slots backoff periods ...
                action = csma.backoff_elapsed()
            elif action.action is CsmaAction.PERFORM_CCA:
                busy = ... sense the channel ...
                action = csma.cca_result(busy)
            elif action.action is CsmaAction.TRANSMIT:
                break   # transmit the frame aligned to the next slot boundary
            elif action.action is CsmaAction.FAILURE:
                break   # report channel access failure upwards
        result = csma.result()
    """

    @dataclass
    class Instruction:
        """One instruction issued by the state machine."""

        action: CsmaAction
        slots: int = 0

    def __init__(self, params: Optional[CsmaParameters] = None,
                 rng: Optional[np.random.Generator] = None):
        self.params = params or CsmaParameters()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._reset_state()

    def _reset_state(self) -> None:
        self._nb = 0
        self._cw = self.params.contention_window
        self._be = self.params.initial_backoff_exponent()
        self._backoff_slots_waited = 0
        self._cca_count = 0
        self._backoff_attempts = 0
        self._outcome: Optional[CsmaOutcome] = None
        self._started = False

    # -- driving the state machine ---------------------------------------------------
    def begin(self) -> "SlottedCsmaCa.Instruction":
        """Start a new contention attempt and return the first instruction."""
        self._reset_state()
        self._started = True
        return self._draw_backoff()

    def _draw_backoff(self) -> "SlottedCsmaCa.Instruction":
        self._backoff_attempts += 1
        delay = int(self.rng.integers(0, 2 ** self._be))
        self._pending_delay = delay
        self._backoff_slots_waited += delay
        return self.Instruction(CsmaAction.WAIT_BACKOFF, slots=delay)

    def backoff_elapsed(self) -> "SlottedCsmaCa.Instruction":
        """Report that the random backoff delay has elapsed."""
        self._require_started()
        return self.Instruction(CsmaAction.PERFORM_CCA)

    def cca_result(self, channel_busy: bool) -> "SlottedCsmaCa.Instruction":
        """Report the outcome of a clear channel assessment."""
        self._require_started()
        self._cca_count += 1
        if channel_busy:
            self._cw = self.params.contention_window
            self._nb += 1
            self._be = self.params.clamp_backoff_exponent(self._be + 1)
            if self._nb > self.params.max_csma_backoffs:
                self._outcome = CsmaOutcome.CHANNEL_ACCESS_FAILURE
                return self.Instruction(CsmaAction.FAILURE)
            return self._draw_backoff()
        self._cw -= 1
        if self._cw > 0:
            return self.Instruction(CsmaAction.PERFORM_CCA)
        self._outcome = CsmaOutcome.SUCCESS
        return self.Instruction(CsmaAction.TRANSMIT)

    # -- results --------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the attempt has reached a terminal state."""
        return self._outcome is not None

    def result(self) -> CsmaResult:
        """The statistics of the completed attempt.

        Raises
        ------
        RuntimeError
            If the attempt has not finished yet.
        """
        if self._outcome is None:
            raise RuntimeError("The contention attempt has not finished")
        # Every CCA occupies one backoff slot boundary (8 symbols of sensing
        # within a 20-symbol slot); the contention duration in slots is the
        # sum of the random delays plus one slot per CCA performed.
        duration = self._backoff_slots_waited + self._cca_count
        return CsmaResult(
            outcome=self._outcome,
            backoff_slots_waited=self._backoff_slots_waited,
            cca_count=self._cca_count,
            backoff_attempts=self._backoff_attempts,
            duration_slots=duration,
        )

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("begin() must be called before driving the "
                               "state machine")


def expected_initial_backoff_slots(params: Optional[CsmaParameters] = None) -> float:
    """Mean of the first random backoff delay, in backoff slots.

    With ``macMinBE`` = 3 the first delay is uniform on 0..7, mean 3.5 slots
    (1.12 ms at 2450 MHz) — a useful sanity bound for the contention time at
    vanishing load.
    """
    params = params or CsmaParameters()
    be = params.initial_backoff_exponent()
    return (2 ** be - 1) / 2.0
