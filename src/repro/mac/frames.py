"""MAC frame formats and byte-accurate overhead accounting.

The paper's equation (3) writes the packet airtime as ``(L_o + L) x T_B``
with a total PHY+MAC overhead of ``L_o = 13`` bytes when short (16-bit)
addresses are used:

=====================  =====
Field                  Bytes
=====================  =====
PHY preamble           4
PHY start-of-frame     1
PHY length field       1
MAC frame control      2
MAC sequence number    1
MAC addressing         2 (short destination address, PAN-ID compressed)
MAC frame check (FCS)  2
=====================  =====
Total                  13

(The paper's Figure 5 quotes the addressing field as "4 to 20" bytes and the
text says "short (4 byte) addresses", yet its stated total is L_o = 13,
which corresponds to 2 bytes of addressing information on top of frame
control, sequence number and FCS — a destination short address with PAN-ID
compression.  The accounting here is parameterised by an
:class:`AddressingMode` so richer conventions — both short addresses, or
full 64-bit addressing — are also available; the default reproduces the
paper's L_o = 13.)

Frame classes model beacon, data and acknowledgement frames with their real
sizes so the packet-level simulation and the analytical model use exactly
the same byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

from repro.phy.constants import MAX_PHY_PACKET_SIZE_BYTES
from repro.phy.frame import PHY_HEADER_BYTES

#: MAC frame control field size.
FRAME_CONTROL_BYTES = 2
#: MAC sequence number size.
SEQUENCE_NUMBER_BYTES = 1
#: Frame check sequence (CRC-16) size.
FCS_BYTES = 2
#: Acknowledgement frame MPDU size (frame control + sequence + FCS).
ACK_MPDU_BYTES = FRAME_CONTROL_BYTES + SEQUENCE_NUMBER_BYTES + FCS_BYTES


class FrameType(Enum):
    """MAC frame types of the standard."""

    BEACON = 0
    DATA = 1
    ACK = 2
    COMMAND = 3


class AddressingMode(Enum):
    """Addressing conventions with their header byte cost.

    ``PAPER_SHORT``
        The paper's accounting: 2 bytes of addressing information
        (destination short address, PAN-ID compressed), leading to the
        quoted L_o = 13 total overhead.
    ``SHORT``
        Destination and source short addresses plus the destination PAN
        identifier (2 + 2 + 2 = 6 bytes).
    ``EXTENDED``
        Full 64-bit source and destination addresses plus both PAN
        identifiers (20 bytes) — the "4 to 20" upper bound of Figure 5.
    """

    PAPER_SHORT = 2
    SHORT = 6
    EXTENDED = 20

    @property
    def addressing_bytes(self) -> int:
        """Bytes occupied by the addressing fields."""
        return self.value


def mac_overhead_bytes(addressing: AddressingMode = AddressingMode.PAPER_SHORT) -> int:
    """MAC header + footer bytes for a data frame (no payload)."""
    return (FRAME_CONTROL_BYTES + SEQUENCE_NUMBER_BYTES
            + addressing.addressing_bytes + FCS_BYTES)


def total_packet_overhead_bytes(
        addressing: AddressingMode = AddressingMode.PAPER_SHORT) -> int:
    """L_o of equation (3): PHY header + MAC overhead.

    With the paper's addressing convention this evaluates to 13.
    """
    return PHY_HEADER_BYTES + mac_overhead_bytes(addressing)


def max_payload_bytes(addressing: AddressingMode = AddressingMode.PAPER_SHORT) -> int:
    """Largest MAC payload that fits in aMaxPHYPacketSize."""
    return MAX_PHY_PACKET_SIZE_BYTES - mac_overhead_bytes(addressing)


@dataclass
class MacFrame:
    """Base class of all MAC frames.

    Attributes
    ----------
    frame_type:
        Beacon / data / ack / command.
    sequence_number:
        Data sequence number (0..255).
    source / destination:
        Node identifiers (integers; ``None`` when the field is elided).
    ack_request:
        Whether the receiver must acknowledge the frame.
    addressing:
        Addressing convention used for size accounting.
    """

    frame_type: FrameType = FrameType.DATA
    sequence_number: int = 0
    source: Optional[int] = None
    destination: Optional[int] = None
    ack_request: bool = False
    addressing: AddressingMode = AddressingMode.PAPER_SHORT

    def __post_init__(self):
        if not 0 <= self.sequence_number <= 255:
            raise ValueError("Sequence number must fit in one byte")

    @property
    def payload_bytes(self) -> int:
        """MAC payload size; overridden by concrete frame classes."""
        return 0

    @property
    def mpdu_bytes(self) -> int:
        """MAC protocol data unit size (header + payload + FCS)."""
        return mac_overhead_bytes(self.addressing) + self.payload_bytes

    @property
    def ppdu_bytes(self) -> int:
        """Full on-air size including the PHY header (L_o + L of the paper)."""
        return PHY_HEADER_BYTES + self.mpdu_bytes

    def airtime_s(self, byte_period_s: float = 32e-6) -> float:
        """Airtime of the frame (equation 3)."""
        return self.ppdu_bytes * byte_period_s


@dataclass
class BeaconFrame(MacFrame):
    """Network beacon sent by the coordinator at each superframe start.

    Attributes
    ----------
    beacon_order / superframe_order:
        The BO / SO values advertised in the superframe specification.
    gts_descriptors:
        Number of GTS descriptors carried (each costs 3 bytes).
    pending_short_addresses:
        Short addresses with pending indirect data (2 bytes each).
    beacon_payload_bytes:
        Application-specific beacon payload.
    """

    beacon_order: int = 6
    superframe_order: int = 6
    gts_descriptors: int = 0
    pending_short_addresses: Sequence[int] = field(default_factory=tuple)
    beacon_payload_bytes: int = 0

    def __post_init__(self):
        super().__post_init__()
        self.frame_type = FrameType.BEACON
        if self.gts_descriptors < 0 or self.beacon_payload_bytes < 0:
            raise ValueError("Beacon field sizes must be non-negative")

    @property
    def payload_bytes(self) -> int:
        """Superframe spec (2) + GTS fields (1 + 3/descriptor) + pending
        address fields (1 + 2/address) + application payload."""
        gts_bytes = 1 + 3 * self.gts_descriptors
        pending_bytes = 1 + 2 * len(tuple(self.pending_short_addresses))
        return 2 + gts_bytes + pending_bytes + self.beacon_payload_bytes


@dataclass
class DataFrame(MacFrame):
    """A data frame carrying ``payload`` application bytes."""

    payload: bytes = b""

    def __post_init__(self):
        super().__post_init__()
        self.frame_type = FrameType.DATA
        if self.mpdu_bytes > MAX_PHY_PACKET_SIZE_BYTES:
            raise ValueError(
                f"Data frame MPDU of {self.mpdu_bytes} bytes exceeds "
                f"aMaxPHYPacketSize ({MAX_PHY_PACKET_SIZE_BYTES})")

    @property
    def payload_bytes(self) -> int:
        """Application payload size L."""
        return len(self.payload)


@dataclass
class AckFrame(MacFrame):
    """An acknowledgement frame (fixed 5-byte MPDU, 11 bytes on air)."""

    def __post_init__(self):
        super().__post_init__()
        self.frame_type = FrameType.ACK
        self.ack_request = False

    @property
    def payload_bytes(self) -> int:
        """Acks carry no payload."""
        return 0

    @property
    def mpdu_bytes(self) -> int:
        """Acks have no addressing fields: 2 + 1 + 2 = 5 bytes."""
        return ACK_MPDU_BYTES
