"""Indirect (downlink) transmission queue.

In a beacon-enabled star network the coordinator does not transmit downlink
data immediately: it announces pending data in the beacon's pending-address
list, and the destination device extracts it with a data-request command
(Figure 1b of the paper).  The paper only *models* the uplink, but the
downlink mechanism is part of the substrate: the packet-level simulation
uses it for completeness and the beacon size accounting depends on the
number of pending addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Maximum entries a coordinator must be able to buffer
#: (macTransactionPersistenceTime applies per entry; size limit is
#: implementation-defined, 7 pending addresses fit in one beacon).
MAX_PENDING_ADDRESSES_PER_BEACON = 7


@dataclass
class PendingTransaction:
    """One buffered downlink frame awaiting extraction.

    Attributes
    ----------
    destination:
        Short address of the destination device.
    payload:
        Application payload bytes.
    enqueued_at_s:
        Simulation time at which the frame entered the queue.
    persistence_s:
        How long the coordinator keeps the frame before discarding it
        (macTransactionPersistenceTime converted to seconds).
    """

    destination: int
    payload: bytes
    enqueued_at_s: float
    persistence_s: float

    def expired(self, now_s: float) -> bool:
        """Whether the transaction has outlived its persistence time."""
        return now_s - self.enqueued_at_s > self.persistence_s


class IndirectQueue:
    """Coordinator-side queue of pending downlink transactions."""

    def __init__(self, persistence_s: float = 7.68):
        # Default: macTransactionPersistenceTime = 0x01F4 unit periods at
        # BO=6 is large; 7.68 s (500 x 15.36 ms) is the standard default
        # expressed in seconds for BO = 0 scaled conservatively.
        self.persistence_s = persistence_s
        self._queue: List[PendingTransaction] = []

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, destination: int, payload: bytes, now_s: float) -> PendingTransaction:
        """Buffer a downlink frame for ``destination``."""
        transaction = PendingTransaction(
            destination=destination,
            payload=payload,
            enqueued_at_s=now_s,
            persistence_s=self.persistence_s,
        )
        self._queue.append(transaction)
        return transaction

    def purge_expired(self, now_s: float) -> List[PendingTransaction]:
        """Drop and return every transaction past its persistence time."""
        expired = [t for t in self._queue if t.expired(now_s)]
        self._queue = [t for t in self._queue if not t.expired(now_s)]
        return expired

    def pending_addresses(self, limit: int = MAX_PENDING_ADDRESSES_PER_BEACON) -> List[int]:
        """Destination addresses to advertise in the next beacon (FIFO order,
        deduplicated, truncated to the beacon capacity)."""
        seen: Dict[int, None] = {}
        for transaction in self._queue:
            if transaction.destination not in seen:
                seen[transaction.destination] = None
            if len(seen) >= limit:
                break
        return list(seen.keys())

    def has_pending(self, destination: int) -> bool:
        """Whether any frame is buffered for ``destination``."""
        return any(t.destination == destination for t in self._queue)

    def extract(self, destination: int) -> Optional[PendingTransaction]:
        """Pop the oldest pending frame for ``destination`` (data request)."""
        for index, transaction in enumerate(self._queue):
            if transaction.destination == destination:
                return self._queue.pop(index)
        return None
