"""Superframe structure of the beacon-enabled mode (Figure 2 of the paper).

A superframe starts with the beacon, contains 16 equally sized slots, and is
split into a contention access period (CAP, slotted CSMA/CA) and an optional
contention-free period (CFP) made of guaranteed time slots at the tail.  The
inter-beacon period is ``aBaseSuperframeDuration x 2^BO`` (equation 12);
the active portion lasts ``aBaseSuperframeDuration x 2^SO`` with SO <= BO.
When SO < BO the coordinator and all devices may sleep between the end of
the active portion and the next beacon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.mac.constants import MAC_2450MHZ, MacConstants
from repro.mac.gts import GtsDescriptor


@dataclass(frozen=True)
class SuperframeConfig:
    """Static configuration of the superframe structure.

    Attributes
    ----------
    beacon_order:
        BO; the inter-beacon period is T_ib_min x 2^BO.
    superframe_order:
        SO <= BO; duration of the active portion.
    constants:
        MAC constants (default: 2450 MHz PHY).
    """

    beacon_order: int = 6
    superframe_order: int = 6
    constants: MacConstants = field(default=MAC_2450MHZ)

    def __post_init__(self):
        self.constants.validate_beacon_order(self.beacon_order)
        self.constants.validate_beacon_order(self.superframe_order)
        if self.superframe_order > self.beacon_order:
            raise ValueError(
                f"Superframe order ({self.superframe_order}) must not exceed "
                f"beacon order ({self.beacon_order})")

    @property
    def beacon_interval_s(self) -> float:
        """Inter-beacon period T_ib (equation 12)."""
        return self.constants.beacon_interval_s(self.beacon_order)

    @property
    def superframe_duration_s(self) -> float:
        """Duration of the active portion."""
        return self.constants.superframe_duration_s(self.superframe_order)

    @property
    def slot_duration_s(self) -> float:
        """Duration of one of the 16 superframe slots."""
        return self.constants.slot_duration_s(self.superframe_order)

    @property
    def inactive_duration_s(self) -> float:
        """Time between the end of the active portion and the next beacon."""
        return self.beacon_interval_s - self.superframe_duration_s

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the superframe is active (1.0 when SO == BO)."""
        return self.superframe_duration_s / self.beacon_interval_s

    @property
    def backoff_slots_per_superframe(self) -> int:
        """Number of CSMA/CA backoff slots in the active portion."""
        return int(round(self.superframe_duration_s
                         / self.constants.unit_backoff_period_s))

    def offered_load(self, nodes: int, payload_bytes: int,
                     packets_per_node_per_beacon: float = 1.0) -> float:
        """Aggregate network load λ relative to the channel gross rate.

        λ = (nodes x packets x payload bits) / (T_ib x bit rate).
        """
        if nodes < 0 or payload_bytes < 0 or packets_per_node_per_beacon < 0:
            raise ValueError("Load inputs must be non-negative")
        bits = nodes * packets_per_node_per_beacon * payload_bytes * 8
        return bits / (self.beacon_interval_s * self.constants.timing.bit_rate_bps)


class Superframe:
    """One concrete superframe instance anchored at a beacon time.

    Combines the static :class:`SuperframeConfig` with the GTS allocation
    advertised in this particular beacon, and answers slot-geometry queries
    (which CSMA backoff slots belong to the CAP, when the CFP starts, ...).
    """

    def __init__(self, config: SuperframeConfig, beacon_time_s: float = 0.0,
                 gts_descriptors: Optional[List[GtsDescriptor]] = None,
                 beacon_airtime_s: float = 0.0):
        self.config = config
        self.beacon_time_s = beacon_time_s
        self.gts_descriptors = list(gts_descriptors or [])
        self.beacon_airtime_s = beacon_airtime_s
        total_gts_slots = sum(d.length_slots for d in self.gts_descriptors)
        if total_gts_slots > self.config.constants.num_superframe_slots - 1:
            raise ValueError("GTS allocation leaves no contention access period")
        self._cfp_slots = total_gts_slots

    # -- boundaries -----------------------------------------------------------------
    @property
    def end_time_s(self) -> float:
        """Time of the next beacon."""
        return self.beacon_time_s + self.config.beacon_interval_s

    @property
    def active_end_time_s(self) -> float:
        """End of the active portion."""
        return self.beacon_time_s + self.config.superframe_duration_s

    @property
    def cap_start_time_s(self) -> float:
        """Start of the contention access period (right after the beacon)."""
        return self.beacon_time_s + self.beacon_airtime_s

    @property
    def cfp_start_time_s(self) -> float:
        """Start of the contention-free period (end of CAP)."""
        return self.active_end_time_s - self._cfp_slots * self.config.slot_duration_s

    @property
    def cap_duration_s(self) -> float:
        """Duration of the contention access period."""
        return self.cfp_start_time_s - self.cap_start_time_s

    @property
    def cap_backoff_slots(self) -> int:
        """Number of whole CSMA backoff slots that fit in the CAP."""
        return int(self.cap_duration_s
                   // self.config.constants.unit_backoff_period_s)

    # -- queries -----------------------------------------------------------------------
    def contains(self, time_s: float) -> bool:
        """Whether ``time_s`` falls within this superframe's beacon interval."""
        return self.beacon_time_s <= time_s < self.end_time_s

    def in_cap(self, time_s: float) -> bool:
        """Whether ``time_s`` falls in the contention access period."""
        return self.cap_start_time_s <= time_s < self.cfp_start_time_s

    def in_cfp(self, time_s: float) -> bool:
        """Whether ``time_s`` falls in the contention-free period."""
        return self.cfp_start_time_s <= time_s < self.active_end_time_s

    def in_inactive(self, time_s: float) -> bool:
        """Whether ``time_s`` falls in the inactive portion."""
        return self.active_end_time_s <= time_s < self.end_time_s

    def backoff_slot_boundary_after(self, time_s: float) -> float:
        """First CSMA backoff-slot boundary at or after ``time_s``.

        Slot boundaries are anchored at the start of the CAP, as required by
        the slotted CSMA/CA algorithm.
        """
        period = self.config.constants.unit_backoff_period_s
        if time_s <= self.cap_start_time_s:
            return self.cap_start_time_s
        offset = time_s - self.cap_start_time_s
        slots = int(offset / period)
        if abs(offset - slots * period) < 1e-12:
            return self.cap_start_time_s + slots * period
        return self.cap_start_time_s + (slots + 1) * period

    def transaction_fits_in_cap(self, start_time_s: float,
                                transaction_duration_s: float) -> bool:
        """Whether a transaction starting at ``start_time_s`` ends before the CFP."""
        return start_time_s + transaction_duration_s <= self.cfp_start_time_s

    def next(self) -> "Superframe":
        """The superframe following this one (same config, no GTS carry-over)."""
        return Superframe(self.config, beacon_time_s=self.end_time_s,
                          beacon_airtime_s=self.beacon_airtime_s)
