"""Shared wireless medium for the packet-level MAC simulation.

One :class:`Medium` instance models one RF channel of the star network: it
tracks ongoing transmissions so that

* clear channel assessments see the channel busy while any frame is on air,
* two overlapping data frames collide (both are lost — the paper's residual
  collision probability Pr_col), and
* a frame that does not collide can still be corrupted by bit errors,
  decided by the per-link AWGN model.

The coordinator is assumed to hear every node (single-hop star, all nodes
within range), so capture effects are not modelled: any overlap destroys
both frames, which is the same worst-case convention as the paper's
Monte-Carlo contention characterisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.sim.engine import Environment


@dataclass
class Transmission:
    """One frame currently (or previously) on the air."""

    source: int
    start_s: float
    end_s: float
    frame: object
    tx_power_dbm: float
    collided: bool = False

    def overlaps(self, other: "Transmission") -> bool:
        """Whether two transmissions overlap in time."""
        return self.start_s < other.end_s and other.start_s < self.end_s


class Medium:
    """A single half-duplex broadcast channel.

    Parameters
    ----------
    env:
        Simulation environment providing the clock.
    channel:
        RF channel number (informational).
    """

    def __init__(self, env: Environment, channel: int = 11):
        self.env = env
        self.channel = channel
        self._active: List[Transmission] = []
        self._history: List[Transmission] = []
        self.collision_count = 0
        self.transmission_count = 0

    # -- channel state ----------------------------------------------------------
    def is_busy(self, at_time_s: Optional[float] = None) -> bool:
        """Whether any transmission is on air at ``at_time_s`` (default: now)."""
        now = self.env.now if at_time_s is None else at_time_s
        self._expire(now)
        return any(t.start_s <= now < t.end_s for t in self._active)

    def busy_until(self) -> float:
        """Latest end time of the currently active transmissions (or now)."""
        self._expire(self.env.now)
        if not self._active:
            return self.env.now
        return max(t.end_s for t in self._active)

    def _expire(self, now: float) -> None:
        still_active = []
        for transmission in self._active:
            if transmission.end_s <= now:
                self._history.append(transmission)
            else:
                still_active.append(transmission)
        self._active = still_active

    # -- transmissions --------------------------------------------------------------
    def start_transmission(self, source: int, duration_s: float, frame: object,
                           tx_power_dbm: float) -> Transmission:
        """Register a frame going on air now; collisions are marked eagerly."""
        now = self.env.now
        self._expire(now)
        transmission = Transmission(
            source=source,
            start_s=now,
            end_s=now + duration_s,
            frame=frame,
            tx_power_dbm=tx_power_dbm,
        )
        for other in self._active:
            if other.overlaps(transmission):
                if not other.collided:
                    other.collided = True
                if not transmission.collided:
                    transmission.collided = True
        if transmission.collided:
            self.collision_count += 1
        self._active.append(transmission)
        self.transmission_count += 1
        return transmission

    @property
    def history(self) -> List[Transmission]:
        """Completed transmissions (for post-run statistics)."""
        self._expire(self.env.now)
        return list(self._history) + list(self._active)
