"""IEEE 802.15.4 medium access control layer (beacon-enabled star network).

The MAC substrate implements what the paper's scenario relies on:

* superframe structure (beacon order / superframe order, 16 slots,
  contention access period, contention-free period with GTS)
  — :mod:`repro.mac.superframe`;
* MAC frame formats with the byte-accurate overhead accounting used in
  equation (3) (frame control, sequence number, addressing, FCS)
  — :mod:`repro.mac.frames`;
* the slotted CSMA/CA algorithm with its backoff exponent, contention
  window and channel-access-failure reporting, including the optional
  battery-life-extension mode — :mod:`repro.mac.csma`;
* guaranteed time slot (GTS) management — :mod:`repro.mac.gts`;
* indirect (downlink) transmission queue — :mod:`repro.mac.indirect`;
* node-side and coordinator-side MAC entities tying everything together on
  top of the discrete-event kernel, used for packet-level validation of the
  analytical model — :mod:`repro.mac.device`, :mod:`repro.mac.coordinator`.
"""

from repro.mac.commands import (
    AssociationService,
    AssociationStatus,
    CommandFrame,
    CommandType,
)
from repro.mac.constants import MacConstants, MAC_2450MHZ
from repro.mac.csma import (
    BatteryLifeExtensionError,
    CsmaParameters,
    CsmaResult,
    CsmaOutcome,
    SlottedCsmaCa,
)
from repro.mac.frames import (
    AckFrame,
    AddressingMode,
    BeaconFrame,
    DataFrame,
    MacFrame,
    mac_overhead_bytes,
    total_packet_overhead_bytes,
)
from repro.mac.gts import GtsDescriptor, GtsManager
from repro.mac.indirect import IndirectQueue, PendingTransaction
from repro.mac.superframe import Superframe, SuperframeConfig
from repro.mac.vectorized import VectorizedChannelSimulator

__all__ = [
    "AssociationService",
    "AssociationStatus",
    "CommandFrame",
    "CommandType",
    "MacConstants",
    "MAC_2450MHZ",
    "CsmaParameters",
    "CsmaResult",
    "CsmaOutcome",
    "SlottedCsmaCa",
    "BatteryLifeExtensionError",
    "MacFrame",
    "BeaconFrame",
    "DataFrame",
    "AckFrame",
    "AddressingMode",
    "mac_overhead_bytes",
    "total_packet_overhead_bytes",
    "GtsDescriptor",
    "GtsManager",
    "IndirectQueue",
    "PendingTransaction",
    "Superframe",
    "SuperframeConfig",
    "VectorizedChannelSimulator",
]
