"""MAC sublayer constants of IEEE 802.15.4-2003.

The values are the standard's ``a``-prefixed constants and the default PIB
attributes, specialised to the 2450 MHz PHY where durations in symbols are
converted to seconds.  The paper's model parameters map onto them as:

* ``T_slot = 20 T_S``           -> ``aUnitBackoffPeriod``
* ``t-ack = 192 us``            -> ``aTurnaroundTime``
* ``t+ack = 864 us``            -> ``macAckWaitDuration``
* ``T_ib_min = 15.36 ms``       -> ``aBaseSuperframeDuration``
* backoff exponent range 3..5   -> ``macMinBE`` .. ``aMaxBE``
* at most 2 BE increments       -> ``macMaxCSMABackoffs = 4`` in the standard,
  but the paper describes the procedure aborting after the exponent "has been
  incremented twice", i.e. 3 backoff attempts; both are supported through
  :class:`repro.mac.csma.CsmaParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.constants import PhyTiming, TIMING_2450MHZ


@dataclass(frozen=True)
class MacConstants:
    """MAC constants bound to one PHY timing option.

    Attributes
    ----------
    timing:
        The underlying PHY timing (symbol period, byte period, ...).
    base_slot_duration_symbols:
        ``aBaseSlotDuration``: symbols in one superframe slot at SO = 0.
    num_superframe_slots:
        ``aNumSuperframeSlots``: slots per superframe (16).
    unit_backoff_period_symbols:
        ``aUnitBackoffPeriod``: CSMA/CA backoff slot length in symbols (20).
    turnaround_time_symbols:
        ``aTurnaroundTime``: RX/TX turnaround (12 symbols = 192 µs).
    ack_wait_duration_symbols:
        ``macAckWaitDuration``: maximum wait for an ACK (54 symbols = 864 µs).
    min_be / max_be:
        Default backoff exponent range (3..5).
    max_csma_backoffs:
        ``macMaxCSMABackoffs``: CCA failures tolerated before reporting a
        channel access failure.
    max_frame_retries:
        ``aMaxFrameRetries``: retransmissions after a missed ACK (the paper
        limits total transmissions to N_max = 5, i.e. 4 retries).
    battery_life_extension_max_be:
        Cap on the backoff exponent when battery-life extension is enabled.
    max_beacon_order:
        Largest allowed beacon order (15 disables beacons entirely).
    """

    timing: PhyTiming = TIMING_2450MHZ
    base_slot_duration_symbols: int = 60
    num_superframe_slots: int = 16
    unit_backoff_period_symbols: int = 20
    turnaround_time_symbols: int = 12
    ack_wait_duration_symbols: int = 54
    min_be: int = 3
    max_be: int = 5
    max_csma_backoffs: int = 4
    max_frame_retries: int = 4
    battery_life_extension_max_be: int = 2
    max_beacon_order: int = 15

    # -- derived durations -------------------------------------------------------
    @property
    def symbol_period_s(self) -> float:
        """Symbol period of the bound PHY."""
        return self.timing.symbol_period_s

    @property
    def base_superframe_duration_symbols(self) -> int:
        """``aBaseSuperframeDuration`` = slots x slot duration (960 symbols)."""
        return self.base_slot_duration_symbols * self.num_superframe_slots

    @property
    def base_superframe_duration_s(self) -> float:
        """Minimum inter-beacon period T_ib_min (15.36 ms at 2450 MHz)."""
        return self.base_superframe_duration_symbols * self.symbol_period_s

    @property
    def unit_backoff_period_s(self) -> float:
        """CSMA/CA backoff slot duration (T_slot = 320 µs at 2450 MHz)."""
        return self.unit_backoff_period_symbols * self.symbol_period_s

    @property
    def turnaround_time_s(self) -> float:
        """t-ack: minimum delay before the acknowledgement (192 µs)."""
        return self.turnaround_time_symbols * self.symbol_period_s

    @property
    def ack_wait_duration_s(self) -> float:
        """t+ack: maximum time spent waiting for an acknowledgement (864 µs)."""
        return self.ack_wait_duration_symbols * self.symbol_period_s

    @property
    def max_transmissions(self) -> int:
        """N_max of the paper: initial transmission plus retries."""
        return self.max_frame_retries + 1

    # -- superframe timing ---------------------------------------------------------
    def beacon_interval_s(self, beacon_order: int) -> float:
        """Inter-beacon period for a beacon order BO (equation 12)."""
        self.validate_beacon_order(beacon_order)
        return self.base_superframe_duration_s * (2 ** beacon_order)

    def superframe_duration_s(self, superframe_order: int) -> float:
        """Active superframe duration for a superframe order SO."""
        self.validate_beacon_order(superframe_order)
        return self.base_superframe_duration_s * (2 ** superframe_order)

    def slot_duration_s(self, superframe_order: int) -> float:
        """Duration of one of the 16 superframe slots at order SO."""
        return self.superframe_duration_s(superframe_order) / self.num_superframe_slots

    def validate_beacon_order(self, order: int) -> None:
        """Raise :class:`ValueError` if ``order`` is outside 0..14.

        (Order 15 means "no beacons"; the paper always operates in beacon
        mode so 15 is rejected here and handled explicitly by callers that
        support beaconless operation.)
        """
        if not 0 <= order <= self.max_beacon_order - 1:
            raise ValueError(
                f"Beacon/superframe order must lie in 0..{self.max_beacon_order - 1}, "
                f"got {order}")


#: MAC constants bound to the 2450 MHz PHY (the configuration of the paper).
MAC_2450MHZ = MacConstants()
