"""Batched lockstep fast path for the packet-level channel simulation.

The event-driven kernel (:mod:`repro.mac.device` on :mod:`repro.sim.engine`)
spends most of its time on generator resumes, event objects and per-charge
ledger records — fine for a 10-node validation channel, prohibitive for the
paper's full 100-nodes-per-channel case study.  This module simulates the
same uplink protocol with the device axis spanning **all channels × all
replications at once**:

* each independent single-channel simulation is a *lane*
  (:class:`ChannelLane`: nodes, resolved transmit levels, master seed); the
  batched kernel lays every lane's per-device MAC state (backoff exponent
  ``BE``, backoff stage ``NB``, contention window ``CW``, attempt counter)
  into flat lane-major arrays,
* each beacon interval is one *round*: the deterministic stretch from the
  pre-beacon wake-up through stagger and first backoff is advanced for every
  device of every lane in a handful of numpy passes, and only the
  interaction points — clear-channel-assessment samples — are replayed by a
  compact per-lane event merge carrying the device's flat batch index,
* the whole radio energy ledger is deferred to one numpy reduction at the
  end: each charge class (CCA, transmission, acknowledgement wait, ...) has
  a fixed energy/duration, so per-device counts and dwell-time sums
  reproduce the :class:`repro.radio.cc2420.EnergyLedger` totals exactly.

Equivalence contract
--------------------
For the same scenario and master seed each lane consumes the *same named
random streams in the same order* as the event-driven kernel
(``device[<id>]`` for stagger and backoff draws, ``coordinator`` for packet
corruption draws, ``traffic[<id>]`` for per-node packet arrivals, see
:class:`repro.sim.random.RandomStreams`) and applies the same timing rules
(CCA sampled at the end of its slot, traffic polled at the superframe
boundary, deferral checks against the contention access period, the
``run(until=horizon)`` event cut-off).  Delivery / failure / attempt counts
are therefore *identical* to the event kernel's — and identical whether a
lane runs alone or batched with fifteen others — and energies agree to
float-summation-order precision.  This is asserted by the cross-validation
matrix in ``tests/mac/test_vectorized.py``.

To batch the variate draws, the kernel replays each stream's raw
``uint64`` output (``BitGenerator.random_raw``) and applies numpy's own
bounded-integer / uniform transformations:

* ``Generator.integers(0, 2**be)`` is Lemire's method on the buffered
  32-bit path — the next ``uint32`` is the low half of a fresh ``uint64``
  (the high half is buffered for the following call) and the value is
  ``u32 >> (32 - be)``; a range of one consumes nothing,
* ``Generator.uniform(a, b)`` / ``Generator.random()`` consume one whole
  ``uint64`` (bypassing, not clearing, the 32-bit buffer) and map it to
  ``(u64 >> 11) * 2**-53``.

These identities are checked against the running numpy at first use
(:func:`raw_streams_compatible`); if numpy ever changes its bit-stream
consumption — or ``REPRO_MAC_COMPAT`` is set — the kernel transparently
falls back to :func:`_simulate_lane_reference`, the retained per-lane
scalar implementation, which trades speed for independence from the
raw-stream identities.

Known departure: within a lane, simultaneous events are ordered by device
index, while the event kernel orders them by scheduling sequence.  Exact
float-time ties between distinct devices require the continuous stagger
draw to be degenerate (``latest_start <= arrival + wake_lead``), which no
paper or test configuration produces; staggered starts make ties a
measure-zero event.

Scope: the uplink transaction cycle of the paper's activation policy
(Figure 5) with staggered transaction starts — the configuration
:class:`repro.network.scenario.ChannelScenario` uses.  Downlink (indirect
transmission) and GTS traffic are not modelled on the fast path; scenarios
needing them must use the event-driven backend.  Collisions cannot occur
under this policy (a transmission starts only when the second CCA found the
channel clear, which implies no frame is on the air), so the batched kernel
reports ``collisions == 0`` without tracking the medium per device pair.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from heapq import heappop, heappush
from time import perf_counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mac.constants import MAC_2450MHZ, MacConstants
from repro.mac.csma import CsmaParameters
from repro.mac.device import (PHASE_ACK, PHASE_BEACON, PHASE_CONTENTION,
                              PHASE_SLEEP, PHASE_TRANSMIT)
from repro.mac.frames import AckFrame, BeaconFrame, DataFrame
from repro.mac.superframe import SuperframeConfig
from repro.obs.tracer import current_tracer
from repro.radio.power_profile import (CC2420_PROFILE, RadioPowerProfile,
                                       T_SHUTDOWN_TO_IDLE_POLICY_S)
from repro.radio.states import RadioState
from repro.sim.random import RandomStreams

#: Event kinds of the reference implementation's compact queue.
_EVENT_CCA_SAMPLE = 0
_EVENT_TX_END = 1

#: Environment variable forcing the per-lane reference implementation.
COMPAT_ENV = "REPRO_MAC_COMPAT"

#: ``2**-53`` — the constant numpy's ``next_double`` scales by.
_U53 = 1.0 / 9007199254740992.0

#: Raw ``uint64`` words buffered per device stream between refills.
_RAW_CHUNK = 192

#: Cached result of :func:`raw_streams_compatible`.
_raw_compat: Optional[bool] = None


@dataclass(frozen=True)
class ChannelLane:
    """One independent single-channel simulation of a batched run.

    A lane is what :class:`repro.network.scenario.ChannelScenario` hands the
    single-channel fast path: the channel's nodes, the *resolved* transmit
    level per node (link adaptation / default resolution happens in the
    caller) and the master seed of the lane's random streams.  Lanes of one
    batch share the superframe configuration, MAC constants, payload and
    traffic model — the paper's fan-out varies only channel membership and
    seed — but are otherwise fully independent: distinct channels, distinct
    Monte-Carlo replications of one channel, or any mix.

    ``tree`` is the lane's sink tree
    (:class:`repro.network.routing.SinkTree`) when the channel is routed:
    relays then offer forwarding-augmented traffic and the lane's summary
    carries a per-hop-depth breakdown.  ``None`` — the default — is the
    classic star, byte-identical to the pre-routing kernel.
    """

    nodes: Sequence
    tx_levels_dbm: Sequence[float]
    seed: int
    tree: Optional[object] = None


def _beacon_airtime_s(config: SuperframeConfig,
                      constants: MacConstants) -> float:
    beacon = BeaconFrame(source=0, sequence_number=1,
                         beacon_order=config.beacon_order,
                         superframe_order=config.superframe_order,
                         gts_descriptors=0,
                         pending_short_addresses=())
    return beacon.airtime_s(constants.timing.byte_period_s)


def _make_data_frame(payload_bytes: int) -> DataFrame:
    return DataFrame(source=1, destination=0, sequence_number=1,
                     ack_request=True, payload=bytes(payload_bytes))


# ---------------------------------------------------------------------------
# raw-stream compatibility probe
# ---------------------------------------------------------------------------

def _device_bit_generator(master_seed: Optional[int],
                          name: str) -> np.random.BitGenerator:
    """The bit generator behind ``RandomStreams(master_seed).get(name)``."""
    from repro.sim.random import _name_to_entropy
    seed_seq = np.random.SeedSequence(entropy=master_seed,
                                      spawn_key=(_name_to_entropy(name),))
    return np.random.default_rng(seed_seq).bit_generator


#: Freshly-seeded PCG64 states keyed by ``(master_seed, stream_entropy)``.
#: SeedSequence hashing plus PCG64 seeding dominate the batched kernel's
#: setup at paper scale (~15 us x 1600 devices), and callers — the bench
#: harness, replication fan-outs, the test matrix — re-run identical seeds
#: back to back; restoring a cached state costs half a fresh construction.
_pcg_states: Dict = {}
_PCG_STATE_CACHE_MAX = 65536
_pcg_template: Optional[np.random.SeedSequence] = None

#: ``device[<id>]`` stream-name entropies keyed by node id — the name
#: hash is pure, and the same node ids recur in every lane and run.
_device_entropies: Dict[int, int] = {}


def _seeded_pcg64(master_seed: int, entropy: int) -> np.random.PCG64:
    """``PCG64(SeedSequence(master_seed, spawn_key=(entropy,)))``, cached."""
    global _pcg_template
    key = (master_seed, entropy)
    state = _pcg_states.get(key)
    if state is None:
        generator = np.random.PCG64(np.random.SeedSequence(
            entropy=master_seed, spawn_key=(entropy,)))
        if len(_pcg_states) < _PCG_STATE_CACHE_MAX:
            _pcg_states[key] = generator.state
        return generator
    if _pcg_template is None:
        _pcg_template = np.random.SeedSequence(0)
    generator = np.random.PCG64(_pcg_template)
    generator.state = state
    return generator


def _probe_matches(real: np.random.Generator,
                   raw: np.random.BitGenerator) -> bool:
    """Whether raw-stream replay reproduces ``real``'s variates exactly.

    ``real`` and ``raw`` must wrap identically seeded bit generators; the
    probe interleaves the three draw shapes the kernel emulates (bounded
    power-of-two integers on the buffered 32-bit path, uniform and unit
    doubles on the bypassing 64-bit path) and compares bit-for-bit.
    """
    buffer: List[int] = []
    pointer = 0
    half: Optional[int] = None

    def take_u64() -> int:
        nonlocal pointer
        if pointer >= len(buffer):
            buffer.extend(raw.random_raw(32).tolist())
        value = buffer[pointer]
        pointer += 1
        return value

    def take_u32() -> int:
        nonlocal half
        if half is not None:
            value, half = half, None
            return value
        word = take_u64()
        half = word >> 32
        return word & 0xFFFFFFFF

    for round_index in range(24):
        exponent = round_index % 9  # covers the consumption-free range of 1
        expected = 0 if exponent == 0 else take_u32() >> (32 - exponent)
        if int(real.integers(0, 1 << exponent)) != expected:
            return False
        low = -1.5 + 0.25 * round_index
        high = low + 0.5 + 0.125 * round_index
        expected_u = low + (high - low) * ((take_u64() >> 11) * _U53)
        if float(real.uniform(low, high)) != expected_u:
            return False
        if float(real.random()) != (take_u64() >> 11) * _U53:
            return False
    return True


def raw_streams_compatible() -> bool:
    """Whether this numpy's generators match the raw-stream replay.

    Evaluated once per process and cached; a mismatch (or any error while
    probing) routes every batched run through the per-lane reference
    implementation instead of producing silently different variates.
    """
    global _raw_compat
    if _raw_compat is None:
        try:
            real = np.random.default_rng(
                np.random.SeedSequence(entropy=987654321, spawn_key=(11,)))
            raw = np.random.default_rng(
                np.random.SeedSequence(entropy=987654321,
                                       spawn_key=(11,))).bit_generator
            _raw_compat = _probe_matches(real, raw)
        except Exception:  # pragma: no cover - depends on foreign numpy
            _raw_compat = False
    return _raw_compat


def _use_batched_path() -> bool:
    if os.environ.get(COMPAT_ENV):
        return False
    return raw_streams_compatible()


# ---------------------------------------------------------------------------
# batched kernel
# ---------------------------------------------------------------------------

class BatchedChannelSimulator:
    """Uplink simulation of many independent channel lanes in lockstep.

    Parameters
    ----------
    lanes:
        The :class:`ChannelLane` batch — typically one lane per (channel,
        replication) pair of a network fan-out.  Order is preserved in the
        result list.
    config / constants / payload_bytes / csma_params / profile / traffic:
        Shared by every lane, exactly as the corresponding
        :class:`repro.network.scenario.ChannelScenario` arguments.  The
        traffic model is instantiated per lane from the lane's own
        ``traffic[<id>]`` streams, preserving the equivalence contract.
    """

    def __init__(self, lanes: Sequence[ChannelLane], config: SuperframeConfig,
                 constants: MacConstants = MAC_2450MHZ,
                 payload_bytes: int = 120,
                 csma_params: Optional[CsmaParameters] = None,
                 profile: RadioPowerProfile = CC2420_PROFILE,
                 traffic=None):
        if not lanes:
            raise ValueError("A batched simulation needs at least one lane")
        for lane in lanes:
            if not lane.nodes:
                raise ValueError(
                    "A channel simulation needs at least one node")
            if len(lane.tx_levels_dbm) != len(lane.nodes):
                raise ValueError("One transmit level per node is required")
        if traffic is not None:
            traffic.require_payload(payload_bytes, "the slot-level kernel")
        self.lanes = [ChannelLane(nodes=list(lane.nodes),
                                  tx_levels_dbm=[float(level) for level
                                                 in lane.tx_levels_dbm],
                                  seed=lane.seed,
                                  tree=lane.tree)
                      for lane in lanes]
        self.config = config
        self.constants = constants
        self.payload_bytes = payload_bytes
        self.csma_params = csma_params or CsmaParameters.from_mac_constants(
            constants)
        self.profile = profile
        self.traffic = traffic

    def run(self, superframes: int = 10) -> List:
        """Simulate every lane for ``superframes`` beacon intervals.

        Returns one :class:`repro.network.scenario.SimulationSummary` per
        lane, in lane order — bit-for-bit what a single-lane run of each
        lane would produce.
        """
        if superframes < 1:
            raise ValueError("superframes must be at least 1")
        if not _use_batched_path():
            return [_simulate_lane_reference(
                        lane, self.config, self.constants,
                        self.payload_bytes, self.csma_params, self.profile,
                        self.traffic, superframes)
                    for lane in self.lanes]
        return self._run_batched(superframes)

    # -- the batched fast path ------------------------------------------------
    def _run_batched(self, superframes: int) -> List:
        from repro.network.routing import depth_breakdown, make_lane_sources
        from repro.network.scenario import SimulationSummary
        from repro.network.traffic import SaturatedTraffic

        # Telemetry: per-phase elapsed time accumulates in plain floats
        # guarded on one ``tracer.enabled`` check — the round loop and the
        # per-lane event merge allocate no span objects even when tracing —
        # and the four kernel phases are emitted once at the end.
        tracer = current_tracer()
        tracing = tracer.enabled
        t_setup = perf_counter() if tracing else 0.0

        constants = self.constants
        params = self.csma_params
        profile = self.profile
        config = self.config
        lanes = self.lanes

        # ---- timing constants (all in seconds, shared by every lane) -------
        slot = constants.unit_backoff_period_s
        byte_period = constants.timing.byte_period_s
        interval = config.beacon_interval_s
        sf_duration = config.superframe_duration_s
        beacon_air = _beacon_airtime_s(config, constants)
        frame = _make_data_frame(self.payload_bytes)
        frame_air = frame.airtime_s(byte_period)
        ack_air = AckFrame().airtime_s(byte_period)
        turnaround = constants.turnaround_time_s
        ack_wait = constants.ack_wait_duration_s
        residual = max(0.0, ack_wait - turnaround)
        wake_lead = T_SHUTDOWN_TO_IDLE_POLICY_S
        margin = 56 * slot + frame_air + ack_wait
        txn_tail = frame_air + turnaround + ack_air
        horizon = superframes * interval
        max_transmissions = constants.max_transmissions
        max_backoffs = params.max_csma_backoffs
        cw0 = params.contention_window
        be0 = params.initial_backoff_exponent()
        be_cap = params.max_be
        if params.battery_life_extension:
            be_cap = min(be_cap, params.battery_life_extension_max_be)

        # ---- flat lane-major device layout ---------------------------------
        lane_count = len(lanes)
        counts = [len(lane.nodes) for lane in lanes]
        n = sum(counts)
        bounds = np.zeros(lane_count + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        lane_of = np.repeat(np.arange(lane_count), counts)

        traffic_model = self.traffic
        if traffic_model is None:
            traffic_model = SaturatedTraffic(payload_bytes=self.payload_bytes)
        # Forwarding turns even saturated relays stateful (their own feed
        # is bottomless but descendants' replicas are not), so any lane
        # with relays drops the whole batch off the source-free fast path.
        forwarding = any(lane.tree is not None and lane.tree.relays
                         for lane in lanes)
        saturated = isinstance(traffic_model, SaturatedTraffic) \
            and not forwarding

        # ---- per-lane streams (identical names to the event kernel) --------
        # Bit generators are constructed directly from the stream names'
        # seed sequences — the exact derivation ``RandomStreams.get`` uses
        # (``default_rng(seq)`` wraps ``PCG64(seq)``) without the Generator
        # objects the raw replay never calls.
        from repro.sim.random import _name_to_entropy
        coordinator_entropy = _name_to_entropy("coordinator")
        entropy_cache = _device_entropies
        device_bgs: List[np.random.BitGenerator] = []
        coordinator_bgs: List[np.random.BitGenerator] = []
        sources: List = []
        programmed_flat: List[float] = []
        pe_flat: List[float] = []
        ppdu_bytes = frame.ppdu_bytes
        for lane in lanes:
            master = lane.seed
            coordinator_bgs.append(
                _seeded_pcg64(master, coordinator_entropy))
            for node in lane.nodes:
                entropy = entropy_cache.get(node.node_id)
                if entropy is None:
                    entropy = _name_to_entropy(f"device[{node.node_id}]")
                    entropy_cache[node.node_id] = entropy
                device_bgs.append(_seeded_pcg64(master, entropy))
            if not saturated:
                sources.extend(make_lane_sources(
                    traffic_model,
                    [node.node_id for node in lane.nodes],
                    RandomStreams(master), tree=lane.tree,
                    hop_lag_s=interval))
            programmed = [profile.tx_level(level).level_dbm
                          for level in lane.tx_levels_dbm]
            programmed_flat.extend(programmed)
            pe_flat.extend(
                node.link().packet_error_probability(level, ppdu_bytes)
                for node, level in zip(lane.nodes, programmed))

        # ---- raw draw state -------------------------------------------------
        raws = np.zeros((n, _RAW_CHUNK), dtype=np.uint64)
        rptr = np.full(n, _RAW_CHUNK, dtype=np.int64)
        half_has = np.zeros(n, dtype=bool)
        half_val = np.zeros(n, dtype=np.uint64)
        u32_mask = np.uint64(0xFFFFFFFF)
        shift_32 = np.uint64(32)

        #: Lazily materialised Python-int mirror of each device's raw row,
        #: used by the merge loop's scalar draws; invalidated on refill.
        row_cache: List[Optional[List[int]]] = [None] * n

        def refill(needing: np.ndarray) -> None:
            for device in needing.tolist():
                raws[device] = device_bgs[device].random_raw(_RAW_CHUNK)
                row_cache[device] = None
            rptr[needing] = 0

        def take_u64_vec(ids: np.ndarray) -> np.ndarray:
            pointers = rptr[ids]
            exhausted = pointers == _RAW_CHUNK
            if exhausted.any():
                refill(ids[exhausted])
                pointers = rptr[ids]
            out = raws[ids, pointers]
            rptr[ids] = pointers + 1
            return out

        def take_u32_vec(ids: np.ndarray) -> np.ndarray:
            has = half_has[ids]
            out = np.empty(ids.size, dtype=np.uint64)
            held = ids[has]
            out[has] = half_val[held]
            half_has[held] = False
            fresh = ids[~has]
            if fresh.size:
                words = take_u64_vec(fresh)
                out[~has] = words & u32_mask
                half_val[fresh] = words >> shift_32
                half_has[fresh] = True
            return out

        #: Per-lane pre-transformed coordinator doubles, consumed LIFO from
        #: the tail of a reversed block (identical order to the stream).
        coordinator_pool: List[List[float]] = [[] for _ in range(lane_count)]

        # ---- deferred-ledger accumulators (phase A side, numpy) ------------
        sleep_t = np.zeros(n)
        wake_beacon = np.zeros(n, dtype=np.int64)
        idle_beacon_t = np.zeros(n)
        beacon_rx = np.zeros(n, dtype=np.int64)
        wake_cont = np.zeros(n, dtype=np.int64)
        idle_cont_t = np.zeros(n)
        cca_sched = np.zeros(n, dtype=np.int64)
        attempted = np.zeros(n, dtype=np.int64)

        # ---- event-loop accumulators (python lists, scalar writes) ---------
        # Transmission and acknowledgement counts are derived at ledger
        # time: every transmission is acknowledged or not (tx = acks +
        # residuals), every acknowledged packet is delivered unless the
        # horizon cut its tail (acks = delivered + ack_killed), and the
        # ack-turnaround idle time is per-transmission constant.
        cca_loop = [0] * n
        idle_cont_loop = [0.0] * n
        residual_rx = [0] * n
        failures = [0] * n
        delivered = [0] * n
        delay_sum = [0.0] * n  # delivered packets provide the count
        ack_killed: List[int] = []  # acked, then killed before delivery

        # ---- transient MAC state (BE/NB/CW/attempt live in merge-loop
        # locals and heap entries; only the timeline state is per-device) ----
        dev_now = np.zeros(n)
        dead = np.zeros(n, dtype=bool)
        busy_end = [0.0] * lane_count

        # ---- per-lane phase visibility -------------------------------------
        flag_beacon = np.zeros(lane_count, dtype=bool)
        flag_cont = np.zeros(lane_count, dtype=bool)
        flag_tx = np.zeros(lane_count, dtype=bool)
        flag_sleep = np.zeros(lane_count, dtype=bool)

        pe_list = pe_flat  # python floats for the scalar loop

        if tracing:
            setup_s = perf_counter() - t_setup
            grid_s = merge_s = 0.0
            t_phase = 0.0
            rounds = 0

        for round_index in range(superframes):
            # Grid time spans from here to the phase-B marker; a round that
            # exits early (``continue``) leaves ``t_phase`` open and the
            # next round (or the post-loop close) absorbs the remainder.
            if tracing:
                now_t = perf_counter()
                if t_phase:
                    grid_s += now_t - t_phase
                t_phase = now_t
                rounds += 1
            beacon_at = round_index * interval
            cap_end = beacon_at + sf_duration
            latest = cap_end - margin
            ids = np.nonzero(~dead)[0]
            if ids.size == 0:  # pragma: no cover - kills only land in the
                break          # last round, so no earlier round starts empty

            # ---- phase A: wake, beacon, traffic, stagger, first backoff ----
            alive_lanes = lane_of[ids]
            if round_index > 0:
                flag_sleep[alive_lanes] = True  # idle->shutdown strobe
            now = dev_now[ids]
            wake = np.maximum(beacon_at - wake_lead, now)
            sleep_t[ids] += wake - now
            wake_beacon[ids] += 1
            idle_beacon_t[ids] += np.maximum(beacon_at - wake, 0.0)
            beacon_rx[ids] += 1
            flag_beacon[alive_lanes] = True
            arrival = np.maximum(wake, beacon_at) + beacon_air
            over = arrival > horizon
            if over.any():  # pragma: no cover - needs beacon_air >= interval
                dead[ids[over]] = True
                ids = ids[~over]
                arrival = arrival[~over]
                if ids.size == 0:
                    continue

            if saturated:
                ids2 = ids
                arrival2 = arrival
            else:
                has_packet = np.zeros(ids.size, dtype=bool)
                id_list = ids.tolist()
                arrival_list = arrival.tolist()
                for position, device in enumerate(id_list):
                    source = sources[device]
                    if source.poll(beacon_at):
                        source.drain_packet()
                        has_packet[position] = True
                    else:
                        dev_now[device] = arrival_list[position]
                ids2 = ids[has_packet]
                arrival2 = arrival[has_packet]
                if ids2.size == 0:
                    continue

            low = arrival2 + wake_lead
            stagger = low < latest
            start = arrival2.copy()
            staggered = ids2[stagger]
            if staggered.size:
                flag_cont[lane_of[staggered]] = True
                words = take_u64_vec(staggered)
                unit = (words >> np.uint64(11)).astype(np.float64) * _U53
                low_s = low[stagger]
                start_s = low_s + (latest - low_s) * unit
                start[stagger] = start_s
                stagger_sleep = start_s - arrival2[stagger] - wake_lead
                slept = stagger_sleep > 0
                slept_ids = staggered[slept]
                if slept_ids.size:
                    flag_sleep[lane_of[slept_ids]] = True
                    sleep_t[slept_ids] += stagger_sleep[slept]
                    # start < latest_start <= horizon, so the kernel's
                    # mid-stagger horizon cut cannot trigger here.
                    wake_cont[slept_ids] += 1
                idle_cont_t[staggered] += wake_lead
            attempted[ids2] += 1

            if be0 > 0:
                first_u32 = take_u32_vec(ids2)
                first_delay = (first_u32
                               >> np.uint64(32 - be0)).astype(np.int64)
            else:
                first_delay = np.zeros(ids2.size, dtype=np.int64)
            waited = first_delay > 0
            if waited.any():
                idle_cont_t[ids2[waited]] += first_delay[waited] * slot
                flag_cont[lane_of[ids2[waited]]] = True
            cca_start = start + first_delay * slot

            past_horizon = cca_start > horizon
            deferred = ~past_horizon & (cca_start >= cap_end)
            scheduled = ~past_horizon & ~deferred
            if past_horizon.any():
                dead[ids2[past_horizon]] = True
            if deferred.any():
                deferred_ids = ids2[deferred]
                dev_now[deferred_ids] = cca_start[deferred]
            event_devices = ids2[scheduled]
            if event_devices.size == 0:
                continue
            flag_cont[lane_of[event_devices]] = True
            cca_sched[event_devices] += 1
            event_times = cca_start[scheduled] + slot

            # ---- phase B: per-lane CCA/TX event merge ----------------------
            if tracing:
                t_merge = perf_counter()
                grid_s += t_merge - t_phase
                t_phase = 0.0
            event_lanes = lane_of[event_devices]
            order = np.lexsort((event_times, event_lanes))
            static_times = event_times[order].tolist()
            static_devices = event_devices[order].tolist()
            lane_starts = np.searchsorted(event_lanes[order],
                                          np.arange(lane_count + 1))
            infinity = float("inf")
            # Terminal writes are batched: transaction endings and horizon
            # kills collect in python lists and land on the numpy arrays
            # once per round, after every lane's merge.
            end_dev: List[int] = []
            end_time: List[float] = []
            kill: List[int] = []
            # Python-list mirror of the whole device axis' draw state —
            # plain list indexing is several times cheaper than numpy
            # scalar indexing on this path; written back once per round so
            # the vectorized phase-A draws see the merged stream positions.
            lr = rptr.tolist()
            lh = half_has.tolist()
            lv = half_val.tolist()
            heap_push = heappush
            heap_pop = heappop
            for lane_index in range(lane_count):
                cursor = int(lane_starts[lane_index])
                stop = int(lane_starts[lane_index + 1])
                if cursor == stop:
                    continue
                heap: List[tuple] = []
                push_seq = 0
                busy_until = busy_end[lane_index]
                lane_transmitted = False
                coordinator_bg = coordinator_bgs[lane_index]
                pool = coordinator_pool[lane_index]
                killed = False
                next_static = static_times[cursor]
                # earliest heap entry's time, mirrored in a local so the
                # hot chain decision is two float compares
                heap_top = infinity
                while True:
                    # static events win ties: they were scheduled first
                    if heap_top < next_static:
                        time_now, _, device, be, nb, cw, att = heap_pop(heap)
                        heap_top = heap[0][0] if heap else infinity
                    elif cursor < stop:
                        # fresh contention attempt begins at its first CCA;
                        # its CSMA state lives in locals (and heap entries
                        # when the device escapes the inline chain)
                        time_now = next_static
                        device = static_devices[cursor]
                        cursor += 1
                        next_static = (static_times[cursor] if cursor < stop
                                       else infinity)
                        be = be0
                        nb = 0
                        cw = cw0
                        att = 0
                    else:
                        break
                    if time_now > horizon:
                        # the kernel cuts the whole queue at the horizon:
                        # every device still owning an event never resumes
                        kill.append(device)
                        kill.extend(static_devices[cursor:stop])
                        while heap:
                            kill.append(heap_pop(heap)[2])
                        break

                    # A device's next CCA sample usually precedes every
                    # other pending event (backoff slots are short against
                    # the contention spread), in which case nothing can
                    # change the channel in between and the sample is
                    # processed inline instead of through the heap.
                    while True:
                        if busy_until > time_now:  # CCA found channel busy
                            nb += 1
                            be += 1
                            if be > be_cap:
                                be = be_cap
                            cw = cw0
                            if nb > max_backoffs:
                                failures[device] += 1
                                end_dev.append(device)
                                end_time.append(time_now)
                                break
                            if be:
                                if lh[device]:
                                    lh[device] = False
                                    word32 = lv[device]
                                else:
                                    pointer = lr[device]
                                    if pointer == _RAW_CHUNK:
                                        fresh = device_bgs[device] \
                                            .random_raw(_RAW_CHUNK)
                                        raws[device] = fresh
                                        row = fresh.tolist()
                                        row_cache[device] = row
                                        pointer = 0
                                    else:
                                        row = row_cache[device]
                                        if row is None:
                                            row = raws[device].tolist()
                                            row_cache[device] = row
                                    word = row[pointer]
                                    lr[device] = pointer + 1
                                    lv[device] = word >> 32
                                    lh[device] = True
                                    word32 = word & 0xFFFFFFFF
                                step = (word32 >> (32 - be)) * slot
                            else:
                                step = 0.0
                            idle_cont_loop[device] += step
                            next_cca = time_now + step
                            if next_cca > horizon:
                                kill.append(device)
                                break
                            if next_cca >= cap_end:
                                end_dev.append(device)
                                end_time.append(next_cca)
                                break
                            cca_loop[device] += 1
                            sample_at = next_cca + slot
                            if sample_at < busy_until:
                                # the frame on the air outlives the new
                                # sample, so its outcome is already decided
                                # (busy) no matter which queued events run
                                # in between — no transmission can start
                                # before busy_until (it needs two clear
                                # CCAs), and other devices never touch this
                                # device's stream or counters
                                time_now = sample_at
                                continue
                        else:
                            # Clear CCA: burn down the remaining window.
                            # While the samples stay inline nothing can put
                            # a frame on the air (busy_until <= time_now),
                            # so the whole window resolves clear
                            # back-to-back without re-entering the chain.
                            cw -= 1
                            while cw > 0:  # next CCA of the window
                                if time_now >= cap_end:
                                    end_dev.append(device)
                                    end_time.append(time_now)
                                    cw = -1  # parked at the CAP edge
                                    break
                                cca_loop[device] += 1
                                sample_at = time_now + slot
                                if (sample_at < next_static
                                        and sample_at < heap_top):
                                    if sample_at > horizon:
                                        # earliest remaining event past the
                                        # horizon: the cut kills the queue
                                        kill.append(device)
                                        kill.extend(
                                            static_devices[cursor:stop])
                                        while heap:
                                            kill.append(heap_pop(heap)[2])
                                        killed = True
                                        cw = -1
                                        break
                                    time_now = sample_at
                                    cw -= 1
                                    continue
                                heap_push(heap,
                                          (sample_at, push_seq, device, be,
                                           nb, cw, att))
                                push_seq += 1
                                if sample_at < heap_top:
                                    heap_top = sample_at
                                cw = -1  # escaped to the heap
                                break
                            if cw:  # parked, killed or escaped
                                break
                            # channel clear through the window: transmit,
                            # unless the transaction no longer fits
                            if time_now + txn_tail > cap_end:
                                end_dev.append(device)
                                end_time.append(time_now)
                                break
                            lane_transmitted = True
                            busy_until = time_now + frame_air
                            # every transmission completes before the
                            # horizon (time_now + txn_tail <= cap_end
                            # <= horizon), so the acknowledgement is
                            # resolved at TX start
                            if not pool:
                                words = coordinator_bg.random_raw(512)
                                pool = ((words >> np.uint64(11))
                                        .astype(np.float64)
                                        * _U53).tolist()
                                pool.reverse()
                                coordinator_pool[lane_index] = pool
                            ack_resume = busy_until + turnaround
                            if pool.pop() >= pe_list[device]:  # acked
                                done = ack_resume + ack_air
                                # float-edge guard: the fit check above
                                # bounds done <= cap_end <= horizon up to
                                # rounding of the beacon grid
                                if done > horizon:  # pragma: no cover
                                    ack_killed.append(device)
                                    kill.append(device)
                                    break
                                delivered[device] += 1
                                delay_sum[device] += done - beacon_at
                                end_dev.append(device)
                                end_time.append(done)
                                break
                            residual_rx[device] += 1
                            retry_at = ack_resume + residual
                            if retry_at > horizon:
                                kill.append(device)
                                break
                            att += 1
                            if att >= max_transmissions:
                                end_dev.append(device)
                                end_time.append(retry_at)
                                break
                            be = be0
                            nb = 0
                            cw = cw0
                            if be0:
                                if lh[device]:
                                    lh[device] = False
                                    word32 = lv[device]
                                else:
                                    pointer = lr[device]
                                    if pointer == _RAW_CHUNK:
                                        fresh = device_bgs[device] \
                                            .random_raw(_RAW_CHUNK)
                                        raws[device] = fresh
                                        row = fresh.tolist()
                                        row_cache[device] = row
                                        pointer = 0
                                    else:
                                        row = row_cache[device]
                                        if row is None:
                                            row = raws[device].tolist()
                                            row_cache[device] = row
                                    word = row[pointer]
                                    lr[device] = pointer + 1
                                    lv[device] = word >> 32
                                    lh[device] = True
                                    word32 = word & 0xFFFFFFFF
                                step = (word32 >> (32 - be0)) * slot
                            else:
                                step = 0.0
                            idle_cont_loop[device] += step
                            next_cca = retry_at + step
                            if next_cca > horizon:
                                kill.append(device)
                                break
                            if next_cca >= cap_end:
                                end_dev.append(device)
                                end_time.append(next_cca)
                                break
                            cca_loop[device] += 1
                            sample_at = next_cca + slot

                        # continue inline only while this device's sample
                        # strictly precedes every other pending event —
                        # an equal-time event was queued earlier and the
                        # kernel orders ties by scheduling sequence
                        if sample_at < next_static and sample_at < heap_top:
                            if sample_at > horizon:
                                # earliest remaining event past the horizon:
                                # the kernel's cut kills the whole queue
                                kill.append(device)
                                kill.extend(static_devices[cursor:stop])
                                while heap:
                                    kill.append(heap_pop(heap)[2])
                                killed = True
                                break
                            time_now = sample_at
                            continue
                        heap_push(heap,
                                  (sample_at, push_seq, device, be, nb, cw,
                                   att))
                        push_seq += 1
                        if sample_at < heap_top:
                            heap_top = sample_at
                        break
                    if killed:
                        break
                busy_end[lane_index] = busy_until
                if lane_transmitted:
                    flag_tx[lane_index] = True
            rptr[:] = lr
            half_has[:] = lh
            half_val[:] = lv
            if kill:
                dead[kill] = True
            if end_dev:
                dev_now[end_dev] = end_time
            if tracing:
                merge_s += perf_counter() - t_merge

        if tracing:
            t_ledger = perf_counter()
            if t_phase:
                grid_s += t_ledger - t_phase

        # ---- final pre-beacon wake at the horizon --------------------------
        ids = np.nonzero(~dead)[0]
        if ids.size:
            alive_lanes = lane_of[ids]
            flag_sleep[alive_lanes] = True
            now = dev_now[ids]
            wake = np.maximum(horizon - wake_lead, now)
            sleep_t[ids] += wake - now
            wake_beacon[ids] += 1
            idle_beacon_t[ids] += np.maximum(horizon - wake, 0.0)
            beacon_rx[ids] += 1
            flag_beacon[alive_lanes] = True
            # the beacon past the horizon is cut before its traffic poll

        # ---- numpy ledger reduction ----------------------------------------
        power_sd = profile.power_w(RadioState.SHUTDOWN)
        power_idle = profile.power_w(RadioState.IDLE)
        power_rx = profile.power_w(RadioState.RX)
        power_tx = np.array([profile.tx_power_w(level)
                             for level in programmed_flat])
        startup = profile.transition(RadioState.SHUTDOWN, RadioState.IDLE)
        to_rx = profile.transition(RadioState.IDLE, RadioState.RX)
        to_tx = profile.transition(RadioState.IDLE, RadioState.TX)
        from_rx = profile.transition(RadioState.RX, RadioState.IDLE)
        from_tx = profile.transition(RadioState.TX, RadioState.IDLE)

        cca = cca_sched + np.array(cca_loop, dtype=np.int64)
        idle_cont = idle_cont_t + np.array(idle_cont_loop)
        # Ledger identities of the event loop: every transmission is
        # acknowledged or leaves a residual listen, every acknowledgement
        # is a delivery unless the horizon cut the tail, and each
        # transmission dwells exactly one turnaround waiting for the ACK.
        residuals = np.array(residual_rx, dtype=np.int64)
        acks = np.array(delivered, dtype=np.int64)
        if ack_killed:  # pragma: no cover - see the float-edge ack guard
            acks[np.array(ack_killed)] += 1
        tx = acks + residuals
        idle_ack = tx * turnaround

        rx_round_e = to_rx.energy_j + from_rx.energy_j
        rx_round_t = to_rx.duration_s + from_rx.duration_s
        energy_beacon = (wake_beacon * startup.energy_j
                         + idle_beacon_t * power_idle
                         + beacon_rx * (rx_round_e + power_rx * beacon_air))
        energy_cont = (wake_cont * startup.energy_j
                       + idle_cont * power_idle
                       + cca * (rx_round_e + power_rx * slot))
        energy_tx = tx * (to_tx.energy_j + from_tx.energy_j) \
            + tx * power_tx * frame_air
        energy_ack = (idle_ack * power_idle
                      + acks * (rx_round_e + power_rx * ack_air)
                      + residuals * (rx_round_e + power_rx * residual))
        energy_sleep = sleep_t * power_sd
        energy = (energy_beacon + energy_cont + energy_tx + energy_ack
                  + energy_sleep)
        elapsed = (sleep_t
                   + (wake_beacon + wake_cont) * startup.duration_s
                   + idle_beacon_t + idle_cont + idle_ack
                   + beacon_rx * (rx_round_t + beacon_air)
                   + cca * (rx_round_t + slot)
                   + tx * (to_tx.duration_s + from_tx.duration_s + frame_air)
                   + acks * (rx_round_t + ack_air)
                   + residuals * (rx_round_t + residual))
        powers = energy / np.maximum(elapsed, 1e-12)

        summaries = []
        for lane_index in range(lane_count):
            lo = int(bounds[lane_index])
            hi = int(bounds[lane_index + 1])
            phase_energy: Dict[str, float] = {}
            for phase, flag, total in (
                    (PHASE_BEACON, flag_beacon, energy_beacon),
                    (PHASE_CONTENTION, flag_cont, energy_cont),
                    (PHASE_TRANSMIT, flag_tx, energy_tx),
                    (PHASE_ACK, flag_tx, energy_ack),
                    (PHASE_SLEEP, flag_sleep, energy_sleep)):
                if flag[lane_index]:
                    phase_energy[phase] = float(np.sum(total[lo:hi]))
            lane_delivered = sum(delivered[lo:hi])
            lane_tree = lanes[lane_index].tree
            by_depth = None
            if lane_tree is not None:
                by_depth = depth_breakdown(
                    lane_tree,
                    [node.node_id for node in lanes[lane_index].nodes],
                    attempted[lo:hi], delivered[lo:hi], delay_sum[lo:hi],
                    energy[lo:hi], elapsed[lo:hi])
            summaries.append(SimulationSummary(
                simulated_time_s=horizon,
                node_count=hi - lo,
                superframes=superframes,
                packets_attempted=int(attempted[lo:hi].sum()),
                packets_delivered=int(lane_delivered),
                channel_access_failures=int(sum(failures[lo:hi])),
                collisions=0,
                mean_node_power_w=float(np.mean(powers[lo:hi])),
                mean_delivery_delay_s=(sum(delay_sum[lo:hi])
                                       / lane_delivered
                                       if lane_delivered else None),
                energy_by_phase_j=phase_energy,
                by_depth=by_depth,
            ))

        if tracing:
            ledger_s = perf_counter() - t_ledger
            kernel = tracer.record_span(
                "kernel:batched", setup_s + grid_s + merge_s + ledger_s,
                kind="kernel",
                counters={"lanes": lane_count, "devices": n,
                          "rounds": rounds})
            tracer.record_span("setup", setup_s, parent=kernel)
            tracer.record_span("beacon_grid", grid_s, parent=kernel,
                               counters={"attempts": int(attempted.sum())})
            tracer.record_span("contention_merge", merge_s, parent=kernel,
                               counters={"cca": int(cca.sum())})
            tracer.record_span("energy_ledger", ledger_s, parent=kernel)
        return summaries


class VectorizedChannelSimulator:
    """Fast uplink simulation of one channel — a single-lane batched run.

    Parameters
    ----------
    nodes:
        The sensor nodes of the channel (``repro.network.node.SensorNode``).
    config:
        Superframe configuration (no GTS allocation).
    tx_levels_dbm:
        Resolved transmit level per node, aligned with ``nodes``.  The
        caller (:class:`repro.network.scenario.ChannelScenario`) performs the
        link-adaptation / default resolution; this backend only rounds to
        the radio's programmable steps exactly as the event kernel does.
    constants / payload_bytes / seed / csma_params / profile:
        As in :class:`repro.network.scenario.ChannelScenario`.
    traffic:
        Per-node packet process (:class:`repro.network.traffic.TrafficModel`)
        polled at every beacon; ``None`` is the paper's saturated
        assumption.  Sources are built from the same ``traffic[<id>]``
        streams the event kernel uses, preserving the equivalence contract
        for every model.
    tree:
        Sink tree of a routed channel
        (:class:`repro.network.routing.SinkTree`); ``None`` is the classic
        star.
    """

    def __init__(self, nodes: Sequence, config: SuperframeConfig,
                 tx_levels_dbm: Sequence[float],
                 constants: MacConstants = MAC_2450MHZ,
                 payload_bytes: int = 120, seed: int = 0,
                 csma_params: Optional[CsmaParameters] = None,
                 profile: RadioPowerProfile = CC2420_PROFILE,
                 traffic=None, tree=None):
        self._batch = BatchedChannelSimulator(
            [ChannelLane(nodes=nodes, tx_levels_dbm=tx_levels_dbm,
                         seed=seed, tree=tree)],
            config=config, constants=constants,
            payload_bytes=payload_bytes, csma_params=csma_params,
            profile=profile, traffic=traffic)
        lane = self._batch.lanes[0]
        self.nodes = lane.nodes
        self.config = config
        self.constants = constants
        self.payload_bytes = payload_bytes
        self.seed = seed
        self.csma_params = self._batch.csma_params
        self.profile = profile
        self.tx_levels_dbm = lane.tx_levels_dbm
        self.traffic = traffic
        self.tree = tree

    def run(self, superframes: int = 10):
        """Simulate ``superframes`` beacon intervals; same summary as the kernel."""
        return self._batch.run(superframes=superframes)[0]


# ---------------------------------------------------------------------------
# per-lane reference implementation (compat fallback)
# ---------------------------------------------------------------------------

def _simulate_lane_reference(lane: ChannelLane, config: SuperframeConfig,
                             constants: MacConstants, payload_bytes: int,
                             csma_params: CsmaParameters,
                             profile: RadioPowerProfile, traffic,
                             superframes: int):
    """Scalar single-lane kernel drawing from the generators directly.

    This is the pre-batching implementation, retained verbatim as the
    fallback for numpy builds whose bit-stream consumption differs from the
    identities :func:`raw_streams_compatible` probes (and for explicit
    ``REPRO_MAC_COMPAT`` opt-outs).  Slower — one Python pass per lane —
    but equivalent: its variates come from ``Generator`` calls instead of
    raw-stream replay.
    """
    from repro.network.routing import depth_breakdown, make_lane_sources
    from repro.network.scenario import SimulationSummary
    from repro.network.traffic import SaturatedTraffic

    # Telemetry mirrors _run_batched: phase times accumulate in floats
    # behind one enabled-check, spans are emitted once at the end.
    tracer = current_tracer()
    tracing = tracer.enabled
    t_setup = perf_counter() if tracing else 0.0

    nodes = lane.nodes
    params = csma_params
    n = len(nodes)

    # ---- timing constants (all in seconds) ---------------------------------
    slot = constants.unit_backoff_period_s
    byte_period = constants.timing.byte_period_s
    interval = config.beacon_interval_s
    sf_duration = config.superframe_duration_s
    beacon_air = _beacon_airtime_s(config, constants)
    frame = _make_data_frame(payload_bytes)
    frame_air = frame.airtime_s(byte_period)
    ack_air = AckFrame().airtime_s(byte_period)
    turnaround = constants.turnaround_time_s
    ack_wait = constants.ack_wait_duration_s
    residual = max(0.0, ack_wait - turnaround)
    wake_lead = T_SHUTDOWN_TO_IDLE_POLICY_S
    margin = 56 * slot + frame_air + ack_wait
    txn_tail = frame_air + turnaround + ack_air
    horizon = superframes * interval
    max_transmissions = constants.max_transmissions
    max_backoffs = params.max_csma_backoffs
    contention_window = params.contention_window
    be0 = params.initial_backoff_exponent()
    be_cap = params.max_be
    if params.battery_life_extension:
        be_cap = min(be_cap, params.battery_life_extension_max_be)

    # ---- random streams (identical names to the event kernel) -------------
    streams = RandomStreams(lane.seed)
    coordinator_rng = streams.get("coordinator")
    generators = [streams.get(f"device[{node.node_id}]") for node in nodes]

    # ---- per-node traffic feeds (identical streams to the event kernel) ----
    traffic_model = traffic
    if traffic_model is None:
        traffic_model = SaturatedTraffic(payload_bytes=payload_bytes)
    sources = make_lane_sources(
        traffic_model, [node.node_id for node in nodes], streams,
        tree=lane.tree, hop_lag_s=interval)

    # ---- per-device link/corruption constants -----------------------------
    programmed_dbm = [profile.tx_level(level).level_dbm
                      for level in lane.tx_levels_dbm]
    packet_error = [node.link().packet_error_probability(level,
                                                         frame.ppdu_bytes)
                    for node, level in zip(nodes, programmed_dbm)]

    # ---- lockstep device state ---------------------------------------------
    next_beacon = [0.0] * n        # beacon the device will synchronise to
    beacon_time = [0.0] * n        # beacon anchoring the running transaction
    cfp_start = [0.0] * n          # end of the CAP of that superframe
    attempt = [0] * n              # transmissions already spent this packet
    be = [be0] * n                 # backoff exponent
    nb = [0] * n                   # backoff stages used this attempt
    cw = [0] * n                   # remaining clear CCAs before transmit

    # ---- deferred-ledger accumulators --------------------------------------
    sleep_t = [0.0] * n            # shutdown dwell               (sleep)
    wake_beacon = [0] * n          # shutdown->idle transitions   (beacon)
    idle_beacon_t = [0.0] * n      # pre-beacon idle dwell        (beacon)
    beacon_rx = [0] * n            # beacon receptions            (beacon)
    wake_cont = [0] * n            # stagger wake-ups             (contention)
    idle_cont_t = [0.0] * n        # stagger + backoff idle dwell (contention)
    cca = [0] * n                  # clear channel assessments    (contention)
    tx = [0] * n                   # data-frame transmissions     (transmit)
    idle_ack_t = [0.0] * n         # turnaround idle dwell        (ackifs)
    ack_rx = [0] * n               # acknowledgements received    (ackifs)
    residual_rx = [0] * n          # full ack-wait timeouts       (ackifs)

    # ---- result counters ----------------------------------------------------
    attempted = [0] * n
    delivered = [0] * n
    failures = [0] * n
    delays: List[List[float]] = [[] for _ in range(n)]
    collision_count = 0
    phase_seen = {PHASE_BEACON: False, PHASE_CONTENTION: False,
                  PHASE_TRANSMIT: False, PHASE_ACK: False,
                  PHASE_SLEEP: False}

    # ---- medium state -------------------------------------------------------
    # Transmissions on air as [end_time, collided, device].  Starts are
    # chronological and every frame has the same airtime, so the list
    # stays sorted by end time and is pruned from the front; the device's
    # own reference survives pruning so the final collision status is
    # still readable when the frame completes.
    active: List[list] = []
    pending_tx: List[Optional[list]] = [None] * n

    heap: List[tuple] = []
    seq = 0

    def push(time: float, kind: int, index: int) -> None:
        nonlocal seq
        seq += 1
        heappush(heap, (time, seq, kind, index))

    def start_attempt(index: int, now: float) -> Optional[float]:
        """Draw the first backoff of a contention attempt starting at ``now``.

        Returns the deferral time when the first CCA would fall outside
        the CAP, ``None`` when a CCA sample was scheduled (or the device
        ran past the horizon mid-wait).
        """
        be[index] = be0
        nb[index] = 0
        cw[index] = contention_window
        delay = int(generators[index].integers(0, 1 << be0))
        if delay:
            idle_cont_t[index] += delay * slot
            phase_seen[PHASE_CONTENTION] = True
        cca_start = now + delay * slot
        if cca_start > horizon:
            return None
        if cca_start >= cfp_start[index]:
            return cca_start
        cca[index] += 1
        phase_seen[PHASE_CONTENTION] = True
        push(cca_start + slot, _EVENT_CCA_SAMPLE, index)
        return None

    def begin_superframes(index: int, now: float, initial: bool = False) -> None:
        """Advance a device from the end of one superframe's activity.

        Mirrors the kernel's per-superframe loop: sleep to the pre-beacon
        wake-up, receive the beacon, stagger, start the uplink
        transaction.  Iterates over superframes whose transaction defers
        before its first CCA; every charge is guarded by the simulated
        time at which the kernel would have made it.
        """
        while True:
            if not initial:
                phase_seen[PHASE_SLEEP] = True   # idle->shutdown strobe
            initial = False
            beacon_at = next_beacon[index]
            wake = beacon_at - wake_lead
            if wake > now:
                sleep_t[index] += wake - now
            else:
                wake = now
            if wake > horizon:  # pragma: no cover - the horizon beacon's
                return          # arrival check below returns first
            wake_beacon[index] += 1
            resume = wake
            startup_wait = beacon_at - wake
            if startup_wait > 0:
                idle_beacon_t[index] += startup_wait
                resume = beacon_at
            if resume > horizon:  # pragma: no cover - same: beacons past
                return            # the horizon are never begun
            beacon_rx[index] += 1
            phase_seen[PHASE_BEACON] = True
            arrival = resume + beacon_air
            if arrival > horizon:
                return
            # Poll the traffic feed at the superframe boundary, exactly
            # where the event kernel does: no buffered packet means the
            # device sleeps this superframe out after the beacon.
            if not sources[index].poll(beacon_at):
                now = arrival
                next_beacon[index] += interval
                continue
            sources[index].drain_packet()
            cap_end = beacon_at + sf_duration
            latest_start = cap_end - margin
            start = arrival
            if latest_start > arrival + wake_lead:
                phase_seen[PHASE_CONTENTION] = True
                start = float(generators[index].uniform(
                    arrival + wake_lead, latest_start))
                stagger_sleep = start - arrival - wake_lead
                if stagger_sleep > 0:
                    phase_seen[PHASE_SLEEP] = True
                    sleep_t[index] += stagger_sleep
                    # start < latest_start <= horizon, so the cut cannot
                    # land mid-stagger
                    if start - wake_lead > horizon:  # pragma: no cover
                        return
                    wake_cont[index] += 1
                idle_cont_t[index] += wake_lead
            attempted[index] += 1
            attempt[index] = 0
            beacon_time[index] = beacon_at
            cfp_start[index] = cap_end
            deferred_at = start_attempt(index, start)
            if deferred_at is None:
                return
            now = deferred_at
            next_beacon[index] += interval

    def end_transaction(index: int, now: float) -> None:
        next_beacon[index] += interval
        begin_superframes(index, now)

    if tracing:
        t_grid = perf_counter()
        setup_s = t_grid - t_setup

    for index in range(n):
        begin_superframes(index, 0.0, initial=True)

    # ---- interaction event loop --------------------------------------------
    if tracing:
        t_merge = perf_counter()
        grid_s = t_merge - t_grid
    while heap:
        now, _, kind, index = heappop(heap)
        if now > horizon:
            break
        while active and active[0][0] <= now:
            active.pop(0)

        if kind == _EVENT_CCA_SAMPLE:
            if active:  # channel busy at the sample instant
                nb[index] += 1
                be[index] = min(be[index] + 1, be_cap)
                cw[index] = contention_window
                if nb[index] > max_backoffs:
                    failures[index] += 1
                    end_transaction(index, now)
                    continue
                delay = int(generators[index].integers(0, 1 << be[index]))
                if delay:
                    idle_cont_t[index] += delay * slot
                cca_start = now + delay * slot
                if cca_start > horizon:
                    continue
                if cca_start >= cfp_start[index]:
                    end_transaction(index, cca_start)
                    continue
                cca[index] += 1
                push(cca_start + slot, _EVENT_CCA_SAMPLE, index)
                continue
            cw[index] -= 1
            if cw[index] > 0:  # second CCA of the contention window
                if now >= cfp_start[index]:
                    end_transaction(index, now)
                    continue
                cca[index] += 1
                push(now + slot, _EVENT_CCA_SAMPLE, index)
                continue
            # Channel clear twice: transmit, unless the transaction no
            # longer fits in the contention access period.
            if now + txn_tail > cfp_start[index]:
                end_transaction(index, now)
                continue
            tx[index] += 1
            phase_seen[PHASE_TRANSMIT] = True
            entry = [now + frame_air, False, index]
            if active:  # pragma: no cover - measure-zero with CCA sampling
                entry[1] = True
                for other in active:
                    other[1] = True
                collision_count += 1
            active.append(entry)
            pending_tx[index] = entry
            push(now + frame_air, _EVENT_TX_END, index)
            continue

        # ---- data frame completed: acknowledgement decision ----------------
        phase_seen[PHASE_ACK] = True
        # Collision status is final: any collider must have started
        # strictly before the frame ended.
        entry = pending_tx[index]
        pending_tx[index] = None
        collided = entry[1]
        acked = False
        if not collided:
            acked = not (coordinator_rng.random() < packet_error[index])
        idle_ack_t[index] += turnaround
        ack_resume = now + turnaround
        if acked:
            ack_rx[index] += 1
            done = ack_resume + ack_air
            # float-edge guard: the CAP fit check bounds done <= horizon
            if done > horizon:  # pragma: no cover
                continue
            delivered[index] += 1
            delays[index].append(done - beacon_time[index])
            end_transaction(index, done)
            continue
        residual_rx[index] += 1
        retry_at = ack_resume + residual
        if retry_at > horizon:
            continue
        attempt[index] += 1
        if attempt[index] >= max_transmissions:
            end_transaction(index, retry_at)
            continue
        deferred_at = start_attempt(index, retry_at)
        if deferred_at is not None:
            end_transaction(index, deferred_at)

    # ---- numpy ledger reduction --------------------------------------------
    if tracing:
        t_ledger = perf_counter()
        merge_s = t_ledger - t_merge
    power_sd = profile.power_w(RadioState.SHUTDOWN)
    power_idle = profile.power_w(RadioState.IDLE)
    power_rx = profile.power_w(RadioState.RX)
    power_tx = np.array([profile.tx_power_w(level)
                         for level in programmed_dbm])
    startup = profile.transition(RadioState.SHUTDOWN, RadioState.IDLE)
    to_rx = profile.transition(RadioState.IDLE, RadioState.RX)
    to_tx = profile.transition(RadioState.IDLE, RadioState.TX)
    from_rx = profile.transition(RadioState.RX, RadioState.IDLE)
    from_tx = profile.transition(RadioState.TX, RadioState.IDLE)

    sleep_t = np.array(sleep_t)
    wake_beacon = np.array(wake_beacon)
    idle_beacon_t = np.array(idle_beacon_t)
    beacon_rx = np.array(beacon_rx)
    wake_cont = np.array(wake_cont)
    idle_cont_t = np.array(idle_cont_t)
    cca = np.array(cca)
    tx = np.array(tx)
    idle_ack_t = np.array(idle_ack_t)
    ack_rx = np.array(ack_rx)
    residual_rx = np.array(residual_rx)

    rx_round_e = to_rx.energy_j + from_rx.energy_j
    rx_round_t = to_rx.duration_s + from_rx.duration_s
    energy_beacon = (wake_beacon * startup.energy_j
                     + idle_beacon_t * power_idle
                     + beacon_rx * (rx_round_e + power_rx * beacon_air))
    energy_cont = (wake_cont * startup.energy_j
                   + idle_cont_t * power_idle
                   + cca * (rx_round_e + power_rx * slot))
    energy_tx = tx * (to_tx.energy_j + from_tx.energy_j) \
        + tx * power_tx * frame_air
    energy_ack = (idle_ack_t * power_idle
                  + ack_rx * (rx_round_e + power_rx * ack_air)
                  + residual_rx * (rx_round_e + power_rx * residual))
    energy_sleep = sleep_t * power_sd
    energy = (energy_beacon + energy_cont + energy_tx + energy_ack
              + energy_sleep)
    elapsed = (sleep_t
               + (wake_beacon + wake_cont) * startup.duration_s
               + idle_beacon_t + idle_cont_t + idle_ack_t
               + beacon_rx * (rx_round_t + beacon_air)
               + cca * (rx_round_t + slot)
               + tx * (to_tx.duration_s + from_tx.duration_s + frame_air)
               + ack_rx * (rx_round_t + ack_air)
               + residual_rx * (rx_round_t + residual))
    powers = energy / np.maximum(elapsed, 1e-12)

    phase_energy: Dict[str, float] = {}
    for phase, total in ((PHASE_BEACON, energy_beacon),
                         (PHASE_CONTENTION, energy_cont),
                         (PHASE_TRANSMIT, energy_tx),
                         (PHASE_ACK, energy_ack),
                         (PHASE_SLEEP, energy_sleep)):
        if phase_seen[phase]:
            phase_energy[phase] = float(np.sum(total))

    all_delays = [delay for per_device in delays for delay in per_device]
    by_depth = None
    if lane.tree is not None:
        by_depth = depth_breakdown(
            lane.tree, [node.node_id for node in nodes], attempted,
            delivered, [sum(per_device) for per_device in delays],
            energy, elapsed)

    if tracing:
        ledger_s = perf_counter() - t_ledger
        kernel = tracer.record_span(
            "kernel:reference", setup_s + grid_s + merge_s + ledger_s,
            kind="kernel", counters={"lanes": 1, "devices": n})
        tracer.record_span("setup", setup_s, parent=kernel)
        tracer.record_span("beacon_grid", grid_s, parent=kernel,
                           counters={"attempts": int(sum(attempted))})
        tracer.record_span("contention_merge", merge_s, parent=kernel,
                           counters={"cca": int(cca.sum())})
        tracer.record_span("energy_ledger", ledger_s, parent=kernel)
    return SimulationSummary(
        simulated_time_s=horizon,
        node_count=n,
        superframes=superframes,
        packets_attempted=int(sum(attempted)),
        packets_delivered=int(sum(delivered)),
        channel_access_failures=int(sum(failures)),
        collisions=collision_count,
        mean_node_power_w=float(np.mean(powers)),
        mean_delivery_delay_s=(float(np.mean(all_delays))
                               if all_delays else None),
        energy_by_phase_j=phase_energy,
        by_depth=by_depth,
    )
