"""Vectorized slot-level fast path for the packet-level channel simulation.

The event-driven kernel (:mod:`repro.mac.device` on :mod:`repro.sim.engine`)
spends most of its time on generator resumes, event objects and per-charge
ledger records — fine for a 10-node validation channel, prohibitive for the
paper's full 100-nodes-per-channel case study.  This module simulates the
same uplink protocol with

* per-device MAC state (backoff exponent ``BE``, backoff stage ``NB``,
  contention window ``CW``, attempt counter, next-beacon clock) held in
  lockstep arrays advanced superframe by superframe,
* a single compact event queue carrying only the two interaction points
  where devices can observe each other — clear-channel-assessment samples
  and data-frame completions — while every deterministic stretch in between
  (sleep, wake-up, beacon reception, stagger, backoff waits) is accounted in
  per-device counters without materialising events, and
* the whole radio energy ledger deferred to one numpy reduction at the end:
  each charge class (CCA, transmission, acknowledgement wait, ...) has a
  fixed energy/duration, so per-device counts and dwell-time sums reproduce
  the :class:`repro.radio.cc2420.EnergyLedger` totals exactly.

Equivalence contract
--------------------
For the same scenario and master seed the fast path consumes the *same
named random streams in the same order* as the event-driven kernel
(``device[<id>]`` for stagger and backoff draws, ``coordinator`` for packet
corruption draws, ``traffic[<id>]`` for per-node packet arrivals, see
:class:`repro.sim.random.RandomStreams`) and applies the same timing rules
(CCA sampled at the end of its slot, traffic polled at the superframe
boundary, deferral checks against the contention access period, the
``run(until=horizon)`` event cut-off).  Delivery / failure / attempt counts
are therefore *identical* to the event kernel's, and energies agree to
float-summation-order precision.  This is asserted by the cross-validation
tests in ``tests/mac/test_vectorized.py``.  The contract covers the
:class:`~repro.network.scenario.SimulationSummary`; the event kernel's
per-device ``CounterMonitor`` diagnostics (``cca_performed``,
``superframes_without_traffic``, ...) have no fast-path counterpart.

Scope: the uplink transaction cycle of the paper's activation policy
(Figure 5) with staggered transaction starts — the configuration
:class:`repro.network.scenario.ChannelScenario` uses.  Downlink (indirect
transmission) and GTS traffic are not modelled on the fast path; scenarios
needing them must use the event-driven backend.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mac.constants import MAC_2450MHZ, MacConstants
from repro.mac.csma import CsmaParameters
from repro.mac.device import (PHASE_ACK, PHASE_BEACON, PHASE_CONTENTION,
                              PHASE_SLEEP, PHASE_TRANSMIT)
from repro.mac.frames import AckFrame, BeaconFrame, DataFrame
from repro.mac.superframe import SuperframeConfig
from repro.radio.power_profile import (CC2420_PROFILE, RadioPowerProfile,
                                       T_SHUTDOWN_TO_IDLE_POLICY_S)
from repro.radio.states import RadioState
from repro.sim.random import RandomStreams

#: Event kinds of the compact queue (only device-interaction points).
_EVENT_CCA_SAMPLE = 0
_EVENT_TX_END = 1


class VectorizedChannelSimulator:
    """Fast uplink simulation of one channel of the beacon-enabled star network.

    Parameters
    ----------
    nodes:
        The sensor nodes of the channel (``repro.network.node.SensorNode``).
    config:
        Superframe configuration (no GTS allocation).
    tx_levels_dbm:
        Resolved transmit level per node, aligned with ``nodes``.  The
        caller (:class:`repro.network.scenario.ChannelScenario`) performs the
        link-adaptation / default resolution; this backend only rounds to
        the radio's programmable steps exactly as the event kernel does.
    constants / payload_bytes / seed / csma_params / profile:
        As in :class:`repro.network.scenario.ChannelScenario`.
    traffic:
        Per-node packet process (:class:`repro.network.traffic.TrafficModel`)
        polled at every beacon; ``None`` is the paper's saturated
        assumption.  Sources are built from the same ``traffic[<id>]``
        streams the event kernel uses, preserving the equivalence contract
        for every model.
    """

    def __init__(self, nodes: Sequence, config: SuperframeConfig,
                 tx_levels_dbm: Sequence[float],
                 constants: MacConstants = MAC_2450MHZ,
                 payload_bytes: int = 120, seed: int = 0,
                 csma_params: Optional[CsmaParameters] = None,
                 profile: RadioPowerProfile = CC2420_PROFILE,
                 traffic=None):
        if not nodes:
            raise ValueError("A channel simulation needs at least one node")
        if len(tx_levels_dbm) != len(nodes):
            raise ValueError("One transmit level per node is required")
        if traffic is not None:
            traffic.require_payload(payload_bytes, "the slot-level kernel")
        self.nodes = list(nodes)
        self.config = config
        self.constants = constants
        self.payload_bytes = payload_bytes
        self.seed = seed
        self.csma_params = csma_params or CsmaParameters.from_mac_constants(constants)
        self.profile = profile
        self.tx_levels_dbm = [float(level) for level in tx_levels_dbm]
        self.traffic = traffic

    # -- derived scenario constants --------------------------------------------------
    def _beacon_airtime_s(self) -> float:
        beacon = BeaconFrame(source=0, sequence_number=1,
                             beacon_order=self.config.beacon_order,
                             superframe_order=self.config.superframe_order,
                             gts_descriptors=0,
                             pending_short_addresses=())
        return beacon.airtime_s(self.constants.timing.byte_period_s)

    def _data_frame(self) -> DataFrame:
        return DataFrame(source=1, destination=0, sequence_number=1,
                         ack_request=True, payload=bytes(self.payload_bytes))

    def run(self, superframes: int = 10):
        """Simulate ``superframes`` beacon intervals; same summary as the kernel."""
        from repro.network.scenario import SimulationSummary

        if superframes < 1:
            raise ValueError("superframes must be at least 1")
        constants = self.constants
        params = self.csma_params
        profile = self.profile
        n = len(self.nodes)

        # ---- timing constants (all in seconds) ---------------------------------
        slot = constants.unit_backoff_period_s
        byte_period = constants.timing.byte_period_s
        interval = self.config.beacon_interval_s
        sf_duration = self.config.superframe_duration_s
        beacon_air = self._beacon_airtime_s()
        frame = self._data_frame()
        frame_air = frame.airtime_s(byte_period)
        ack_air = AckFrame().airtime_s(byte_period)
        turnaround = constants.turnaround_time_s
        ack_wait = constants.ack_wait_duration_s
        residual = max(0.0, ack_wait - turnaround)
        wake_lead = T_SHUTDOWN_TO_IDLE_POLICY_S
        margin = 56 * slot + frame_air + ack_wait
        txn_tail = frame_air + turnaround + ack_air
        horizon = superframes * interval
        max_transmissions = constants.max_transmissions
        max_backoffs = params.max_csma_backoffs
        contention_window = params.contention_window
        be0 = params.initial_backoff_exponent()
        be_cap = params.max_be
        if params.battery_life_extension:
            be_cap = min(be_cap, params.battery_life_extension_max_be)

        # ---- random streams (identical names to the event kernel) -------------
        streams = RandomStreams(self.seed)
        coordinator_rng = streams.get("coordinator")
        generators = [streams.get(f"device[{node.node_id}]")
                      for node in self.nodes]

        # ---- per-node traffic feeds (identical streams to the event kernel) ----
        from repro.network.traffic import SaturatedTraffic, make_node_sources
        traffic_model = self.traffic
        if traffic_model is None:
            traffic_model = SaturatedTraffic(payload_bytes=self.payload_bytes)
        sources = make_node_sources(
            traffic_model, [node.node_id for node in self.nodes], streams)

        # ---- per-device link/corruption constants -----------------------------
        programmed_dbm = [profile.tx_level(level).level_dbm
                          for level in self.tx_levels_dbm]
        packet_error = [node.link().packet_error_probability(level, frame.ppdu_bytes)
                        for node, level in zip(self.nodes, programmed_dbm)]

        # ---- lockstep device state ---------------------------------------------
        next_beacon = [0.0] * n        # beacon the device will synchronise to
        beacon_time = [0.0] * n        # beacon anchoring the running transaction
        cfp_start = [0.0] * n          # end of the CAP of that superframe
        attempt = [0] * n              # transmissions already spent this packet
        be = [be0] * n                 # backoff exponent
        nb = [0] * n                   # backoff stages used this attempt
        cw = [0] * n                   # remaining clear CCAs before transmit

        # ---- deferred-ledger accumulators --------------------------------------
        sleep_t = [0.0] * n            # shutdown dwell               (sleep)
        wake_beacon = [0] * n          # shutdown->idle transitions   (beacon)
        idle_beacon_t = [0.0] * n      # pre-beacon idle dwell        (beacon)
        beacon_rx = [0] * n            # beacon receptions            (beacon)
        wake_cont = [0] * n            # stagger wake-ups             (contention)
        idle_cont_t = [0.0] * n        # stagger + backoff idle dwell (contention)
        cca = [0] * n                  # clear channel assessments    (contention)
        tx = [0] * n                   # data-frame transmissions     (transmit)
        idle_ack_t = [0.0] * n         # turnaround idle dwell        (ackifs)
        ack_rx = [0] * n               # acknowledgements received    (ackifs)
        residual_rx = [0] * n          # full ack-wait timeouts       (ackifs)

        # ---- result counters ----------------------------------------------------
        attempted = [0] * n
        delivered = [0] * n
        failures = [0] * n
        delays: List[List[float]] = [[] for _ in range(n)]
        collision_count = 0
        phase_seen = {PHASE_BEACON: False, PHASE_CONTENTION: False,
                      PHASE_TRANSMIT: False, PHASE_ACK: False,
                      PHASE_SLEEP: False}

        # ---- medium state -------------------------------------------------------
        # Transmissions on air as [end_time, collided, device].  Starts are
        # chronological and every frame has the same airtime, so the list
        # stays sorted by end time and is pruned from the front; the device's
        # own reference survives pruning so the final collision status is
        # still readable when the frame completes.
        active: List[list] = []
        pending_tx: List[Optional[list]] = [None] * n

        heap: List[tuple] = []
        seq = 0

        def push(time: float, kind: int, index: int) -> None:
            nonlocal seq
            seq += 1
            heappush(heap, (time, seq, kind, index))

        def start_attempt(index: int, now: float) -> Optional[float]:
            """Draw the first backoff of a contention attempt starting at ``now``.

            Returns the deferral time when the first CCA would fall outside
            the CAP, ``None`` when a CCA sample was scheduled (or the device
            ran past the horizon mid-wait).
            """
            be[index] = be0
            nb[index] = 0
            cw[index] = contention_window
            delay = int(generators[index].integers(0, 1 << be0))
            if delay:
                idle_cont_t[index] += delay * slot
                phase_seen[PHASE_CONTENTION] = True
            cca_start = now + delay * slot
            if cca_start > horizon:
                return None
            if cca_start >= cfp_start[index]:
                return cca_start
            cca[index] += 1
            phase_seen[PHASE_CONTENTION] = True
            push(cca_start + slot, _EVENT_CCA_SAMPLE, index)
            return None

        def begin_superframes(index: int, now: float, initial: bool = False) -> None:
            """Advance a device from the end of one superframe's activity.

            Mirrors the kernel's per-superframe loop: sleep to the pre-beacon
            wake-up, receive the beacon, stagger, start the uplink
            transaction.  Iterates over superframes whose transaction defers
            before its first CCA; every charge is guarded by the simulated
            time at which the kernel would have made it.
            """
            while True:
                if not initial:
                    phase_seen[PHASE_SLEEP] = True   # idle->shutdown strobe
                initial = False
                beacon_at = next_beacon[index]
                wake = beacon_at - wake_lead
                if wake > now:
                    sleep_t[index] += wake - now
                else:
                    wake = now
                if wake > horizon:
                    return
                wake_beacon[index] += 1
                resume = wake
                startup_wait = beacon_at - wake
                if startup_wait > 0:
                    idle_beacon_t[index] += startup_wait
                    resume = beacon_at
                if resume > horizon:
                    return
                beacon_rx[index] += 1
                phase_seen[PHASE_BEACON] = True
                arrival = resume + beacon_air
                if arrival > horizon:
                    return
                # Poll the traffic feed at the superframe boundary, exactly
                # where the event kernel does: no buffered packet means the
                # device sleeps this superframe out after the beacon.
                if not sources[index].poll(beacon_at):
                    now = arrival
                    next_beacon[index] += interval
                    continue
                sources[index].drain_packet()
                cap_end = beacon_at + sf_duration
                latest_start = cap_end - margin
                start = arrival
                if latest_start > arrival + wake_lead:
                    phase_seen[PHASE_CONTENTION] = True
                    start = float(generators[index].uniform(
                        arrival + wake_lead, latest_start))
                    stagger_sleep = start - arrival - wake_lead
                    if stagger_sleep > 0:
                        phase_seen[PHASE_SLEEP] = True
                        sleep_t[index] += stagger_sleep
                        if start - wake_lead > horizon:
                            return
                        wake_cont[index] += 1
                    idle_cont_t[index] += wake_lead
                attempted[index] += 1
                attempt[index] = 0
                beacon_time[index] = beacon_at
                cfp_start[index] = cap_end
                deferred_at = start_attempt(index, start)
                if deferred_at is None:
                    return
                now = deferred_at
                next_beacon[index] += interval

        def end_transaction(index: int, now: float) -> None:
            next_beacon[index] += interval
            begin_superframes(index, now)

        for index in range(n):
            begin_superframes(index, 0.0, initial=True)

        # ---- interaction event loop --------------------------------------------
        while heap:
            now, _, kind, index = heappop(heap)
            if now > horizon:
                break
            while active and active[0][0] <= now:
                active.pop(0)

            if kind == _EVENT_CCA_SAMPLE:
                if active:  # channel busy at the sample instant
                    nb[index] += 1
                    be[index] = min(be[index] + 1, be_cap)
                    cw[index] = contention_window
                    if nb[index] > max_backoffs:
                        failures[index] += 1
                        end_transaction(index, now)
                        continue
                    delay = int(generators[index].integers(0, 1 << be[index]))
                    if delay:
                        idle_cont_t[index] += delay * slot
                    cca_start = now + delay * slot
                    if cca_start > horizon:
                        continue
                    if cca_start >= cfp_start[index]:
                        end_transaction(index, cca_start)
                        continue
                    cca[index] += 1
                    push(cca_start + slot, _EVENT_CCA_SAMPLE, index)
                    continue
                cw[index] -= 1
                if cw[index] > 0:  # second CCA of the contention window
                    if now >= cfp_start[index]:
                        end_transaction(index, now)
                        continue
                    cca[index] += 1
                    push(now + slot, _EVENT_CCA_SAMPLE, index)
                    continue
                # Channel clear twice: transmit, unless the transaction no
                # longer fits in the contention access period.
                if now + txn_tail > cfp_start[index]:
                    end_transaction(index, now)
                    continue
                tx[index] += 1
                phase_seen[PHASE_TRANSMIT] = True
                entry = [now + frame_air, False, index]
                if active:  # pragma: no cover - measure-zero with CCA sampling
                    entry[1] = True
                    for other in active:
                        other[1] = True
                    collision_count += 1
                active.append(entry)
                pending_tx[index] = entry
                push(now + frame_air, _EVENT_TX_END, index)
                continue

            # ---- data frame completed: acknowledgement decision ----------------
            phase_seen[PHASE_ACK] = True
            # Collision status is final: any collider must have started
            # strictly before the frame ended.
            entry = pending_tx[index]
            pending_tx[index] = None
            collided = entry[1]
            acked = False
            if not collided:
                acked = not (coordinator_rng.random() < packet_error[index])
            idle_ack_t[index] += turnaround
            ack_resume = now + turnaround
            if acked:
                ack_rx[index] += 1
                done = ack_resume + ack_air
                if done > horizon:
                    continue
                delivered[index] += 1
                delays[index].append(done - beacon_time[index])
                end_transaction(index, done)
                continue
            residual_rx[index] += 1
            retry_at = ack_resume + residual
            if retry_at > horizon:
                continue
            attempt[index] += 1
            if attempt[index] >= max_transmissions:
                end_transaction(index, retry_at)
                continue
            deferred_at = start_attempt(index, retry_at)
            if deferred_at is not None:
                end_transaction(index, deferred_at)

        # ---- numpy ledger reduction --------------------------------------------
        power_sd = profile.power_w(RadioState.SHUTDOWN)
        power_idle = profile.power_w(RadioState.IDLE)
        power_rx = profile.power_w(RadioState.RX)
        power_tx = np.array([profile.tx_power_w(level)
                             for level in programmed_dbm])
        startup = profile.transition(RadioState.SHUTDOWN, RadioState.IDLE)
        to_rx = profile.transition(RadioState.IDLE, RadioState.RX)
        to_tx = profile.transition(RadioState.IDLE, RadioState.TX)
        from_rx = profile.transition(RadioState.RX, RadioState.IDLE)
        from_tx = profile.transition(RadioState.TX, RadioState.IDLE)

        sleep_t = np.array(sleep_t)
        wake_beacon = np.array(wake_beacon)
        idle_beacon_t = np.array(idle_beacon_t)
        beacon_rx = np.array(beacon_rx)
        wake_cont = np.array(wake_cont)
        idle_cont_t = np.array(idle_cont_t)
        cca = np.array(cca)
        tx = np.array(tx)
        idle_ack_t = np.array(idle_ack_t)
        ack_rx = np.array(ack_rx)
        residual_rx = np.array(residual_rx)

        rx_round_e = to_rx.energy_j + from_rx.energy_j
        rx_round_t = to_rx.duration_s + from_rx.duration_s
        energy_beacon = (wake_beacon * startup.energy_j
                         + idle_beacon_t * power_idle
                         + beacon_rx * (rx_round_e + power_rx * beacon_air))
        energy_cont = (wake_cont * startup.energy_j
                       + idle_cont_t * power_idle
                       + cca * (rx_round_e + power_rx * slot))
        energy_tx = tx * (to_tx.energy_j + from_tx.energy_j) \
            + tx * power_tx * frame_air
        energy_ack = (idle_ack_t * power_idle
                      + ack_rx * (rx_round_e + power_rx * ack_air)
                      + residual_rx * (rx_round_e + power_rx * residual))
        energy_sleep = sleep_t * power_sd
        energy = (energy_beacon + energy_cont + energy_tx + energy_ack
                  + energy_sleep)
        elapsed = (sleep_t
                   + (wake_beacon + wake_cont) * startup.duration_s
                   + idle_beacon_t + idle_cont_t + idle_ack_t
                   + beacon_rx * (rx_round_t + beacon_air)
                   + cca * (rx_round_t + slot)
                   + tx * (to_tx.duration_s + from_tx.duration_s + frame_air)
                   + ack_rx * (rx_round_t + ack_air)
                   + residual_rx * (rx_round_t + residual))
        powers = energy / np.maximum(elapsed, 1e-12)

        phase_energy: Dict[str, float] = {}
        for phase, total in ((PHASE_BEACON, energy_beacon),
                             (PHASE_CONTENTION, energy_cont),
                             (PHASE_TRANSMIT, energy_tx),
                             (PHASE_ACK, energy_ack),
                             (PHASE_SLEEP, energy_sleep)):
            if phase_seen[phase]:
                phase_energy[phase] = float(np.sum(total))

        all_delays = [delay for per_device in delays for delay in per_device]
        return SimulationSummary(
            simulated_time_s=horizon,
            node_count=n,
            superframes=superframes,
            packets_attempted=int(sum(attempted)),
            packets_delivered=int(sum(delivered)),
            channel_access_failures=int(sum(failures)),
            collisions=collision_count,
            mean_node_power_w=float(np.mean(powers)),
            mean_delivery_delay_s=(float(np.mean(all_delays))
                                   if all_delays else None),
            energy_by_phase_j=phase_energy,
        )
