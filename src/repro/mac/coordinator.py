"""Coordinator-side MAC entity for the packet-level simulation.

The coordinator (the base station of the sensor network) emits a beacon at
every beacon interval, receives uplink data frames, returns acknowledgements
after ``aTurnaroundTime``, manages the indirect-transmission queue for the
downlink and the GTS allocations.  Its own energy is not the object of the
paper's study (the base station is mains powered), so no energy ledger is
attached to it; its role in the simulation is to generate the superframe
timing and to decide which uplink frames are successfully received.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.channel.awgn import AwgnLink
from repro.mac.constants import MAC_2450MHZ, MacConstants
from repro.mac.frames import AckFrame, BeaconFrame, DataFrame
from repro.mac.gts import GtsManager
from repro.mac.indirect import IndirectQueue
from repro.mac.medium import Medium, Transmission
from repro.mac.superframe import Superframe, SuperframeConfig
from repro.sim.engine import Environment
from repro.sim.monitor import CounterMonitor


@dataclass
class ReceivedPacket:
    """Record of one uplink frame accepted by the coordinator."""

    source: int
    payload_bytes: int
    received_at_s: float
    transmission_count: int


class Coordinator:
    """PAN coordinator of a beacon-enabled star network.

    Parameters
    ----------
    env:
        Simulation environment.
    medium:
        The RF channel this coordinator manages.
    config:
        Superframe configuration (BO, SO).
    constants:
        MAC constants.
    links:
        Optional per-node AWGN links (node id -> :class:`AwgnLink`) used to
        decide bit-error corruption of received frames; frames from unknown
        nodes are assumed error-free (collisions still destroy them).
    rng:
        Random generator for corruption draws.
    """

    COORDINATOR_ID = 0

    def __init__(self, env: Environment, medium: Medium,
                 config: SuperframeConfig,
                 constants: MacConstants = MAC_2450MHZ,
                 links: Optional[Dict[int, AwgnLink]] = None,
                 rng: Optional[np.random.Generator] = None):
        self.env = env
        self.medium = medium
        self.config = config
        self.constants = constants
        self.links = links or {}
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.gts = GtsManager(num_superframe_slots=constants.num_superframe_slots)
        self.indirect = IndirectQueue()
        self.counters = CounterMonitor("coordinator")
        self.received: List[ReceivedPacket] = []
        self.current_superframe: Optional[Superframe] = None
        self._beacon_listeners: List[Callable[[Superframe], None]] = []
        self._sequence_number = 0
        self._process = None

    # -- wiring -------------------------------------------------------------------
    def add_beacon_listener(self, callback: Callable[[Superframe], None]) -> None:
        """Register a callback invoked at the start of every beacon."""
        self._beacon_listeners.append(callback)

    def start(self) -> None:
        """Launch the beacon process."""
        if self._process is None:
            self._process = self.env.process(self._beacon_loop())

    # -- beacon generation -----------------------------------------------------------
    def build_beacon(self) -> BeaconFrame:
        """Construct the beacon frame for the upcoming superframe."""
        pending = self.indirect.pending_addresses()
        beacon = BeaconFrame(
            source=self.COORDINATOR_ID,
            sequence_number=self._next_sequence(),
            beacon_order=self.config.beacon_order,
            superframe_order=self.config.superframe_order,
            gts_descriptors=len(self.gts.descriptors),
            pending_short_addresses=tuple(pending),
        )
        return beacon

    def _next_sequence(self) -> int:
        self._sequence_number = (self._sequence_number + 1) % 256
        return self._sequence_number

    def _beacon_loop(self):
        byte_period = self.constants.timing.byte_period_s
        while True:
            beacon = self.build_beacon()
            beacon_airtime = beacon.airtime_s(byte_period)
            superframe = Superframe(self.config, beacon_time_s=self.env.now,
                                    gts_descriptors=self.gts.descriptors,
                                    beacon_airtime_s=beacon_airtime)
            self.current_superframe = superframe
            self.counters.increment("beacons_sent")
            self.medium.start_transmission(
                source=self.COORDINATOR_ID,
                duration_s=beacon_airtime,
                frame=beacon,
                tx_power_dbm=0.0,
            )
            for listener in self._beacon_listeners:
                listener(superframe)
            yield self.env.timeout(self.config.beacon_interval_s)

    # -- uplink reception ---------------------------------------------------------------
    def frame_received(self, transmission: Transmission,
                       transmission_count: int) -> bool:
        """Decide whether an uplink data frame is accepted.

        A frame is lost if it collided on the medium, or if the AWGN link of
        its source corrupts it (bit errors).  Returns ``True`` when the
        coordinator will acknowledge the frame.
        """
        frame = transmission.frame
        if not isinstance(frame, DataFrame):
            return False
        self.counters.increment("data_frames_seen")
        if transmission.collided:
            self.counters.increment("collisions")
            return False
        link = self.links.get(transmission.source)
        if link is not None:
            corrupted = link.packet_is_corrupted(
                transmission.tx_power_dbm, frame.ppdu_bytes, self.rng)
            if corrupted:
                self.counters.increment("corrupted_frames")
                return False
        self.counters.increment("data_frames_accepted")
        self.received.append(ReceivedPacket(
            source=transmission.source,
            payload_bytes=frame.payload_bytes,
            received_at_s=self.env.now,
            transmission_count=transmission_count,
        ))
        return True

    def build_ack(self, data_frame: DataFrame) -> AckFrame:
        """Acknowledgement frame echoing the data frame's sequence number."""
        return AckFrame(source=self.COORDINATOR_ID,
                        destination=data_frame.source,
                        sequence_number=data_frame.sequence_number)

    # -- downlink -------------------------------------------------------------------------
    def queue_downlink(self, destination: int, payload: bytes) -> None:
        """Buffer a downlink frame for indirect transmission."""
        self.indirect.enqueue(destination, payload, self.env.now)
        self.counters.increment("downlink_queued")

    def has_pending_downlink(self, destination: int) -> bool:
        """Whether the beacon would advertise pending data for ``destination``."""
        return self.indirect.has_pending(destination)

    def handle_data_request(self, destination: int):
        """Process a data-request command from ``destination``.

        Returns the :class:`DataFrame` the coordinator will transmit, or
        ``None`` when nothing is pending (the device then only receives the
        acknowledgement of its request).
        """
        self.counters.increment("data_requests_received")
        transaction = self.indirect.extract(destination)
        if transaction is None:
            return None
        self.counters.increment("downlink_delivered")
        return DataFrame(
            source=self.COORDINATOR_ID,
            destination=destination,
            sequence_number=self._next_sequence(),
            ack_request=True,
            payload=transaction.payload,
        )
