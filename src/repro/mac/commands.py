"""MAC command frames and the association / data-request procedures.

The beacon-enabled star network of the paper implicitly relies on MAC
management services the evaluation does not spell out but the standard
requires: a node must *associate* with the coordinator before it may use a
short address, and downlink data is pulled with a *data request* command
(the indirect transmission of Figure 1b).  This module provides

* the command frame formats (association request/response, data request,
  disassociation notification) with byte-accurate sizes, and
* :class:`AssociationService`, the coordinator-side bookkeeping that hands
  out short addresses and answers association requests — used by the
  coordinator entity and by the examples, and exercising the indirect queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.mac.frames import (
    FCS_BYTES,
    FRAME_CONTROL_BYTES,
    FrameType,
    MacFrame,
    SEQUENCE_NUMBER_BYTES,
)

#: Broadcast short address (not yet associated).
BROADCAST_SHORT_ADDRESS = 0xFFFF
#: Short address meaning "use the 64-bit extended address".
NO_SHORT_ADDRESS = 0xFFFE


class CommandType(Enum):
    """MAC command identifiers (subset used by the star network)."""

    ASSOCIATION_REQUEST = 0x01
    ASSOCIATION_RESPONSE = 0x02
    DISASSOCIATION_NOTIFICATION = 0x03
    DATA_REQUEST = 0x04
    BEACON_REQUEST = 0x07


class AssociationStatus(Enum):
    """Status codes of the association response."""

    SUCCESS = 0x00
    PAN_AT_CAPACITY = 0x01
    PAN_ACCESS_DENIED = 0x02


@dataclass
class CommandFrame(MacFrame):
    """A MAC command frame.

    The command payload is one identifier byte plus command-specific fields;
    addressing uses the extended (64-bit) source address before association
    and the short address afterwards — the sizes below follow the standard's
    field lists for each command.
    """

    command: CommandType = CommandType.DATA_REQUEST

    #: Command-specific payload bytes (excluding the command identifier).
    _COMMAND_PAYLOAD_BYTES = {
        CommandType.ASSOCIATION_REQUEST: 1,        # capability information
        CommandType.ASSOCIATION_RESPONSE: 3,       # short address + status
        CommandType.DISASSOCIATION_NOTIFICATION: 1,
        CommandType.DATA_REQUEST: 0,
        CommandType.BEACON_REQUEST: 0,
    }

    def __post_init__(self):
        super().__post_init__()
        self.frame_type = FrameType.COMMAND

    @property
    def payload_bytes(self) -> int:
        """Command identifier plus command-specific fields."""
        return 1 + self._COMMAND_PAYLOAD_BYTES[self.command]


@dataclass
class AssociationRecord:
    """One associated device as seen by the coordinator."""

    extended_address: int
    short_address: int
    associated_at_s: float
    rx_on_when_idle: bool = False


class AssociationService:
    """Coordinator-side association bookkeeping.

    Parameters
    ----------
    capacity:
        Maximum number of devices the coordinator accepts (the paper's
        coordinator must handle several hundred).
    first_short_address:
        First short address handed out (1; 0 is the coordinator itself).
    """

    def __init__(self, capacity: int = 1000, first_short_address: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if first_short_address < 1:
            raise ValueError("first_short_address must be >= 1 (0 is the coordinator)")
        self.capacity = capacity
        self._next_short = first_short_address
        self._by_extended: Dict[int, AssociationRecord] = {}
        self._by_short: Dict[int, AssociationRecord] = {}

    # -- queries -------------------------------------------------------------------
    @property
    def device_count(self) -> int:
        """Number of currently associated devices."""
        return len(self._by_extended)

    def is_associated(self, extended_address: int) -> bool:
        """Whether a device (by extended address) is associated."""
        return extended_address in self._by_extended

    def record_for_short(self, short_address: int) -> Optional[AssociationRecord]:
        """The association record owning ``short_address``, if any."""
        return self._by_short.get(short_address)

    # -- procedures -----------------------------------------------------------------
    def handle_association_request(self, extended_address: int, now_s: float,
                                   rx_on_when_idle: bool = False
                                   ) -> tuple:
        """Process an association request.

        Returns ``(AssociationStatus, short_address_or_None)``.  Re-association
        of an already known device returns its existing short address.
        """
        if extended_address in self._by_extended:
            record = self._by_extended[extended_address]
            return AssociationStatus.SUCCESS, record.short_address
        if self.device_count >= self.capacity:
            return AssociationStatus.PAN_AT_CAPACITY, None
        short = self._next_short
        self._next_short += 1
        record = AssociationRecord(
            extended_address=extended_address,
            short_address=short,
            associated_at_s=now_s,
            rx_on_when_idle=rx_on_when_idle,
        )
        self._by_extended[extended_address] = record
        self._by_short[short] = record
        return AssociationStatus.SUCCESS, short

    def handle_disassociation(self, extended_address: int) -> bool:
        """Process a disassociation notification.

        Returns ``True`` if the device was associated.
        """
        record = self._by_extended.pop(extended_address, None)
        if record is None:
            return False
        self._by_short.pop(record.short_address, None)
        return True

    # -- frame builders ------------------------------------------------------------------
    @staticmethod
    def build_association_request(extended_address: int) -> CommandFrame:
        """The association request a device sends (extended addressing)."""
        return CommandFrame(command=CommandType.ASSOCIATION_REQUEST,
                            source=extended_address, destination=0,
                            ack_request=True)

    @staticmethod
    def build_association_response(short_address: int,
                                   status: AssociationStatus) -> CommandFrame:
        """The association response delivered by indirect transmission."""
        frame = CommandFrame(command=CommandType.ASSOCIATION_RESPONSE,
                             source=0, destination=short_address,
                             ack_request=True)
        frame.status = status
        return frame

    @staticmethod
    def build_data_request(short_address: int) -> CommandFrame:
        """The data-request command a device sends to pull pending data."""
        return CommandFrame(command=CommandType.DATA_REQUEST,
                            source=short_address, destination=0,
                            ack_request=True)
