"""Guaranteed time slot (GTS) management.

The beacon-enabled superframe may dedicate up to seven slots at its tail to
specific devices (the contention-free period).  The paper points out that
GTS does not scale to dense networks — seven slots cannot serve hundreds of
nodes — but the mechanism is part of the standard and is implemented here so
that (a) the beacon size accounting is exact when descriptors are present
and (b) the ablation benchmarks can quantify the scaling argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Maximum number of GTS descriptors a coordinator may allocate.
MAX_GTS_DESCRIPTORS = 7


@dataclass(frozen=True)
class GtsDescriptor:
    """One guaranteed time slot allocation.

    Attributes
    ----------
    device:
        Short address of the device owning the slot(s).
    starting_slot:
        Index (0..15) of the first superframe slot of the allocation.
    length_slots:
        Number of consecutive superframe slots allocated.
    direction_tx:
        ``True`` for a transmit GTS (device -> coordinator), ``False`` for a
        receive GTS.
    """

    device: int
    starting_slot: int
    length_slots: int
    direction_tx: bool = True

    def __post_init__(self):
        if not 0 <= self.starting_slot <= 15:
            raise ValueError("starting_slot must lie in 0..15")
        if self.length_slots < 1:
            raise ValueError("A GTS must span at least one slot")
        if self.starting_slot + self.length_slots > 16:
            raise ValueError("GTS allocation exceeds the superframe")


class GtsManager:
    """Coordinator-side GTS allocation bookkeeping.

    Parameters
    ----------
    num_superframe_slots:
        Slots per superframe (16).
    min_cap_slots:
        Minimum number of slots that must remain in the contention access
        period (the standard requires the CAP to stay at least
        ``aMinCAPLength`` = 440 symbols; with SO = BO >= 0 this is satisfied
        by keeping at least one slot free — a stricter bound can be passed).
    """

    def __init__(self, num_superframe_slots: int = 16, min_cap_slots: int = 9):
        if not 1 <= min_cap_slots <= num_superframe_slots:
            raise ValueError("min_cap_slots must lie in 1..num_superframe_slots")
        self.num_superframe_slots = num_superframe_slots
        self.min_cap_slots = min_cap_slots
        self._allocations: Dict[int, GtsDescriptor] = {}

    # -- queries -----------------------------------------------------------------
    @property
    def descriptors(self) -> List[GtsDescriptor]:
        """Current allocations ordered by starting slot (descending start)."""
        return sorted(self._allocations.values(),
                      key=lambda d: d.starting_slot, reverse=True)

    @property
    def allocated_slots(self) -> int:
        """Total superframe slots currently dedicated to GTS."""
        return sum(d.length_slots for d in self._allocations.values())

    @property
    def first_cfp_slot(self) -> int:
        """Index of the first slot of the contention-free period."""
        return self.num_superframe_slots - self.allocated_slots

    def allocation_for(self, device: int) -> Optional[GtsDescriptor]:
        """The allocation of ``device``, if any."""
        return self._allocations.get(device)

    def capacity_remaining(self) -> int:
        """How many more slots could still be allocated."""
        by_descriptor_count = MAX_GTS_DESCRIPTORS - len(self._allocations)
        if by_descriptor_count <= 0:
            return 0
        by_cap = (self.num_superframe_slots - self.min_cap_slots
                  - self.allocated_slots)
        return max(0, by_cap)

    # -- allocation ---------------------------------------------------------------
    def request(self, device: int, length_slots: int,
                direction_tx: bool = True) -> GtsDescriptor:
        """Handle a GTS request.

        Raises
        ------
        ValueError
            If the device already holds a GTS, the descriptor budget is
            exhausted, or the CAP would shrink below the minimum.
        """
        if device in self._allocations:
            raise ValueError(f"Device {device} already owns a GTS")
        if len(self._allocations) >= MAX_GTS_DESCRIPTORS:
            raise ValueError("All seven GTS descriptors are already allocated")
        if length_slots < 1:
            raise ValueError("A GTS request must ask for at least one slot")
        if length_slots > self.capacity_remaining():
            raise ValueError(
                f"GTS request of {length_slots} slot(s) would shrink the CAP "
                f"below {self.min_cap_slots} slots")
        starting_slot = self.first_cfp_slot - length_slots
        descriptor = GtsDescriptor(device=device, starting_slot=starting_slot,
                                   length_slots=length_slots,
                                   direction_tx=direction_tx)
        self._allocations[device] = descriptor
        return descriptor

    def release(self, device: int) -> None:
        """Deallocate the GTS of ``device`` and repack the CFP.

        Raises
        ------
        KeyError
            If ``device`` holds no GTS.
        """
        if device not in self._allocations:
            raise KeyError(f"Device {device} owns no GTS")
        del self._allocations[device]
        self._repack()

    def _repack(self) -> None:
        """Re-assign starting slots so the CFP stays contiguous at the tail."""
        next_start = self.num_superframe_slots
        repacked: Dict[int, GtsDescriptor] = {}
        for descriptor in sorted(self._allocations.values(),
                                 key=lambda d: d.starting_slot, reverse=True):
            next_start -= descriptor.length_slots
            repacked[descriptor.device] = GtsDescriptor(
                device=descriptor.device,
                starting_slot=next_start,
                length_slots=descriptor.length_slots,
                direction_tx=descriptor.direction_tx,
            )
        self._allocations = repacked

    # -- scaling analysis -----------------------------------------------------------
    def max_devices_servable(self, slots_per_device: int = 1) -> int:
        """How many devices could get a GTS of ``slots_per_device`` slots.

        This is the quantitative form of the paper's argument that GTS "does
        not fit well in a dense sensor network": the answer is at most 7
        regardless of slot length, versus hundreds of contending nodes.
        """
        if slots_per_device < 1:
            raise ValueError("slots_per_device must be >= 1")
        by_slots = (self.num_superframe_slots - self.min_cap_slots) // slots_per_device
        return min(MAX_GTS_DESCRIPTORS, by_slots)
