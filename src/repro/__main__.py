"""``python -m repro`` — the experiment engine CLI.

See :mod:`repro.runner.cli` for commands and options.
"""

import sys

from repro.runner.cli import main

if __name__ == "__main__":
    sys.exit(main())
