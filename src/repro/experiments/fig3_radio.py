"""EXP-F3 — Figure 3: CC2420 state powers, transition times and energies.

Figure 3 of the paper is a measurement summary; the reproduction encodes the
published numbers in :data:`repro.radio.power_profile.CC2420_PROFILE` and
this experiment verifies the *derived* quantities the rest of the model
relies on: power = current x VDD per state, the worst-case transition
energy rule (time x arrival-state power), and the idle-power-versus-100 µW
observation the paper makes ("the idle state power of 712 µW is already 7
times higher than the average power goal of 100 µW").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.radio.power_profile import CC2420_PROFILE, RadioPowerProfile
from repro.radio.states import RadioState

#: The paper's stated values (Figure 3), used as the comparison baseline.
PAPER_STATE_POWER_W = {
    RadioState.SHUTDOWN: 144e-9,
    RadioState.IDLE: 712e-6,
    RadioState.RX: 35.28e-3,
}
PAPER_TX_CURRENT_A = {
    -25.0: 8.42e-3, -15.0: 9.71e-3, -10.0: 10.9e-3, -7.0: 12.17e-3,
    -5.0: 12.27e-3, -3.0: 14.63e-3, -1.0: 15.785e-3, 0.0: 17.04e-3,
}
PAPER_SHUTDOWN_IDLE_TIME_S = 970e-6
PAPER_SHUTDOWN_IDLE_ENERGY_J = 691e-12
PAPER_IDLE_ACTIVE_TIME_S = 194e-6
PAPER_IDLE_ACTIVE_ENERGY_J = 6.63e-6
PAPER_POWER_GOAL_W = 100e-6
#: The paper's literal observation: idle power is ~7x the 100 uW
#: energy-scavenging budget.
PAPER_IDLE_GOAL_RATIO = 7.0


@dataclass
class Fig3Result:
    """Output of the Figure 3 experiment."""

    report: ExperimentReport
    state_table: str
    transition_table: str
    tx_level_table: str


def run_fig3_radio_characterization(
        profile: RadioPowerProfile = CC2420_PROFILE,
        power_goal_w: float = PAPER_POWER_GOAL_W) -> Fig3Result:
    """Regenerate the Figure 3 tables and compare against the paper.

    ``power_goal_w`` sets the energy-scavenging budget the idle power is
    compared against; the paper's observation uses 100 µW, and the expected
    ratio scales with the configured goal (712 µW idle / goal).
    """
    report = ExperimentReport(
        experiment_id="EXP-F3",
        title="CC2420 steady-state and transient characterisation (Figure 3)",
    )

    # ---- steady-state powers -------------------------------------------------------
    for state, paper_power in PAPER_STATE_POWER_W.items():
        report.add(
            quantity=f"{state.value} power [W]",
            paper_value=paper_power,
            measured_value=profile.power_w(state),
            tolerance=0.01,
        )
    # The paper value anchors on the *stated* 7.0 ratio (at the paper's
    # 100 uW goal), rescaled when the goal is overridden — it must never be
    # derived from the same expression as the measurement, or the
    # comparison would be vacuously within tolerance.
    report.add(
        quantity=f"idle power / {power_goal_w * 1e6:g} uW scavenging goal",
        paper_value=PAPER_IDLE_GOAL_RATIO * (PAPER_POWER_GOAL_W
                                             / power_goal_w),
        measured_value=profile.power_w(RadioState.IDLE) / power_goal_w,
        tolerance=0.05,
        note="the paper notes idle alone is ~7x the energy-scavenging budget",
    )

    # ---- transmit levels --------------------------------------------------------------
    for level_dbm, paper_current in PAPER_TX_CURRENT_A.items():
        measured = profile.tx_level(level_dbm).supply_current_a
        report.add(
            quantity=f"TX current at {level_dbm:g} dBm [A]",
            paper_value=paper_current,
            measured_value=measured,
            tolerance=0.01,
        )

    # ---- transitions ---------------------------------------------------------------------
    shutdown_idle = profile.transition(RadioState.SHUTDOWN, RadioState.IDLE)
    idle_rx = profile.transition(RadioState.IDLE, RadioState.RX)
    idle_tx = profile.transition(RadioState.IDLE, RadioState.TX)
    report.add("shutdown->idle time [s]", PAPER_SHUTDOWN_IDLE_TIME_S,
               shutdown_idle.duration_s, tolerance=0.01)
    report.add("shutdown->idle energy [J]", PAPER_SHUTDOWN_IDLE_ENERGY_J,
               shutdown_idle.energy_j, tolerance=0.01)
    report.add("idle->rx time [s]", PAPER_IDLE_ACTIVE_TIME_S,
               idle_rx.duration_s, tolerance=0.01)
    report.add("idle->rx energy [J]", PAPER_IDLE_ACTIVE_ENERGY_J,
               idle_rx.energy_j, tolerance=0.05,
               note="worst case: transition time x receive power")
    report.add("idle->tx energy [J]", PAPER_IDLE_ACTIVE_ENERGY_J,
               idle_tx.energy_j, tolerance=0.15,
               note="paper quotes 6.63 uJ for both active transitions; at "
                    "0 dBm the TX arrival power is slightly lower than RX")

    # ---- tables ------------------------------------------------------------------------------
    state_rows = [
        [state.value, profile.power_w(state) if state is not RadioState.TX
         else profile.tx_power_w()] for state in RadioState]
    state_table = format_table(["state", "power [W]"], state_rows,
                               title="Steady-state power")
    transition_rows = [
        [t.source.value, t.target.value, t.duration_s, t.energy_j]
        for t in profile.transitions.values()]
    transition_table = format_table(
        ["from", "to", "time [s]", "energy [J]"], transition_rows,
        title="State transitions")
    tx_rows = [[level.level_dbm, level.supply_current_a,
                level.power_w(profile.vdd_v)] for level in profile.tx_levels]
    tx_level_table = format_table(
        ["TX level [dBm]", "current [A]", "power [W]"], tx_rows,
        title="Transmit power levels")

    return Fig3Result(report=report, state_table=state_table,
                      transition_table=transition_table,
                      tx_level_table=tx_level_table)
