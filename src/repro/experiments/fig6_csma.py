"""EXP-F6 — Figure 6: behaviour of the slotted CSMA/CA algorithm.

Figure 6 plots, for packet payloads of 10, 20, 50 and 100 bytes, the
empirically characterised contention quantities as functions of the network
load: average contention time, average number of CCAs, residual collision
probability and channel access failure probability.  The paper prints no
numeric values, so the comparison is structural:

* all four quantities grow with the load,
* at fixed load, smaller packets (more transmissions for the same load)
  collide more often, and
* at the case-study operating point (λ ≈ 0.42, 133 bytes on air) the channel
  access failure probability must be consistent with the paper's 16 %
  transaction failure figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.series import Series, SeriesCollection
from repro.contention.monte_carlo import ContentionSimulator
from repro.contention.statistics import ContentionStatistics
from repro.mac.frames import total_packet_overhead_bytes

#: Payload sizes of Figure 6 (bytes of application data).
FIGURE6_PAYLOADS = (10, 20, 50, 100)


@dataclass
class Fig6Result:
    """Output of the Figure 6 experiment."""

    report: ExperimentReport
    contention_time: SeriesCollection
    cca_count: SeriesCollection
    collision_probability: SeriesCollection
    access_failure_probability: SeriesCollection
    statistics: Dict[int, List[ContentionStatistics]]


def run_fig6_csma(loads: Optional[Sequence[float]] = None,
                  payload_sizes: Sequence[int] = FIGURE6_PAYLOADS,
                  num_windows: int = 12,
                  num_nodes: int = 100,
                  seed: int = 2005) -> Fig6Result:
    """Regenerate the four panels of Figure 6."""
    if loads is None:
        loads = [0.1, 0.2, 0.3, 0.42, 0.6, 0.8]
    loads = [float(l) for l in loads]
    overhead = total_packet_overhead_bytes()
    simulator = ContentionSimulator(num_nodes=num_nodes, seed=seed)

    def collection(title: str, y_name: str) -> SeriesCollection:
        return SeriesCollection(title=title, x_name="network load",
                                y_name=y_name)

    contention_time = collection("Figure 6a: average contention time", "T_cont [s]")
    cca_count = collection("Figure 6b: average number of CCAs", "N_CCA")
    collision = collection("Figure 6c: residual collision probability", "Pr_col")
    access_failure = collection("Figure 6d: channel access failure probability",
                                "Pr_cf")

    statistics: Dict[int, List[ContentionStatistics]] = {}
    for payload in payload_sizes:
        on_air = payload + overhead
        stats = simulator.sweep_loads(loads, on_air, num_windows=num_windows)
        statistics[payload] = stats
        label = f"{payload} B payload"
        x = np.array(loads)
        contention_time.add(Series(label, x,
                                   [s.mean_contention_time_s for s in stats]))
        cca_count.add(Series(label, x, [s.mean_cca_count for s in stats]))
        collision.add(Series(label, x, [s.collision_probability for s in stats]))
        access_failure.add(Series(label, x,
                                  [s.channel_access_failure_probability for s in stats]))

    # ---- structural checks -------------------------------------------------------------
    report = ExperimentReport(
        experiment_id="EXP-F6",
        title="Slotted CSMA/CA behaviour vs load and packet size (Figure 6)",
    )
    for payload, stats in statistics.items():
        low = stats[0]
        high = stats[-1]
        report.add(
            quantity=f"Pr_cf growth with load ({payload} B), high/low ratio",
            paper_value=None,
            measured_value=(high.channel_access_failure_probability
                            / max(low.channel_access_failure_probability, 1e-9)),
            note="must exceed 1: contention degrades with load",
        )
        report.add(
            quantity=f"N_CCA at max load ({payload} B)",
            paper_value=None,
            measured_value=high.mean_cca_count,
            note="between 2 (always clear) and 6 (paper CSMA convention)",
        )

    # Collision probability should be larger for smaller packets at fixed load.
    mid_index = loads.index(0.42) if 0.42 in loads else len(loads) // 2
    small = statistics[min(payload_sizes)][mid_index].collision_probability
    large = statistics[max(payload_sizes)][mid_index].collision_probability
    report.add(
        quantity="Pr_col small packets / large packets at lambda~0.42",
        paper_value=None,
        measured_value=small / max(large, 1e-9),
        note="smaller packets collide more often for the same load",
    )
    # Consistency with the case-study failure figure.
    case_point = ContentionSimulator(num_nodes=num_nodes, seed=seed) \
        .characterize(0.42, 133, num_windows=num_windows)
    report.add(
        quantity="Pr_cf at case-study point (lambda=0.42, 133 B)",
        paper_value=0.16,
        measured_value=case_point.channel_access_failure_probability,
        tolerance=0.5,
        note="the paper's 16 % transaction failure is dominated by Pr_cf",
    )

    return Fig6Result(
        report=report,
        contention_time=contention_time,
        cca_count=cca_count,
        collision_probability=collision,
        access_failure_probability=access_failure,
        statistics=statistics,
    )
