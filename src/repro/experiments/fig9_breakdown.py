"""EXP-F9 — Figure 9: energy and time breakdowns of the case study.

Figure 9a breaks the active energy per bit into the protocol phases
(beacon ~20 %, contention ~25 %, transmit < 50 %, ACK/IFS ~15 %); Figure 9b
breaks the inter-beacon period into the radio-state occupancies
(shutdown 98.77 %, idle 0.47 %, transmit 0.48 %, receive 0.28 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.core.case_study import CaseStudy, CaseStudyResult
from repro.core.energy_model import (
    EnergyModel,
    PHASE_ACK,
    PHASE_BEACON,
    PHASE_CONTENTION,
    PHASE_TRANSMIT,
)
from repro.experiments.common import default_model
from repro.radio.states import RadioState

#: Paper values (Figure 9a), as fractions of the active energy.
PAPER_ENERGY_FRACTIONS = {
    PHASE_BEACON: 0.20,
    PHASE_CONTENTION: 0.25,
    PHASE_TRANSMIT: 0.47,
    PHASE_ACK: 0.15,
}
#: Paper values (Figure 9b), as fractions of the inter-beacon period.
PAPER_TIME_FRACTIONS = {
    RadioState.SHUTDOWN: 0.9877,
    RadioState.IDLE: 0.0047,
    RadioState.TX: 0.0048,
    RadioState.RX: 0.0028,
}


@dataclass
class Fig9Result:
    """Output of the Figure 9 experiment."""

    report: ExperimentReport
    case_study: CaseStudyResult
    energy_table: str
    time_table: str


def run_fig9_breakdown(model: Optional[EnergyModel] = None,
                       path_loss_resolution: int = 41) -> Fig9Result:
    """Regenerate the Figure 9 breakdowns from the case-study scenario."""
    model = model or default_model()
    study = CaseStudy(model=model, path_loss_resolution=path_loss_resolution)
    result = study.run()

    report = ExperimentReport(
        experiment_id="EXP-F9",
        title="Energy per phase and time per state breakdowns (Figure 9)",
    )
    for phase, paper_fraction in PAPER_ENERGY_FRACTIONS.items():
        report.add(
            quantity=f"energy share of {phase}",
            paper_value=paper_fraction,
            measured_value=result.energy_breakdown.fraction(phase),
            tolerance=0.45,
        )
    report.add(
        quantity="transmit is largest share but stays near/below half (1 = yes)",
        paper_value=1.0,
        measured_value=1.0 if result.energy_breakdown.fraction(PHASE_TRANSMIT) < 0.55
        else 0.0,
        tolerance=0.0,
        note="the paper stresses that (not much more than) half the energy "
             "goes to actual data transmission; the reproduced share depends "
             "on the re-simulated contention statistics",
    )
    for state, paper_fraction in PAPER_TIME_FRACTIONS.items():
        report.add(
            quantity=f"time share of {state.value}",
            paper_value=paper_fraction,
            measured_value=result.time_breakdown.fraction(state),
            tolerance=0.6 if state is not RadioState.SHUTDOWN else 0.01,
        )

    energy_table = format_table(
        ["phase", "share [%]"],
        [[phase, 100.0 * share]
         for phase, share in result.energy_breakdown.fractions.items()],
        title="Figure 9a: energy breakdown (active energy)")
    time_table = format_table(
        ["state", "share [%]"],
        [[state.value, 100.0 * share]
         for state, share in result.time_breakdown.fractions.items()],
        title="Figure 9b: time breakdown (inter-beacon period)")

    return Fig9Result(report=report, case_study=result,
                      energy_table=energy_table, time_table=time_table)
