"""EXP-IMP — improvement perspectives (Section 5/6).

The paper estimates that halving the state transition times reduces the
case-study average power by ~12 %, and that a scalable receiver with a
low-power mode for channel sensing and acknowledgement waiting saves an
additional ~15 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.core.case_study import CaseStudy, CaseStudyParameters
from repro.core.energy_model import EnergyModel
from repro.core.improvements import ImprovementResult
from repro.experiments.common import default_model

#: Savings stated by the paper.
PAPER_TRANSITION_SAVING = 0.12
PAPER_SCALABLE_RX_SAVING = 0.15


@dataclass
class ImprovementsExperimentResult:
    """Output of the improvement-perspectives experiment."""

    report: ExperimentReport
    results: List[ImprovementResult]
    table: str


def run_improvements(model: Optional[EnergyModel] = None,
                     parameters: Optional[CaseStudyParameters] = None,
                     path_loss_resolution: int = 31,
                     transition_factor: float = 0.5,
                     rx_scale: float = 0.5) -> ImprovementsExperimentResult:
    """Quantify both improvement perspectives on the case-study scenario."""
    model = model or default_model()
    study = CaseStudy(model=model, parameters=parameters,
                      path_loss_resolution=path_loss_resolution)
    results = study.improvements(transition_factor=transition_factor,
                                 rx_scale=rx_scale)

    by_name = {result.name: result for result in results}
    transition_result = by_name[f"transitions x{transition_factor:g}"]
    scalable_result = by_name[f"scalable receiver x{rx_scale:g}"]
    combined_result = by_name["combined"]

    report = ExperimentReport(
        experiment_id="EXP-IMP",
        title="Improvement perspectives: faster transitions and scalable receiver",
    )
    report.add("saving from halving transition times", PAPER_TRANSITION_SAVING,
               transition_result.relative_saving, tolerance=0.5)
    report.add("saving from the scalable receiver", PAPER_SCALABLE_RX_SAVING,
               scalable_result.relative_saving, tolerance=0.5)
    report.add("combined saving", None, combined_result.relative_saving,
               note="both improvements applied together")
    report.add("baseline average power [W]", 211e-6,
               by_name["baseline"].average_power_w, tolerance=0.25)

    table = format_table(
        ["variant", "average power [uW]", "saving [%]"],
        [[result.name, result.average_power_w * 1e6,
          100.0 * result.relative_saving] for result in results],
        title="Improvement perspectives")

    return ImprovementsExperimentResult(report=report, results=results, table=table)
