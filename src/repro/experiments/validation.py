"""EXP-VAL — cross-validation of the analytical model against packet simulation.

Not an artefact of the paper itself, but the sanity substrate DESIGN.md
calls for: the analytical model (Section 4 equations driven by Monte-Carlo
contention statistics) and the packet-level simulation of the beacon-enabled
MAC (``repro.mac`` on the discrete-event kernel) must agree on

* the average node power,
* the protocol-phase energy split, and
* the packet failure behaviour

for the same scenario.  Pure-Python packet simulation of the full 100-node
channel over many superframes is slow, so the validation runs a scaled-down
channel (fewer nodes, proportionally shorter superframe) whose load matches
the requested operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.core.energy_model import EnergyModel, PHASE_BEACON, PHASE_CONTENTION, \
    PHASE_TRANSMIT, PHASE_ACK
from repro.experiments.common import default_model
from repro.mac.superframe import SuperframeConfig
from repro.network.node import SensorNode
from repro.network.scenario import ChannelScenario, SimulationSummary


@dataclass
class ValidationResult:
    """Output of the model-vs-simulation cross-check."""

    report: ExperimentReport
    simulation: SimulationSummary
    model_power_w: float
    table: str


def run_model_vs_simulation(model: Optional[EnergyModel] = None,
                            num_nodes: int = 12,
                            beacon_order: int = 3,
                            payload_bytes: int = 120,
                            path_loss_db: float = 70.0,
                            tx_power_dbm: float = 0.0,
                            superframes: int = 8,
                            seed: int = 7) -> ValidationResult:
    """Compare analytical and simulated power for one scaled-down channel.

    The default scenario — 12 nodes at beacon order 3 — offers roughly the
    same channel load as the paper's 100 nodes at beacon order 6, so the
    contention statistics the analytical model interpolates remain valid.
    """
    model = model or default_model()
    constants = model.config.constants
    config = SuperframeConfig(beacon_order=beacon_order,
                              superframe_order=beacon_order,
                              constants=constants)
    on_air = model.packet_bytes_on_air(payload_bytes)
    load = config.offered_load(nodes=num_nodes, payload_bytes=on_air)

    nodes = [SensorNode(node_id=i, channel=11, path_loss_db=path_loss_db,
                        tx_power_dbm=tx_power_dbm)
             for i in range(1, num_nodes + 1)]
    scenario = ChannelScenario(nodes=nodes, config=config, constants=constants,
                               payload_bytes=payload_bytes, seed=seed)
    simulation = scenario.run(superframes=superframes)

    budget = model.evaluate(payload_bytes=payload_bytes,
                            tx_power_dbm=tx_power_dbm,
                            path_loss_db=path_loss_db,
                            load=load,
                            beacon_order=beacon_order)

    report = ExperimentReport(
        experiment_id="EXP-VAL",
        title="Analytical model vs packet-level simulation",
    )
    report.add("average node power [W] (model as reference)",
               budget.average_power_w, simulation.mean_node_power_w,
               tolerance=0.35,
               note="scaled-down channel; the simulation includes effects the "
                    "model averages out (CAP deferrals, slot quantisation)")
    report.add("transaction failure probability (model as reference)",
               budget.transaction_failure_probability,
               simulation.failure_probability, tolerance=1.5,
               note="small-sample simulated probability")
    # Phase split agreement: compare transmit share of active energy.
    sim_active = sum(simulation.energy_by_phase_j.get(phase, 0.0)
                     for phase in (PHASE_BEACON, PHASE_CONTENTION,
                                   PHASE_TRANSMIT, PHASE_ACK))
    model_active = sum(budget.energy_by_phase_j[phase]
                       for phase in (PHASE_BEACON, PHASE_CONTENTION,
                                     PHASE_TRANSMIT, PHASE_ACK))
    sim_tx_share = (simulation.energy_by_phase_j.get(PHASE_TRANSMIT, 0.0)
                    / sim_active) if sim_active > 0 else math.nan
    model_tx_share = budget.energy_by_phase_j[PHASE_TRANSMIT] / model_active
    report.add("transmit share of active energy (model as reference)",
               model_tx_share, sim_tx_share, tolerance=0.35)

    table = format_table(
        ["quantity", "analytical model", "packet simulation"],
        [
            ["average power [uW]", budget.average_power_w * 1e6,
             simulation.mean_node_power_w * 1e6],
            ["failure probability", budget.transaction_failure_probability,
             simulation.failure_probability],
            ["transmit energy share", model_tx_share, sim_tx_share],
        ],
        title=f"Model vs simulation ({num_nodes} nodes, BO={beacon_order}, "
              f"load={load:.2f})")

    return ValidationResult(report=report, simulation=simulation,
                            model_power_w=budget.average_power_w, table=table)
