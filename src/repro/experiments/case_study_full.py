"""EXP-CSF — full-scale packet-level simulation of the Section 5 case study.

The analytical case study (``repro.experiments.case_study``) evaluates the
paper's 1600-node network through the Section 4 equations; this experiment
*simulates* it: all sixteen 2450 MHz channels, 100 nodes each, on the
batched lockstep backend (:mod:`repro.mac.vectorized`) by default — one
kernel call spanning every (channel, replication) lane — with
channel-inversion link adaptation and per-channel seeds spawned from the
master seed.  The per-channel ``vectorized`` and ``event`` backends remain
selectable and bit-identical in counts; on those, the fan-out is
reproducible at any ``--jobs`` level.

The report cross-checks the simulated network against the paper's headline
numbers where they are comparable — the ~16 % transaction failure
probability — and against internal consistency requirements (per-channel
load, delivery fractions).  The absolute average power is reported for
comparison with the analytical model but with a wide tolerance: the
simulation includes effects the model averages out (slot quantisation, CAP
deferrals, empirical stagger margins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.network.routing import build_routing_model
from repro.network.simulate import aggregate_channel_rows, simulate_network
from repro.network.spec import CASE_STUDY_SPEC, ScenarioSpec
from repro.network.topology import build_topology_model
from repro.network.traffic import build_traffic_model

#: Paper values the simulated network is compared against.
PAPER_FAILURE_PROBABILITY = 0.16
PAPER_AVERAGE_POWER_UW = 211.0


@dataclass
class FullCaseStudyResult:
    """Outcome of the full-scale case-study simulation."""

    report: ExperimentReport
    channel_rows: List[Dict[str, Any]]
    aggregate: Dict[str, Any]
    table: str


def run_full_case_study(total_nodes: int = 1600,
                        num_channels: Optional[int] = None,
                        superframes: int = 50,
                        beacon_order: int = 6,
                        superframe_order: Optional[int] = None,
                        payload_bytes: int = 120,
                        nodes_per_channel_cap: Optional[int] = None,
                        backend: str = "batched",
                        battery_life_extension: bool = False,
                        csma_convention: str = "paper",
                        tx_policy: str = "adaptive",
                        traffic_model: str = "saturated",
                        traffic_rate_scale: float = 1.0,
                        traffic_mix: float = 0.25,
                        topology: str = "star",
                        routing: str = "gradient",
                        max_hops: int = 1,
                        replications: int = 1,
                        seed: Optional[int] = 0,
                        executor=None) -> FullCaseStudyResult:
    """Simulate the dense network at full scale and report the trends.

    Parameters mirror :class:`repro.network.spec.ScenarioSpec`;
    ``superframe_order`` of ``None`` means SO = BO (no inactive portion),
    ``nodes_per_channel_cap`` truncates channel populations for scaled-down
    runs (tests, quick CLI smoke), ``executor`` fans the channels out.
    ``traffic_model`` selects the per-node packet process
    (:data:`repro.network.traffic.TRAFFIC_MODEL_KINDS`):
    ``"saturated"`` — the default — is the paper's one-packet-per-superframe
    assumption; ``traffic_rate_scale`` scales the stochastic models' mean
    packet rate against the paper's periodic baseline, and ``traffic_mix``
    is the bursty-alarm fraction of the ``"mixed"`` population.
    ``topology`` / ``routing`` / ``max_hops`` open the multi-hop axis:
    ``"star"`` with ``max_hops`` of 1 — the default — is the paper's
    single-hop cluster bit-for-bit; a geometric topology
    (:data:`repro.network.topology.TOPOLOGY_KINDS`) places each channel's
    nodes and routes them over a sink tree
    (:data:`repro.network.routing.ROUTING_KINDS`), making the energy hole
    (relays near the sink burn hottest) directly measurable.
    """
    if topology == "star" and max_hops > 1:
        raise ValueError("The star topology has no node-to-node links; "
                         "pick a geometric topology (grid, disc, cluster) "
                         "for max_hops > 1")
    spec = ScenarioSpec(
        name="case_study_full",
        total_nodes=total_nodes,
        num_channels=num_channels,
        beacon_order=beacon_order,
        superframe_order=superframe_order,
        payload_bytes=payload_bytes,
        traffic=(None if traffic_model == "saturated" else
                 build_traffic_model(traffic_model,
                                     payload_bytes=payload_bytes,
                                     rate_scale=traffic_rate_scale,
                                     mix_fraction=traffic_mix)),
        topology=(None if topology == "star" else
                  build_topology_model(topology)),
        routing=(None if topology == "star" else
                 build_routing_model(routing, max_hops=max_hops)),
        battery_life_extension=battery_life_extension,
        csma_convention=csma_convention,
        tx_policy=tx_policy,
        backend=backend,
        superframes_hint=superframes,
    )
    rows = simulate_network(spec, superframes=superframes, seed=seed,
                            executor=executor,
                            max_nodes_per_channel=nodes_per_channel_cap,
                            replications=replications)
    aggregate = aggregate_channel_rows(rows)

    report = ExperimentReport(
        experiment_id="EXP-CSF",
        title="Full-scale packet-level case study "
              f"({aggregate['nodes']} nodes, {aggregate['channels']} "
              f"channels, {superframes} superframes)")
    # The paper's headline numbers assume the saturated workload (one
    # packet per superframe) on the single-hop star; under any other
    # traffic model or topology the figures are reported without a
    # tolerance band.
    paper_comparable = traffic_model == "saturated" and topology == "star"
    report.add("transaction failure probability",
               PAPER_FAILURE_PROBABILITY if paper_comparable else None,
               aggregate["failure_probability"],
               tolerance=0.8 if paper_comparable else None,
               note="paper's analytical 16 %; simulated network-wide "
                    "fraction of undelivered packets"
                    if paper_comparable else
                    f"paper-incomparable workload ({traffic_model} traffic)")
    report.add("average node power [uW]",
               PAPER_AVERAGE_POWER_UW if paper_comparable else None,
               aggregate["mean_power_uw"],
               tolerance=0.5 if paper_comparable else None,
               note="simulation includes slot quantisation and CAP "
                    "deferrals the analytical model averages out"
                    if paper_comparable else
                    f"paper-incomparable workload ({traffic_model} traffic)")
    delivered_fraction = (aggregate["packets_delivered"]
                          / aggregate["packets_attempted"]
                          if aggregate["packets_attempted"] else 0.0)
    report.add("delivered fraction", None, delivered_fraction,
               note="must stay well above 0.5 for a functioning network")
    if aggregate["mean_delivery_delay_s"] is not None:
        report.add("mean in-superframe delivery delay [s]", None,
                   aggregate["mean_delivery_delay_s"],
                   note="contention + transmission only; excludes the "
                        "~480 ms average buffering delay of the 1.45 s "
                        "paper figure")
    by_depth = aggregate.get("by_depth")
    if by_depth and len(by_depth) > 1:
        depths = sorted(by_depth)
        relay_power = by_depth[depths[0]]["mean_power_uw"]
        leaf_power = by_depth[depths[-1]]["mean_power_uw"]
        report.add("energy-hole power ratio (hop 1 / deepest hop)", None,
                   relay_power / leaf_power if leaf_power else 0.0,
                   note=f"{relay_power:.1f} uW at hop 1 vs "
                        f"{leaf_power:.1f} uW at hop {depths[-1]}: "
                        "forwarding load concentrates on the sink's "
                        "first-hop relays")
    report.add_note(
        f"backend={backend}, csma={csma_convention}, "
        f"ble={battery_life_extension}, tx_policy={tx_policy}, "
        f"traffic={traffic_model}, seed={seed}"
        + (f", topology={topology}, routing={routing}, max_hops={max_hops}"
           if topology != "star" else "")
        + (f", replications={replications}" if replications > 1 else ""))

    table = format_table(
        ["channel", "nodes", "attempted", "delivered", "failures",
         "Pr_fail", "power [uW]", "delay [s]"],
        [[row["channel"], row["nodes"], row["packets_attempted"],
          row["packets_delivered"], row["channel_access_failures"],
          row["failure_probability"], row["mean_power_uw"],
          "-" if row["mean_delivery_delay_s"] is None
          else row["mean_delivery_delay_s"]]
         for row in rows],
        title="Per-channel packet-level simulation")

    return FullCaseStudyResult(report=report, channel_rows=rows,
                               aggregate=aggregate, table=table)
