"""EXP-F7 — Figure 7: optimal energy per bit versus path loss.

Figure 7 plots, for 120-byte packets and several network loads, the energy
per transmitted bit as a function of the path loss when each node uses the
energy-optimal transmit power.  The circles of the figure are the switching
thresholds between power levels.  The paper's observations:

* the thresholds are independent of the network load,
* transmission is efficient up to 88 dB of path loss,
* the energy per bit ranges from ~135 nJ/bit (path loss < 55 dB) to
  ~220 nJ/bit (88 dB), and
* adapting the transmit power saves up to ~40 % of the energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.series import Series, SeriesCollection
from repro.core.energy_model import EnergyModel
from repro.core.link_adaptation import ChannelInversionPolicy, PowerThreshold
from repro.experiments.common import default_model

#: Paper values used as comparison baselines.
PAPER_ENERGY_LOW_NJ = 135.0
PAPER_ENERGY_HIGH_NJ = 220.0
PAPER_EFFICIENT_UP_TO_DB = 88.0
PAPER_MAX_SAVING = 0.40


@dataclass
class Fig7Result:
    """Output of the Figure 7 experiment."""

    report: ExperimentReport
    curves: SeriesCollection
    thresholds_by_load: Dict[float, List[PowerThreshold]]


def run_fig7_link_adaptation(model: Optional[EnergyModel] = None,
                             loads: Sequence[float] = (0.2, 0.42, 0.6),
                             payload_bytes: int = 120,
                             path_loss_grid_db: Optional[np.ndarray] = None,
                             beacon_order: int = 6) -> Fig7Result:
    """Regenerate Figure 7 and the transmit-power switching thresholds."""
    model = model or default_model()
    if path_loss_grid_db is None:
        path_loss_grid_db = np.arange(45.0, 95.5, 1.0)
    grid = np.asarray(path_loss_grid_db, dtype=float)

    curves = SeriesCollection(
        title="Figure 7: optimal energy per bit vs path loss",
        x_name="path loss [dB]", y_name="energy per bit [J]")
    thresholds_by_load: Dict[float, List[PowerThreshold]] = {}

    for load in loads:
        policy = ChannelInversionPolicy(model, payload_bytes=payload_bytes,
                                        load=float(load), beacon_order=beacon_order)
        curve = policy.compute_curve(grid)
        thresholds_by_load[float(load)] = policy.compute_thresholds(grid)
        curves.add(Series(f"load = {load:g}", grid, curve.optimal_energy_per_bit_j,
                          "path loss [dB]", "energy per bit [J]"))

    report = ExperimentReport(
        experiment_id="EXP-F7",
        title="Link adaptation: optimal energy per bit and power thresholds (Figure 7)",
    )

    reference_load = float(loads[len(loads) // 2])
    reference_curve = curves.get(f"load = {reference_load:g}")
    energy_low = reference_curve.interpolate(55.0)
    energy_high = reference_curve.interpolate(PAPER_EFFICIENT_UP_TO_DB)
    report.add("energy per bit at 55 dB [nJ/bit]", PAPER_ENERGY_LOW_NJ,
               energy_low * 1e9, tolerance=0.6)
    report.add("energy per bit at 88 dB [nJ/bit]", PAPER_ENERGY_HIGH_NJ,
               energy_high * 1e9, tolerance=0.6)
    report.add("high / low energy ratio", PAPER_ENERGY_HIGH_NJ / PAPER_ENERGY_LOW_NJ,
               energy_high / energy_low, tolerance=0.35,
               note="shape check: cost of operating at the 88 dB edge")

    # Threshold load-independence: compare the threshold sets across loads.
    reference_thresholds = thresholds_by_load[float(loads[0])]
    max_shift = 0.0
    for load in loads[1:]:
        other = thresholds_by_load[float(load)]
        for a, b in zip(reference_thresholds, other):
            max_shift = max(max_shift, abs(a.path_loss_db - b.path_loss_db))
    report.add("max threshold shift across loads [dB]", 0.0, max_shift,
               tolerance=None,
               note="paper: thresholds are independent of the network load "
                    "(shifts of a couple of dB stem from Monte-Carlo noise)")

    # Saving of adaptation vs fixed maximum power at low path loss.
    policy = ChannelInversionPolicy(model, payload_bytes=payload_bytes,
                                    load=reference_load, beacon_order=beacon_order)
    policy.compute_thresholds(grid)
    saving = policy.adaptation_saving(path_loss_low_db=55.0)
    report.add("link adaptation saving at low path loss", PAPER_MAX_SAVING,
               saving, tolerance=0.5,
               note="paper: adaptation saves up to 40 % of the total energy")

    highest_threshold = max((t.path_loss_db for t in reference_thresholds),
                            default=float("nan"))
    report.add("highest switching threshold [dB]", PAPER_EFFICIENT_UP_TO_DB,
               highest_threshold, tolerance=0.1,
               note="transmission remains efficient up to ~88 dB")

    return Fig7Result(report=report, curves=curves,
                      thresholds_by_load=thresholds_by_load)
