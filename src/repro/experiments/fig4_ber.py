"""EXP-F4 — Figure 4: bit-error probability versus received power.

The paper measures the CC2420 BER on a wired attenuator bench between
-94 dBm and -85 dBm and fits the exponential regression of equation (1).
The reproduction

* regenerates the BER curve from the published regression,
* runs the synthetic wired bench (chip-level Monte-Carlo of the O-QPSK/DSSS
  link) over the same power range, and
* re-fits the regression from the synthetic bench observations,
  demonstrating the full calibration loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.series import Series, SeriesCollection
from repro.channel.wired import WiredTestBench
from repro.phy.error_model import AnalyticOqpskErrorModel, EmpiricalBerModel
from repro.radio.calibration import BerCalibration

#: Regression constants stated in the paper (equation 1).
PAPER_COEFFICIENT = 2.35e-30
PAPER_EXPONENT_PER_DBM = 0.659


@dataclass
class Fig4Result:
    """Output of the Figure 4 experiment."""

    report: ExperimentReport
    curves: SeriesCollection
    fitted_coefficient: float
    fitted_exponent: float


def run_fig4_ber(power_grid_dbm: Optional[np.ndarray] = None,
                 bench_bits_per_point: int = 60_000,
                 seed: int = 2005) -> Fig4Result:
    """Regenerate Figure 4 and the equation (1) regression."""
    if power_grid_dbm is None:
        power_grid_dbm = np.arange(-94.0, -84.5, 1.0)
    grid = np.asarray(power_grid_dbm, dtype=float)

    paper_model = EmpiricalBerModel()
    analytic_model = AnalyticOqpskErrorModel()
    rng = np.random.default_rng(seed)
    bench = WiredTestBench(rng=rng)

    paper_curve = paper_model.bit_error_probability_array(grid)
    analytic_curve = analytic_model.bit_error_probability_array(grid)
    bench_curve = np.array([
        bench.measure_ber(attenuation_db=-p, total_bits=bench_bits_per_point).bit_error_rate
        for p in grid])

    curves = SeriesCollection(
        title="Figure 4: bit error probability vs received power",
        x_name="received power [dBm]", y_name="BER")
    curves.add(Series("paper regression (eq. 1)", grid, paper_curve,
                      "received power [dBm]", "BER"))
    curves.add(Series("analytic O-QPSK/DSSS model", grid, analytic_curve,
                      "received power [dBm]", "BER"))
    curves.add(Series("synthetic wired bench", grid, bench_curve,
                      "received power [dBm]", "BER"))

    # ---- re-fit the regression from the synthetic bench ---------------------------------
    calibration = BerCalibration(ground_truth=paper_model, rng=rng,
                                 bits_per_point=200_000)
    calibration_result = calibration.run(grid)

    report = ExperimentReport(
        experiment_id="EXP-F4",
        title="BER vs received power and the equation (1) regression (Figure 4)",
    )
    report.add("regression coefficient c", PAPER_COEFFICIENT,
               calibration_result.coefficient, tolerance=None,
               note="re-fitted from synthetic bench samples of the paper's curve; "
                    "compare the exponent for the meaningful check")
    report.add("regression exponent k [1/dBm]", PAPER_EXPONENT_PER_DBM,
               calibration_result.exponent_per_dbm, tolerance=0.1)
    report.add("BER at -90 dBm (paper regression)",
               paper_model.bit_error_probability(-90.0),
               float(np.interp(-90.0, grid, paper_curve)), tolerance=0.01)
    report.add("BER at -90 dBm (analytic model vs regression)",
               paper_model.bit_error_probability(-90.0),
               analytic_model.bit_error_probability(-90.0), tolerance=3.0,
               note="the analytic DSSS model is only required to land in the "
                    "same decade as the measured curve")
    report.add_note("The wired attenuator bench is replaced by a chip-level "
                    "Monte-Carlo link simulator (see DESIGN.md substitutions).")

    return Fig4Result(report=report, curves=curves,
                      fitted_coefficient=calibration_result.coefficient,
                      fitted_exponent=calibration_result.exponent_per_dbm)
