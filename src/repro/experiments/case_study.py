"""EXP-CS — Section 5 case study: 211 µW, 1.45 s, 16 %.

The headline result of the paper: in a network of 1600 nodes (100 per
channel), each buffering 1 byte / 8 ms into 120-byte packets sent once per
983 ms superframe with link adaptation, the average node power is 211 µW,
the delivery delay 1.45 s and the transmission-failure probability 16 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.core.case_study import CaseStudy, CaseStudyParameters, CaseStudyResult
from repro.core.energy_model import EnergyModel
from repro.experiments.common import default_model

#: The paper's headline numbers.
PAPER_AVERAGE_POWER_W = 211e-6
PAPER_DELIVERY_DELAY_S = 1.45
PAPER_FAILURE_PROBABILITY = 0.16
PAPER_CHANNEL_LOAD = 0.42
PAPER_PACKET_PERIOD_S = 0.960
PAPER_INTER_BEACON_S = 0.98304


@dataclass
class CaseStudyExperimentResult:
    """Output of the case-study experiment."""

    report: ExperimentReport
    with_adaptation: CaseStudyResult
    without_adaptation: CaseStudyResult
    summary_table: str


def run_case_study(model: Optional[EnergyModel] = None,
                   parameters: Optional[CaseStudyParameters] = None,
                   path_loss_resolution: int = 41) -> CaseStudyExperimentResult:
    """Reproduce the Section 5 headline numbers (with and without adaptation)."""
    model = model or default_model()
    study = CaseStudy(model=model, parameters=parameters,
                      path_loss_resolution=path_loss_resolution)
    adapted = study.run(link_adaptation=True)
    fixed = study.run(link_adaptation=False)

    report = ExperimentReport(
        experiment_id="EXP-CS",
        title="Dense-network case study headline numbers (Section 5)",
    )
    report.add("channel load", PAPER_CHANNEL_LOAD, adapted.channel_load,
               tolerance=0.1)
    report.add("packet accumulation period [s]", PAPER_PACKET_PERIOD_S,
               adapted.parameters.packet_accumulation_period_s, tolerance=0.01)
    report.add("inter-beacon period [s]", PAPER_INTER_BEACON_S,
               adapted.inter_beacon_period_s, tolerance=0.01)
    report.add("average power [W]", PAPER_AVERAGE_POWER_W,
               adapted.average_power_w, tolerance=0.25)
    report.add("delivery delay [s]", PAPER_DELIVERY_DELAY_S,
               adapted.mean_delivery_delay_s, tolerance=0.5)
    report.add("transmission failure probability", PAPER_FAILURE_PROBABILITY,
               adapted.mean_failure_probability, tolerance=0.5)
    report.add("average power without link adaptation [W]", None,
               fixed.average_power_w,
               note="ablation: every node transmits at 0 dBm")
    report.add("power saving from link adaptation", None,
               1.0 - adapted.average_power_w / fixed.average_power_w,
               note="population-level saving (the paper's 'up to 40 %' refers "
                    "to the best-case node)")
    report.add_note("Population averages are computed over an equal-mass "
                    "discretisation of the U(55, 95) dB path-loss distribution.")

    summary_rows = [
        ["average power [uW]", adapted.average_power_w * 1e6,
         fixed.average_power_w * 1e6],
        ["delivery delay [s]", adapted.mean_delivery_delay_s,
         fixed.mean_delivery_delay_s],
        ["failure probability", adapted.mean_failure_probability,
         fixed.mean_failure_probability],
        ["energy per bit [nJ]", adapted.mean_energy_per_bit_j * 1e9,
         fixed.mean_energy_per_bit_j * 1e9],
    ]
    summary_table = format_table(
        ["quantity", "with adaptation", "fixed 0 dBm"], summary_rows,
        title="Case study summary")

    return CaseStudyExperimentResult(
        report=report,
        with_adaptation=adapted,
        without_adaptation=fixed,
        summary_table=summary_table,
    )
