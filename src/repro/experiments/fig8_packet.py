"""EXP-F8 — Figure 8: impact of the MAC overhead / packet size on energy per bit.

Figure 8 plots the energy per useful bit versus the packet payload size for
several network loads.  The paper's finding is that — despite the intuition
of a trade-off between fixed per-packet overhead and growing error /
contention cost — the energy per bit decreases monotonically up to the
largest payload the standard allows (123 bytes), which motivates the
120-byte buffering of the case study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.series import Series, SeriesCollection
from repro.core.energy_model import EnergyModel
from repro.core.optimizer import PacketSizeOptimizer, PacketSizeSweep
from repro.experiments.common import default_model
from repro.mac.frames import max_payload_bytes


@dataclass
class Fig8Result:
    """Output of the Figure 8 experiment."""

    report: ExperimentReport
    curves: SeriesCollection
    sweeps: Dict[float, PacketSizeSweep]


def run_fig8_packet_size(model: Optional[EnergyModel] = None,
                         loads: Sequence[float] = (0.2, 0.42, 0.6),
                         payload_sizes: Optional[Sequence[int]] = None,
                         path_loss_db: float = 75.0,
                         beacon_order: int = 6) -> Fig8Result:
    """Regenerate Figure 8 (energy per bit vs payload size per load)."""
    model = model or default_model()
    if payload_sizes is None:
        payload_sizes = [5, 10, 20, 40, 60, 80, 100, 120, 123]
    payload_sizes = [int(p) for p in payload_sizes]

    optimizer = PacketSizeOptimizer(model, path_loss_db=path_loss_db,
                                    beacon_order=beacon_order)
    curves = SeriesCollection(
        title="Figure 8: energy per bit vs payload size",
        x_name="payload [bytes]", y_name="energy per bit [J]")
    sweeps: Dict[float, PacketSizeSweep] = {}
    for load in loads:
        sweep = optimizer.sweep(float(load), payload_sizes)
        sweeps[float(load)] = sweep
        curves.add(Series(f"load = {load:g}",
                          np.array(payload_sizes, dtype=float),
                          [p.energy_per_bit_j for p in sweep.points],
                          "payload [bytes]", "energy per bit [J]"))

    report = ExperimentReport(
        experiment_id="EXP-F8",
        title="Energy per bit vs packet size (Figure 8)",
    )
    for load, sweep in sweeps.items():
        report.add(
            quantity=f"optimal payload at load {load:g} [bytes]",
            paper_value=float(max(payload_sizes)),
            measured_value=float(sweep.optimal_payload_bytes),
            tolerance=0.15,
            note="paper: the optimum sits at the largest allowed packet size",
        )
        report.add(
            quantity=f"monotonic decrease at load {load:g} (1 = yes)",
            paper_value=1.0,
            measured_value=1.0 if sweep.is_monotonically_decreasing(0.05) else 0.0,
            tolerance=0.0,
        )
    small = sweeps[float(loads[0])].points[0].energy_per_bit_j
    large = sweeps[float(loads[0])].points[-1].energy_per_bit_j
    report.add("energy per bit: 5 B / max payload ratio", None, small / large,
               note="quantifies how much the fixed per-packet overhead "
                    "penalises small packets")
    report.add_note(f"Maximum payload with the paper's overhead accounting: "
                    f"{max_payload_bytes()} bytes.")

    return Fig8Result(report=report, curves=curves, sweeps=sweeps)
