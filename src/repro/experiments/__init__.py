"""Experiment drivers — one per figure/table of the paper plus the case study.

Every driver regenerates the data behind one artefact of the paper's
evaluation and returns

* one or more :class:`repro.analysis.series.SeriesCollection` (the figure's
  curves), and
* an :class:`repro.analysis.report.ExperimentReport` comparing the paper's
  stated numbers with the reproduced ones.

The benchmark harness under ``benchmarks/`` simply runs these drivers and
prints their tables; EXPERIMENTS.md is assembled from the reports.

=================  ======================================================
Driver             Paper artefact
=================  ======================================================
``fig3_radio``     Figure 3 — CC2420 state powers and transitions
``fig4_ber``       Figure 4 — bit-error rate vs received power
``fig6_csma``      Figure 6 — slotted CSMA/CA behaviour vs load
``fig7_link``      Figure 7 — optimal energy per bit vs path loss
``fig8_packet``    Figure 8 — energy per bit vs payload size
``fig9_breakdown`` Figure 9 — energy / time breakdowns
``case_study``     Section 5 — 211 µW / 1.45 s / 16 % headline numbers
``improvements``   Section 5/6 — improvement perspectives (−12 %, −15 %)
``validation``     Model vs packet-level simulation cross-check
=================  ======================================================
"""

from repro.experiments.common import default_model, fast_contention_table
from repro.experiments.fig3_radio import run_fig3_radio_characterization
from repro.experiments.fig4_ber import run_fig4_ber
from repro.experiments.fig6_csma import run_fig6_csma
from repro.experiments.fig7_link import run_fig7_link_adaptation
from repro.experiments.fig8_packet import run_fig8_packet_size
from repro.experiments.fig9_breakdown import run_fig9_breakdown
from repro.experiments.case_study import run_case_study
from repro.experiments.improvements import run_improvements
from repro.experiments.validation import run_model_vs_simulation

__all__ = [
    "default_model",
    "fast_contention_table",
    "run_fig3_radio_characterization",
    "run_fig4_ber",
    "run_fig6_csma",
    "run_fig7_link_adaptation",
    "run_fig8_packet_size",
    "run_fig9_breakdown",
    "run_case_study",
    "run_improvements",
    "run_model_vs_simulation",
]
