"""Shared helpers of the experiment drivers.

Every driver needs the Monte-Carlo contention characterisation and the
analytical energy model built from it; this module provides both with two
layers of caching:

* an in-process ``lru_cache`` so repeated drivers in one run share the same
  :class:`~repro.contention.tables.ContentionTable` object, and
* the experiment engine's content-addressed on-disk cache (see
  :mod:`repro.runner.cache`) so a *second process* — another example script,
  a fresh CLI invocation — skips the Monte-Carlo entirely.

The disk layer stores the exact table the in-process build would have
produced (the shared-simulator characterisation, byte-identical numbers), so
adding it changes nothing but the wall-clock.  Parallel table construction
with per-point seeds lives in :func:`repro.runner.drivers.engine_contention_table`,
which the registry drivers use instead.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.contention.monte_carlo import ContentionSimulator
from repro.contention.tables import (PAPER_SEED, ContentionTable,
                                     build_contention_table)
from repro.core.energy_model import EnergyModel, ModelConfig

#: Seed used by every experiment so results are reproducible run to run.
EXPERIMENT_SEED = PAPER_SEED

#: Grid axes of the shared characterisation (covers every paper figure).
TABLE_LOADS = (0.05, 0.1, 0.2, 0.3, 0.42, 0.5, 0.6, 0.75, 0.9)
TABLE_SIZES = (20, 33, 63, 93, 113, 133)


def _disk_cached_table(num_windows: int, seed: int) -> ContentionTable:
    """Build the shared table, round-tripping it through the on-disk cache.

    Cache problems (unwritable directory, corrupt artifact) silently fall
    back to recomputing — the cache is an accelerator, never a dependency.
    """
    from repro.runner.cache import ResultCache

    simulator = ContentionSimulator(seed=seed)
    params = {"loads": list(TABLE_LOADS), "packet_sizes": list(TABLE_SIZES),
              "num_windows": num_windows, "mode": "shared-simulator"}
    try:
        cache = ResultCache()
        key = cache.key("fast_contention_table", params, seed)
        stored = cache.load(key)
        if stored is not None:
            return ContentionTable.from_payload(stored["table"])
    except OSError:
        cache = None
        key = None
    table = build_contention_table(list(TABLE_LOADS), list(TABLE_SIZES),
                                   simulator=simulator,
                                   num_windows=num_windows)
    if cache is not None:
        try:
            from repro.runner.cache import code_version
            cache.store(key, {"experiment": "fast_contention_table",
                              "params": params, "seed": seed,
                              "code_version": code_version(),
                              "table": table.to_payload()})
        except OSError:
            pass
    return table


@lru_cache(maxsize=4)
def fast_contention_table(num_windows: int = 15,
                          seed: int = EXPERIMENT_SEED) -> ContentionTable:
    """A cached Monte-Carlo characterisation table sized for quick experiments.

    Parameters
    ----------
    num_windows:
        Contention windows simulated per grid point; 15 windows of 100 nodes
        give ±1–2 % on the probabilities, enough for the tolerance bands.
    seed:
        Master seed of the shared simulator walking the grid.

    Returns
    -------
    ContentionTable
        Statistics over every load / packet size the paper's figures need.
        The same ``(num_windows, seed)`` returns the same object within a
        process (``lru_cache``) and near-instantly across processes (the
        engine's on-disk result cache).
    """
    return _disk_cached_table(num_windows, seed)


def default_model(config: Optional[ModelConfig] = None,
                  num_windows: int = 15,
                  seed: int = EXPERIMENT_SEED) -> EnergyModel:
    """The energy model every experiment starts from.

    Parameters
    ----------
    config:
        Optional :class:`~repro.core.energy_model.ModelConfig` override;
        ``None`` uses the paper's CC2420 profile and activation policy.
    num_windows / seed:
        Forwarded to :func:`fast_contention_table`, whose cached
        characterisation drives the model's contention statistics.
    """
    return EnergyModel(config=config,
                       contention_source=fast_contention_table(num_windows, seed))
