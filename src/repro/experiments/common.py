"""Shared helpers of the experiment drivers."""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.contention.monte_carlo import ContentionSimulator
from repro.contention.tables import ContentionTable, build_contention_table
from repro.core.energy_model import EnergyModel, ModelConfig

#: Seed used by every experiment so results are reproducible run to run.
EXPERIMENT_SEED = 2005


@lru_cache(maxsize=4)
def fast_contention_table(num_windows: int = 15,
                          seed: int = EXPERIMENT_SEED) -> ContentionTable:
    """A cached Monte-Carlo characterisation table sized for quick experiments.

    The grid covers every load / packet size the paper's figures need; the
    number of windows trades accuracy against runtime (15 windows of 100
    nodes give ±1–2 % on the probabilities, enough for the tolerance bands).
    """
    simulator = ContentionSimulator(seed=seed)
    loads = [0.05, 0.1, 0.2, 0.3, 0.42, 0.5, 0.6, 0.75, 0.9]
    sizes = [20, 33, 63, 93, 113, 133]
    return build_contention_table(loads, sizes, simulator=simulator,
                                  num_windows=num_windows)


def default_model(config: Optional[ModelConfig] = None,
                  num_windows: int = 15,
                  seed: int = EXPERIMENT_SEED) -> EnergyModel:
    """The energy model every experiment starts from.

    Uses the paper's CC2420 profile, activation policy and the cached
    Monte-Carlo contention table.
    """
    return EnergyModel(config=config,
                       contention_source=fast_contention_table(num_windows, seed))
