"""Guaranteed-time-slot (GTS) versus contention access comparison.

Section 2 of the paper dismisses the contention-free period for dense
networks in one sentence: the number of dedicated slots "would not be
sufficient to accommodate several hundreds of nodes".  This module makes
that argument quantitative, and also answers the complementary question the
paper leaves implicit — how much energy a node *would* save if it could get
a GTS (no contention, no clear channel assessments, no collision risk):

* :class:`GtsEnergyModel` — average power of a node transmitting its packet
  in a dedicated slot, following the same activation policy (wake before the
  beacon, listen to the beacon, sleep until its slot, transmit, receive the
  acknowledgement, sleep);
* :class:`GtsVersusContention` — per-node energy and per-channel capacity of
  both access modes, showing the trade-off: GTS is cheaper per node but
  serves at most seven nodes per superframe, so a dense network must use the
  contention access period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.tables import format_table
from repro.core.energy_model import (
    EnergyModel,
    PHASE_ACK,
    PHASE_BEACON,
    PHASE_SLEEP,
    PHASE_TRANSMIT,
)
from repro.core.reliability import (
    delivery_delay_s,
    energy_per_data_bit_j,
    transaction_failure_probability,
    transmission_attempt_distribution,
)
from repro.mac.constants import MAC_2450MHZ
from repro.mac.frames import AckFrame
from repro.mac.gts import MAX_GTS_DESCRIPTORS
from repro.radio.states import RadioState


@dataclass
class GtsNodeBudget:
    """Average-power budget of a node owning a guaranteed time slot."""

    payload_bytes: int
    tx_power_dbm: float
    path_loss_db: float
    beacon_order: int
    inter_beacon_period_s: float
    average_power_w: float
    transaction_failure_probability: float
    delivery_delay_s: float
    energy_per_bit_j: float
    energy_by_phase_j: Dict[str, float] = field(default_factory=dict)


class GtsEnergyModel:
    """Analytical energy model of a GTS (contention-free) node.

    Reuses the radio profile, error model and activation policy of an
    :class:`EnergyModel`; the difference is the absence of the contention
    phase (no backoff, no CCAs, no collisions) and the absence of channel
    access failures — packet loss comes from bit errors only.
    """

    def __init__(self, base_model: Optional[EnergyModel] = None):
        self.base = base_model or EnergyModel()

    def evaluate(self, payload_bytes: int, tx_power_dbm: float,
                 path_loss_db: float, beacon_order: int = 6) -> GtsNodeBudget:
        """Average power of a GTS node at one operating point."""
        cfg = self.base.config
        constants = cfg.constants
        profile = cfg.profile
        policy = cfg.policy

        t_ib = constants.beacon_interval_s(beacon_order)
        t_packet = self.base.packet_airtime_s(payload_bytes)
        t_ia = profile.transition_time_s(RadioState.IDLE, RadioState.RX)
        t_ia_tx = profile.transition_time_s(RadioState.IDLE, RadioState.TX)
        ack_airtime = AckFrame().airtime_s(constants.timing.byte_period_s)

        # Reliability: no collisions and no channel access failures in a GTS;
        # retransmissions (in later superframes' slots) only from bit errors.
        pr_e = self.base.packet_error(payload_bytes, tx_power_dbm, path_loss_db)
        attempts = transmission_attempt_distribution(pr_e, cfg.max_transmissions)
        # Within one superframe the node gets a single slot, so each
        # transmission attempt costs one superframe: the per-superframe budget
        # uses a single attempt and the failure probability equals Pr_e.
        pr_fail = transaction_failure_probability(0.0, pr_e)

        beacon_pre_time = policy.wake_lead_time_s if policy.wakeup_is_required else 0.0
        beacon_rx_time = t_ia + cfg.beacon_airtime_s
        tx_turnon = t_ia_tx if cfg.include_tx_turnon else 0.0
        transmit_time = tx_turnon + t_packet
        ack_idle_time = constants.turnaround_time_s
        ack_rx_time = (1.0 - pr_e) * (t_ia + ack_airtime) \
            + pr_e * (t_ia + max(0.0, constants.ack_wait_duration_s
                                 - constants.turnaround_time_s))

        p_idle = profile.power_w(RadioState.IDLE)
        p_rx = profile.power_w(RadioState.RX)
        p_tx = profile.tx_power_w(tx_power_dbm)
        p_shutdown = profile.power_w(RadioState.SHUTDOWN)

        energy_beacon = (policy.wakeup_energy_j()
                         + beacon_pre_time * p_idle + beacon_rx_time * p_rx)
        energy_transmit = transmit_time * p_tx
        energy_ack = ack_idle_time * p_idle \
            + ack_rx_time * p_rx * cfg.ack_rx_power_scale
        active_time = (beacon_pre_time + beacon_rx_time + transmit_time
                       + ack_idle_time + ack_rx_time)
        sleep_time = max(0.0, t_ib - active_time)
        energy_sleep = sleep_time * p_shutdown

        total = energy_beacon + energy_transmit + energy_ack + energy_sleep
        average_power = total / t_ib
        delay = delivery_delay_s(t_ib, pr_fail)
        return GtsNodeBudget(
            payload_bytes=payload_bytes,
            tx_power_dbm=profile.tx_level(tx_power_dbm).level_dbm,
            path_loss_db=path_loss_db,
            beacon_order=beacon_order,
            inter_beacon_period_s=t_ib,
            average_power_w=average_power,
            transaction_failure_probability=pr_fail,
            delivery_delay_s=delay,
            energy_per_bit_j=energy_per_data_bit_j(average_power, delay,
                                                   max(payload_bytes, 1)),
            energy_by_phase_j={
                PHASE_BEACON: energy_beacon,
                PHASE_TRANSMIT: energy_transmit,
                PHASE_ACK: energy_ack,
                PHASE_SLEEP: energy_sleep,
            },
        )


@dataclass
class GtsComparisonResult:
    """Outcome of the GTS-vs-contention comparison at one operating point."""

    contention_power_w: float
    gts_power_w: float
    contention_failure: float
    gts_failure: float
    gts_capacity_nodes: int
    contention_capacity_nodes: int

    @property
    def per_node_saving(self) -> float:
        """Fraction of the per-node power a GTS would save."""
        return 1.0 - self.gts_power_w / self.contention_power_w

    @property
    def gts_serves_dense_network(self) -> bool:
        """Whether GTS could serve the paper's 100 nodes per channel."""
        return self.gts_capacity_nodes >= self.contention_capacity_nodes


class GtsVersusContention:
    """Quantifies the paper's 'GTS does not fit dense networks' argument.

    Parameters
    ----------
    model:
        Contention-mode energy model (the paper's model).
    nodes_per_channel:
        Population the channel must serve (100 in the case study).
    gts_slots_per_node:
        Superframe slots a GTS allocation would need for one packet; with
        BO = 6 a slot lasts 61 ms, far more than the 4.5 ms transaction, so
        one slot suffices.
    """

    def __init__(self, model: Optional[EnergyModel] = None,
                 nodes_per_channel: int = 100, gts_slots_per_node: int = 1):
        self.model = model or EnergyModel()
        self.gts_model = GtsEnergyModel(self.model)
        self.nodes_per_channel = nodes_per_channel
        self.gts_slots_per_node = gts_slots_per_node

    def compare(self, payload_bytes: int = 120, tx_power_dbm: float = 0.0,
                path_loss_db: float = 75.0, load: float = 0.42,
                beacon_order: int = 6) -> GtsComparisonResult:
        """Evaluate both access modes at one operating point."""
        contention = self.model.evaluate(
            payload_bytes=payload_bytes, tx_power_dbm=tx_power_dbm,
            path_loss_db=path_loss_db, load=load, beacon_order=beacon_order)
        gts = self.gts_model.evaluate(
            payload_bytes=payload_bytes, tx_power_dbm=tx_power_dbm,
            path_loss_db=path_loss_db, beacon_order=beacon_order)
        gts_capacity = min(MAX_GTS_DESCRIPTORS,
                           MAX_GTS_DESCRIPTORS // self.gts_slots_per_node
                           if self.gts_slots_per_node > 0 else 0)
        return GtsComparisonResult(
            contention_power_w=contention.average_power_w,
            gts_power_w=gts.average_power_w,
            contention_failure=contention.transaction_failure_probability,
            gts_failure=gts.transaction_failure_probability,
            gts_capacity_nodes=gts_capacity,
            contention_capacity_nodes=self.nodes_per_channel,
        )

    def to_table(self, result: Optional[GtsComparisonResult] = None) -> str:
        """Render the comparison as an ASCII table."""
        result = result or self.compare()
        return format_table(
            ["quantity", "contention access", "guaranteed time slot"],
            [
                ["average node power [uW]", result.contention_power_w * 1e6,
                 result.gts_power_w * 1e6],
                ["transaction failure probability", result.contention_failure,
                 result.gts_failure],
                ["nodes servable per channel / superframe",
                 result.contention_capacity_nodes, result.gts_capacity_nodes],
            ],
            title="GTS vs contention access (dense-network argument of Section 2)")
