"""Battery lifetime and energy-scavenging feasibility analysis.

The paper's motivation (Section 1) is the 100 µW average-power budget that
would let a microsensor node live off scavenged energy, and its abstract
frames the 211 µW result against that goal.  This module turns an average
power figure (from :class:`repro.core.energy_model.EnergyModel` or the case
study) into the quantities system designers actually ask for:

* lifetime on a given battery (coin cell, AA, thin-film), including the
  sensing/processing power the radio analysis leaves out;
* the energy-scavenging margin against a harvester of given power density
  and area (the paper cites vibration harvesting around 100 µW/cm³);
* the improvement factor still needed to close the gap to self-powered
  operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

#: Seconds per year (365.25 days).
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0

#: The paper's energy-scavenging power goal.
SCAVENGING_GOAL_W = 100e-6


@dataclass(frozen=True)
class BatterySpec:
    """A primary battery described by capacity and voltage.

    Attributes
    ----------
    name:
        Human-readable identifier.
    capacity_mah:
        Rated capacity in milliampere-hours.
    nominal_voltage_v:
        Nominal cell voltage.
    usable_fraction:
        Fraction of the rated capacity usable before the voltage drops below
        the radio's minimum supply (self-discharge and cutoff losses).
    """

    name: str
    capacity_mah: float
    nominal_voltage_v: float
    usable_fraction: float = 0.85

    def __post_init__(self):
        if self.capacity_mah <= 0 or self.nominal_voltage_v <= 0:
            raise ValueError("Battery capacity and voltage must be positive")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ValueError("usable_fraction must lie in (0, 1]")

    @property
    def usable_energy_j(self) -> float:
        """Usable stored energy in joules."""
        return (self.capacity_mah * 1e-3 * 3600.0 * self.nominal_voltage_v
                * self.usable_fraction)


#: Common batteries used in sensor-node studies.
CR2032 = BatterySpec("CR2032 coin cell", capacity_mah=225.0, nominal_voltage_v=3.0)
AA_ALKALINE = BatterySpec("AA alkaline", capacity_mah=2500.0, nominal_voltage_v=1.5)
THIN_FILM = BatterySpec("thin-film micro battery", capacity_mah=1.0,
                        nominal_voltage_v=3.9)


@dataclass(frozen=True)
class HarvesterSpec:
    """An energy harvester described by its average output power.

    Attributes
    ----------
    name:
        Human-readable identifier.
    power_density_w_per_cm2:
        Average harvested power per square centimetre (or per cubic
        centimetre for volumetric harvesters — the distinction does not
        matter for the margin computation).
    area_cm2:
        Harvester area (volume) available on the node.
    efficiency:
        Power-conversion efficiency of the harvesting circuit.
    """

    name: str
    power_density_w_per_cm2: float
    area_cm2: float = 1.0
    efficiency: float = 0.8

    def __post_init__(self):
        if self.power_density_w_per_cm2 <= 0 or self.area_cm2 <= 0:
            raise ValueError("Harvester power density and area must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must lie in (0, 1]")

    @property
    def average_power_w(self) -> float:
        """Average electrical power delivered to the node."""
        return self.power_density_w_per_cm2 * self.area_cm2 * self.efficiency


#: Vibration harvester at the ~100 uW/cm^3 level the paper's reference [4] targets.
VIBRATION_HARVESTER = HarvesterSpec("vibration harvester",
                                    power_density_w_per_cm2=116e-6,
                                    area_cm2=1.0, efficiency=0.85)


@dataclass
class LifetimeReport:
    """Outcome of a lifetime / scavenging analysis for one node."""

    radio_power_w: float
    other_power_w: float
    battery: Optional[BatterySpec]
    harvester: Optional[HarvesterSpec]
    lifetime_s: float
    scavenging_margin: Optional[float]

    @property
    def total_power_w(self) -> float:
        """Radio plus non-radio average power."""
        return self.radio_power_w + self.other_power_w

    @property
    def lifetime_years(self) -> float:
        """Battery lifetime in years (``inf`` when self-powered)."""
        return self.lifetime_s / SECONDS_PER_YEAR

    @property
    def self_powered(self) -> bool:
        """Whether the harvester covers the whole average power."""
        return self.scavenging_margin is not None and self.scavenging_margin >= 1.0

    def as_dict(self) -> Dict[str, float]:
        """Flat summary for tables."""
        return {
            "radio_power_uW": self.radio_power_w * 1e6,
            "total_power_uW": self.total_power_w * 1e6,
            "lifetime_years": self.lifetime_years,
            "scavenging_margin": (math.nan if self.scavenging_margin is None
                                  else self.scavenging_margin),
        }


class LifetimeAnalysis:
    """Battery-lifetime and scavenging-feasibility calculator.

    Parameters
    ----------
    other_power_w:
        Average power of everything that is not the radio (sensing, MCU,
        leakage).  The paper's analysis covers only the radio; a typical
        duty-cycled sensing front end adds a few tens of microwatts.
    """

    def __init__(self, other_power_w: float = 20e-6):
        if other_power_w < 0:
            raise ValueError("other_power_w must be non-negative")
        self.other_power_w = other_power_w

    def battery_lifetime_s(self, radio_power_w: float,
                           battery: BatterySpec) -> float:
        """Lifetime on ``battery`` at the given radio average power."""
        if radio_power_w < 0:
            raise ValueError("radio_power_w must be non-negative")
        total = radio_power_w + self.other_power_w
        if total == 0:
            return math.inf
        return battery.usable_energy_j / total

    def scavenging_margin(self, radio_power_w: float,
                          harvester: HarvesterSpec) -> float:
        """Harvested power divided by consumed power (>= 1 means self-powered)."""
        total = radio_power_w + self.other_power_w
        if total <= 0:
            return math.inf
        return harvester.average_power_w / total

    def required_improvement_factor(self, radio_power_w: float,
                                    harvester: HarvesterSpec) -> float:
        """Factor by which the *radio* power must shrink to be self-powered.

        Returns 1.0 when the node is already self-powered and ``inf`` when
        even a zero-power radio would not fit the harvester budget.
        """
        budget = harvester.average_power_w - self.other_power_w
        if budget <= 0:
            return math.inf
        if radio_power_w <= budget:
            return 1.0
        return radio_power_w / budget

    def analyse(self, radio_power_w: float,
                battery: Optional[BatterySpec] = CR2032,
                harvester: Optional[HarvesterSpec] = VIBRATION_HARVESTER) -> LifetimeReport:
        """Full report for one node."""
        lifetime = (self.battery_lifetime_s(radio_power_w, battery)
                    if battery is not None else math.inf)
        margin = (self.scavenging_margin(radio_power_w, harvester)
                  if harvester is not None else None)
        return LifetimeReport(
            radio_power_w=radio_power_w,
            other_power_w=self.other_power_w,
            battery=battery,
            harvester=harvester,
            lifetime_s=lifetime,
            scavenging_margin=margin,
        )
