"""Improvement perspectives (end of Section 5 / Section 6 of the paper).

Starting from the case-study energy breakdown, the paper proposes two
transceiver-level improvements and quantifies them with the model:

1. **Faster state transitions** — "Reducing the transition time between
   states by a factor two would decrease the total average power by 12 %."
   Modelled by scaling every transition time/energy of the radio profile.
2. **Scalable receiver** — "a scalable receiver that offers a low power mode
   for sensing the channel and waiting for an acknowledgement frame has the
   potential of reducing the total average power by an additional 15 %."
   Modelled by scaling the receive power charged during clear channel
   assessment and acknowledgement waiting (the data/beacon reception keeps
   the full receiver).

:class:`ImprovementAnalysis` evaluates a baseline scenario and the two
improvements (individually and combined) and reports the relative savings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.energy_model import EnergyModel, NodeEnergyBudget


@dataclass(frozen=True)
class ImprovementResult:
    """Average power of one model variant and its saving vs the baseline."""

    name: str
    average_power_w: float
    baseline_power_w: float

    @property
    def relative_saving(self) -> float:
        """Fractional reduction of the average power vs the baseline."""
        if self.baseline_power_w <= 0:
            raise ValueError("Baseline power must be positive")
        return 1.0 - self.average_power_w / self.baseline_power_w


#: An evaluation callback: model -> population-average power in watts.
ScenarioEvaluator = Callable[[EnergyModel], float]


class ImprovementAnalysis:
    """Quantify the paper's two improvement perspectives.

    Parameters
    ----------
    model:
        Baseline energy model (CC2420 profile, paper activation policy).
    evaluator:
        Callable mapping a model to the scenario's average power.  For the
        paper's numbers this is the case-study population average; simpler
        single-point evaluators work for unit tests.
    """

    def __init__(self, model: EnergyModel, evaluator: ScenarioEvaluator):
        self.model = model
        self.evaluator = evaluator

    # -- variants -----------------------------------------------------------------------
    def baseline(self) -> float:
        """Average power of the unmodified model."""
        return self.evaluator(self.model)

    def faster_transitions(self, factor: float = 0.5) -> EnergyModel:
        """Model variant with every state transition scaled by ``factor``."""
        profile = self.model.config.profile.with_scaled_transitions(factor)
        return self.model.with_profile(profile)

    def scalable_receiver(self, rx_scale: float = 0.5) -> EnergyModel:
        """Model variant with a low-power receive mode for CCA and ACK wait."""
        return self.model.with_config(cca_rx_power_scale=rx_scale,
                                      ack_rx_power_scale=rx_scale)

    def combined(self, transition_factor: float = 0.5,
                 rx_scale: float = 0.5) -> EnergyModel:
        """Both improvements applied together."""
        profile = self.model.config.profile.with_scaled_transitions(transition_factor)
        return self.model.with_profile(profile).with_config(
            cca_rx_power_scale=rx_scale, ack_rx_power_scale=rx_scale)

    # -- analysis -----------------------------------------------------------------------
    def run(self, transition_factor: float = 0.5,
            rx_scale: float = 0.5) -> List[ImprovementResult]:
        """Evaluate baseline, each improvement, and the combination.

        Returns the results in presentation order: baseline, faster
        transitions, scalable receiver, combined.
        """
        baseline_power = self.baseline()
        variants = [
            ("baseline", self.model),
            (f"transitions x{transition_factor:g}",
             self.faster_transitions(transition_factor)),
            (f"scalable receiver x{rx_scale:g}",
             self.scalable_receiver(rx_scale)),
            ("combined", self.combined(transition_factor, rx_scale)),
        ]
        results = []
        for name, variant in variants:
            power = baseline_power if variant is self.model else self.evaluator(variant)
            results.append(ImprovementResult(
                name=name,
                average_power_w=power,
                baseline_power_w=baseline_power,
            ))
        return results

    def savings_summary(self, transition_factor: float = 0.5,
                        rx_scale: float = 0.5) -> Dict[str, float]:
        """Mapping variant name -> fractional saving vs the baseline."""
        return {result.name: result.relative_saving
                for result in self.run(transition_factor, rx_scale)}
