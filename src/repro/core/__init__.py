"""The paper's primary contribution: the analytical energy/reliability model.

Section 4 of the paper builds, on top of the radio characterisation and the
Monte-Carlo contention statistics, an analytical model of

* the average time an 802.15.4 node spends in idle / transmit / receive per
  superframe when it follows the energy-aware activation policy
  (equations 4–6),
* the resulting average power (equation 11),
* the transmission failure probability (equation 13), the delivery delay and
  the energy per useful bit (equations 13–14).

Section 5 then uses the model to derive the link-adaptation thresholds
(Figure 7), the optimal packet size (Figure 8), the dense-network case study
(211 µW / 1.45 s / 16 %) and the energy breakdown with its improvement
perspectives (Figure 9).

Package layout
--------------

========================  =====================================================
Module                    Content
========================  =====================================================
``activation_policy``     The radio activation policy and its ablation variants
``reliability``           Equations (7)–(10), (13): P_tr, Pr_tf, Pr_fail, delay
``energy_model``          Equations (3)–(6), (11)–(12), (14): the power model
``link_adaptation``       Channel-inversion transmit-power thresholds (Fig. 7)
``optimizer``             Packet-size and beacon-order optimisation (Fig. 8)
``breakdown``             Energy-per-phase / time-per-state breakdown (Fig. 9)
``improvements``          Transition-time and scalable-receiver perspectives
``case_study``            The 1600-node dense-network scenario of Section 5
========================  =====================================================
"""

from repro.core.activation_policy import ActivationPolicy, PolicyVariant
from repro.core.breakdown import EnergyBreakdown, TimeBreakdown
from repro.core.case_study import CaseStudy, CaseStudyParameters, CaseStudyResult
from repro.core.energy_model import EnergyModel, ModelConfig, NodeEnergyBudget
from repro.core.gts_comparison import GtsEnergyModel, GtsVersusContention
from repro.core.improvements import ImprovementAnalysis, ImprovementResult
from repro.core.lifetime import (
    BatterySpec,
    HarvesterSpec,
    LifetimeAnalysis,
    LifetimeReport,
)
from repro.core.sensitivity import OperatingPoint, SensitivityAnalysis
from repro.core.link_adaptation import ChannelInversionPolicy, PowerThreshold
from repro.core.optimizer import BeaconOrderSelector, PacketSizeOptimizer
from repro.core.reliability import (
    delivery_delay_s,
    energy_per_data_bit_j,
    packet_error_from_link,
    transmission_attempt_distribution,
    transmission_failure_probability,
    transaction_failure_probability,
)

__all__ = [
    "ActivationPolicy",
    "PolicyVariant",
    "EnergyModel",
    "ModelConfig",
    "NodeEnergyBudget",
    "EnergyBreakdown",
    "TimeBreakdown",
    "ChannelInversionPolicy",
    "PowerThreshold",
    "PacketSizeOptimizer",
    "BeaconOrderSelector",
    "GtsEnergyModel",
    "GtsVersusContention",
    "ImprovementAnalysis",
    "ImprovementResult",
    "LifetimeAnalysis",
    "LifetimeReport",
    "BatterySpec",
    "HarvesterSpec",
    "SensitivityAnalysis",
    "OperatingPoint",
    "CaseStudy",
    "CaseStudyParameters",
    "CaseStudyResult",
    "transmission_attempt_distribution",
    "transmission_failure_probability",
    "transaction_failure_probability",
    "delivery_delay_s",
    "energy_per_data_bit_j",
    "packet_error_from_link",
]
