"""Radio activation policies.

The paper's energy-aware policy (Section 4) decides which radio state the
node occupies during every phase of the per-superframe transaction:

* the node *shuts down* between superframes and wakes ~1 ms before the
  beacon to absorb the slow shutdown-to-idle transition;
* it stays in *idle* (not shutdown) between the clear channel assessments
  of the contention procedure, because re-entering idle from shutdown would
  cost another 1 ms;
* it returns to *idle* during the minimum acknowledgement turnaround
  (``t-ack``) and only turns the receiver on for the acknowledgement window;
* it shuts down immediately after the transaction completes.

Two deliberately worse variants are provided for the ablation benchmarks:

* ``ALWAYS_IDLE`` — the node never shuts down (it idles between
  superframes), isolating the benefit of the shutdown state;
* ``RX_UNTIL_BEACON`` — the node wakes at the same point but keeps the
  receiver on until the beacon instead of idling, isolating the benefit of
  the pre-emptive wake-up timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Tuple

from repro.radio.power_profile import (
    CC2420_PROFILE,
    RadioPowerProfile,
    T_SHUTDOWN_TO_IDLE_POLICY_S,
)
from repro.radio.states import RadioState


class PolicyVariant(Enum):
    """Selectable activation policies."""

    PAPER = "paper"
    ALWAYS_IDLE = "always_idle"
    RX_UNTIL_BEACON = "rx_until_beacon"


@dataclass(frozen=True)
class ActivationPolicy:
    """Parameters of the radio activation policy.

    Attributes
    ----------
    variant:
        Which policy variant is modelled.
    wake_lead_time_s:
        How long before the beacon the chip is strobed out of shutdown
        (1 ms in the paper, covering the ~970 µs startup).
    idle_between_ccas:
        Whether the radio returns to idle between CCAs (paper policy) or
        stays in receive (pessimistic variant used in sensitivity checks).
    shutdown_after_transaction:
        Whether the node shuts down after the acknowledgement (paper policy)
        or merely idles until the next superframe.
    shutdown_between_superframes:
        Whether the inactive portion of the superframe is spent in shutdown
        (paper policy) or in idle (``ALWAYS_IDLE`` ablation).
    profile:
        Radio profile the policy is designed for.
    """

    variant: PolicyVariant = PolicyVariant.PAPER
    wake_lead_time_s: float = T_SHUTDOWN_TO_IDLE_POLICY_S
    idle_between_ccas: bool = True
    shutdown_after_transaction: bool = True
    shutdown_between_superframes: bool = True
    profile: RadioPowerProfile = CC2420_PROFILE

    def __post_init__(self):
        if self.wake_lead_time_s < 0:
            raise ValueError("wake_lead_time_s must be non-negative")

    # -- constructors ----------------------------------------------------------------
    @classmethod
    def paper(cls, profile: RadioPowerProfile = CC2420_PROFILE) -> "ActivationPolicy":
        """The paper's energy-aware policy."""
        return cls(variant=PolicyVariant.PAPER, profile=profile)

    @classmethod
    def always_idle(cls, profile: RadioPowerProfile = CC2420_PROFILE) -> "ActivationPolicy":
        """Ablation: the node never enters shutdown."""
        return cls(variant=PolicyVariant.ALWAYS_IDLE,
                   wake_lead_time_s=0.0,
                   shutdown_after_transaction=False,
                   shutdown_between_superframes=False,
                   profile=profile)

    @classmethod
    def rx_until_beacon(cls, profile: RadioPowerProfile = CC2420_PROFILE) -> "ActivationPolicy":
        """Ablation: the node keeps the receiver on from wake-up to beacon."""
        return cls(variant=PolicyVariant.RX_UNTIL_BEACON,
                   idle_between_ccas=True,
                   profile=profile)

    # -- derived quantities --------------------------------------------------------------
    @property
    def pre_beacon_state(self) -> RadioState:
        """State occupied between wake-up and the beacon."""
        if self.variant is PolicyVariant.RX_UNTIL_BEACON:
            return RadioState.RX
        return RadioState.IDLE

    @property
    def inactive_state(self) -> RadioState:
        """State occupied during the inactive portion of the superframe."""
        if self.shutdown_between_superframes:
            return RadioState.SHUTDOWN
        return RadioState.IDLE

    @property
    def contention_wait_state(self) -> RadioState:
        """State occupied during the random backoff delays."""
        return RadioState.IDLE if self.idle_between_ccas else RadioState.RX

    @property
    def wakeup_is_required(self) -> bool:
        """Whether a shutdown-to-idle wake-up happens every superframe."""
        return self.shutdown_between_superframes

    def wakeup_energy_j(self) -> float:
        """Energy of the shutdown-to-idle transition (zero if never used)."""
        if not self.wakeup_is_required:
            return 0.0
        return self.profile.transition_energy_j(RadioState.SHUTDOWN, RadioState.IDLE)

    def timeline_description(self) -> List[Tuple[str, str]]:
        """Human-readable (phase, state) timeline of one transaction.

        Used by the examples and the documentation; purely descriptive.
        """
        timeline = []
        if self.wakeup_is_required:
            timeline.append(("pre-beacon wake-up", self.pre_beacon_state.value))
        timeline.append(("beacon reception", RadioState.RX.value))
        timeline.append(("backoff delays", self.contention_wait_state.value))
        timeline.append(("clear channel assessments", RadioState.RX.value))
        timeline.append(("packet transmission", RadioState.TX.value))
        timeline.append(("t-ack turnaround", RadioState.IDLE.value))
        timeline.append(("acknowledgement wait", RadioState.RX.value))
        timeline.append(("inactive period", self.inactive_state.value))
        return timeline
