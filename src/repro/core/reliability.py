"""Reliability arithmetic of the model: equations (7)–(10) and (13)–(14).

These are the probability / delay relations of the paper:

* equation (9):  ``Pr_tf = 1 - (1 - Pr_col)(1 - Pr_e)`` — probability one
  transmission attempt fails (collision or bit errors);
* equation (10): ``Pr_e = 1 - (1 - Pr_bit)^((L_packet - 4) * 8)`` — packet
  error probability (implemented in :mod:`repro.phy.error_model`);
* equations (7)/(8): the distribution of the number of transmissions needed;
* equation (13): ``Pr_fail = 1 - (1 - Pr_cf)(1 - P_tr(>N_max))`` — the
  probability the whole transaction fails in a superframe, and the resulting
  delivery delay ``delay = T_ib / (1 - Pr_fail)`` under the "retry next
  superframe" application policy;
* equation (14): the energy per delivered data bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.channel.awgn import AwgnLink
from repro.phy.error_model import ErrorModel, packet_error_probability


@dataclass(frozen=True)
class AttemptDistribution:
    """Distribution of the number of transmissions of one packet.

    Attributes
    ----------
    per_attempt_failure:
        ``Pr_tf`` — probability a single transmission attempt fails.
    max_transmissions:
        ``N_max`` — transmissions allowed before the MAC gives up.
    probabilities:
        ``P_tr(i)`` for ``i = 1 .. N_max`` (equation 7).
    exceed_probability:
        ``P_tr(> N_max)`` (equation 8).
    """

    per_attempt_failure: float
    max_transmissions: int
    probabilities: tuple
    exceed_probability: float

    @property
    def expected_transmissions(self) -> float:
        """Expected number of transmissions, counting aborted packets as N_max.

        This is the factor ``sum_i i P_tr(i) + N_max P_tr(>N_max)`` that
        multiplies the per-attempt times in equations (4)–(6).
        """
        expected = sum((i + 1) * p for i, p in enumerate(self.probabilities))
        return expected + self.max_transmissions * self.exceed_probability

    @property
    def success_probability(self) -> float:
        """Probability the packet is delivered within N_max transmissions."""
        return 1.0 - self.exceed_probability

    @property
    def expected_failed_transmissions(self) -> float:
        """Expected number of attempts that end without an acknowledgement."""
        return self.expected_transmissions - self.success_probability


def transmission_failure_probability(collision_probability: float,
                                     packet_error_probability_value: float) -> float:
    """Equation (9): probability a single transmission attempt fails."""
    for name, value in (("collision_probability", collision_probability),
                        ("packet_error_probability", packet_error_probability_value)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return 1.0 - (1.0 - collision_probability) * (1.0 - packet_error_probability_value)


def transmission_attempt_distribution(per_attempt_failure: float,
                                      max_transmissions: int = 5) -> AttemptDistribution:
    """Equations (7)/(8): the geometric distribution of attempt counts."""
    if not 0.0 <= per_attempt_failure <= 1.0:
        raise ValueError("per_attempt_failure must lie in [0, 1]")
    if max_transmissions < 1:
        raise ValueError("max_transmissions must be at least 1")
    probabilities = tuple(
        per_attempt_failure ** (i - 1) * (1.0 - per_attempt_failure)
        for i in range(1, max_transmissions + 1))
    exceed = per_attempt_failure ** max_transmissions
    return AttemptDistribution(
        per_attempt_failure=per_attempt_failure,
        max_transmissions=max_transmissions,
        probabilities=probabilities,
        exceed_probability=exceed,
    )


def transaction_failure_probability(channel_access_failure: float,
                                    exceed_probability: float) -> float:
    """Equation (13): probability the whole per-superframe transaction fails."""
    for name, value in (("channel_access_failure", channel_access_failure),
                        ("exceed_probability", exceed_probability)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return 1.0 - (1.0 - channel_access_failure) * (1.0 - exceed_probability)


def delivery_delay_s(inter_beacon_period_s: float,
                     transaction_failure: float) -> float:
    """Equation (13, second part): expected delivery delay.

    The application retries a failed transaction in the next superframe, so
    the number of superframes needed is geometric with success probability
    ``1 - Pr_fail`` and the expected delay is ``T_ib / (1 - Pr_fail)``.

    Returns ``inf`` when the transaction never succeeds.
    """
    if inter_beacon_period_s <= 0:
        raise ValueError("inter_beacon_period_s must be positive")
    if not 0.0 <= transaction_failure <= 1.0:
        raise ValueError("transaction_failure must lie in [0, 1]")
    if transaction_failure >= 1.0:
        return math.inf
    return inter_beacon_period_s / (1.0 - transaction_failure)


def energy_per_data_bit_j(average_power_w: float, delay_s: float,
                          data_payload_bytes: int) -> float:
    """Equation (14): energy per delivered application bit."""
    if average_power_w < 0:
        raise ValueError("average_power_w must be non-negative")
    if data_payload_bytes <= 0:
        raise ValueError("data_payload_bytes must be positive")
    if math.isinf(delay_s):
        return math.inf
    return average_power_w * delay_s / (data_payload_bytes * 8)


def packet_error_from_link(error_model: ErrorModel, tx_power_dbm: float,
                           path_loss_db: float, packet_bytes: int,
                           sensitivity_dbm: float = -94.0) -> float:
    """Packet-error probability of a link (equations 1, 2 and 10 combined)."""
    link = AwgnLink(path_loss_db=path_loss_db, error_model=error_model,
                    sensitivity_dbm=sensitivity_dbm)
    return link.packet_error_probability(tx_power_dbm, packet_bytes)
