"""Link adaptation by channel inversion (Section 4/5, Figure 7).

Since the data rate of the 802.15.4 PHY is fixed, the only degree of freedom
for adapting to the link is the transmit power.  The paper's policy is
*channel inversion*: keep the received signal-to-noise ratio (approximately)
constant by compensating the measured path loss with transmit power, using
the path loss observed on the beacon (valid while the channel stays coherent
over a few packets).

The energy-optimal switching thresholds are found by evaluating the total
energy per delivered bit for every programmable power level over the full
path-loss range and taking, at each path loss, the level with the lowest
energy; the thresholds are the path losses where the per-level curves cross.
The paper observes (and the reproduction confirms) that the thresholds are
essentially independent of the network load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.energy_model import EnergyModel, NodeEnergyBudget


@dataclass(frozen=True)
class PowerThreshold:
    """Switching threshold between two adjacent transmit power levels.

    Attributes
    ----------
    path_loss_db:
        Path loss above which ``upper_level_dbm`` becomes more efficient
        than ``lower_level_dbm``.
    lower_level_dbm / upper_level_dbm:
        The two adjacent programmable levels.
    """

    path_loss_db: float
    lower_level_dbm: float
    upper_level_dbm: float


@dataclass
class LinkAdaptationCurve:
    """Energy-per-bit curves of every power level over a path-loss grid."""

    path_loss_grid_db: np.ndarray
    levels_dbm: List[float]
    energy_per_bit_j: Dict[float, np.ndarray]
    optimal_level_dbm: np.ndarray
    optimal_energy_per_bit_j: np.ndarray

    def level_for(self, path_loss_db: float) -> float:
        """Optimal level at ``path_loss_db`` (nearest grid point)."""
        index = int(np.argmin(np.abs(self.path_loss_grid_db - path_loss_db)))
        return float(self.optimal_level_dbm[index])


class ChannelInversionPolicy:
    """Computes and applies the energy-optimal transmit-power thresholds.

    Parameters
    ----------
    model:
        The analytical energy model used to score (level, path loss) pairs.
    payload_bytes:
        Packet payload the adaptation is optimised for (120 in the paper).
    load:
        Network load used during threshold computation (the thresholds turn
        out to be essentially load independent, as the paper notes).
    beacon_order:
        Beacon order of the scenario.
    """

    def __init__(self, model: EnergyModel, payload_bytes: int = 120,
                 load: float = 0.42, beacon_order: int = 6):
        self.model = model
        self.payload_bytes = payload_bytes
        self.load = load
        self.beacon_order = beacon_order
        self._curve: Optional[LinkAdaptationCurve] = None
        self._thresholds: Optional[List[PowerThreshold]] = None

    # -- curve computation -----------------------------------------------------------
    def compute_curve(self, path_loss_grid_db: Optional[Sequence[float]] = None,
                      load: Optional[float] = None) -> LinkAdaptationCurve:
        """Energy-per-bit of every level over a path-loss grid (Figure 7)."""
        if path_loss_grid_db is None:
            path_loss_grid_db = np.arange(40.0, 95.5, 0.5)
        grid = np.asarray(path_loss_grid_db, dtype=float)
        load = self.load if load is None else load
        levels = self.model.config.profile.tx_level_dbms()

        packet_bytes = self.model.packet_bytes_on_air(self.payload_bytes)
        contention = self.model.contention_source(load, packet_bytes)

        energy: Dict[float, np.ndarray] = {}
        for level in levels:
            values = np.empty(grid.shape)
            for i, path_loss in enumerate(grid):
                budget = self.model.evaluate(
                    payload_bytes=self.payload_bytes,
                    tx_power_dbm=level,
                    path_loss_db=float(path_loss),
                    load=load,
                    beacon_order=self.beacon_order,
                    contention=contention,
                )
                values[i] = budget.energy_per_bit_j
            energy[level] = values

        stacked = np.vstack([energy[level] for level in levels])
        best_index = np.argmin(stacked, axis=0)
        optimal_level = np.array([levels[i] for i in best_index])
        optimal_energy = stacked[best_index, np.arange(grid.size)]
        curve = LinkAdaptationCurve(
            path_loss_grid_db=grid,
            levels_dbm=list(levels),
            energy_per_bit_j=energy,
            optimal_level_dbm=optimal_level,
            optimal_energy_per_bit_j=optimal_energy,
        )
        self._curve = curve
        return curve

    def compute_thresholds(self, path_loss_grid_db: Optional[Sequence[float]] = None) \
            -> List[PowerThreshold]:
        """Path losses where the optimal level switches (the circles of Fig. 7)."""
        curve = self.compute_curve(path_loss_grid_db)
        thresholds: List[PowerThreshold] = []
        for i in range(1, curve.path_loss_grid_db.size):
            previous = curve.optimal_level_dbm[i - 1]
            current = curve.optimal_level_dbm[i]
            if current != previous:
                thresholds.append(PowerThreshold(
                    path_loss_db=float(curve.path_loss_grid_db[i]),
                    lower_level_dbm=float(previous),
                    upper_level_dbm=float(current),
                ))
        self._thresholds = thresholds
        return thresholds

    # -- application -------------------------------------------------------------------
    def select_level_dbm(self, path_loss_db: float) -> float:
        """Transmit power to use for a measured ``path_loss_db``."""
        if self._thresholds is None:
            self.compute_thresholds()
        level = self.model.config.profile.min_tx_level_dbm
        for threshold in self._thresholds:
            if path_loss_db >= threshold.path_loss_db:
                level = threshold.upper_level_dbm
        return level

    def evaluate_adapted(self, path_loss_db: float,
                         load: Optional[float] = None,
                         payload_bytes: Optional[int] = None) -> NodeEnergyBudget:
        """Model evaluation using the adapted transmit power at ``path_loss_db``."""
        return self.model.evaluate(
            payload_bytes=self.payload_bytes if payload_bytes is None else payload_bytes,
            tx_power_dbm=self.select_level_dbm(path_loss_db),
            path_loss_db=path_loss_db,
            load=self.load if load is None else load,
            beacon_order=self.beacon_order,
        )

    # -- summary metrics ------------------------------------------------------------------
    def adaptation_saving(self, path_loss_low_db: float = 55.0,
                          path_loss_high_db: float = 88.0) -> float:
        """Fractional energy-per-bit saving of adapting vs always transmitting
        at the highest level, evaluated at ``path_loss_low_db``.

        The paper quotes "up to 40 %": a node close to the base station that
        adapts down to -25 dBm instead of staying at 0 dBm.
        """
        adapted = self.evaluate_adapted(path_loss_low_db).energy_per_bit_j
        fixed = self.model.evaluate(
            payload_bytes=self.payload_bytes,
            tx_power_dbm=self.model.config.profile.max_tx_level_dbm,
            path_loss_db=path_loss_low_db,
            load=self.load,
            beacon_order=self.beacon_order,
        ).energy_per_bit_j
        if fixed <= 0:
            raise RuntimeError("Fixed-power energy per bit must be positive")
        return 1.0 - adapted / fixed
