"""Analytical average-power model of an 802.15.4 node (equations 3–12, 14).

The model computes, for one node following the energy-aware activation
policy, the expected time spent in each radio state during one inter-beacon
period and converts it into the average power (equation 11):

    P_avr = (P_idle T_idle + P_Tx T_Tx + P_Rx T_Rx) / T_ib

The occupancy times follow the paper's equations (4)–(6), with the state
transition delays added to the active time of the *arrival* state (the
paper's worst-case convention), and the expected number of transmissions
per packet obtained from the per-attempt failure probability (equations
7–10) and the empirically characterised contention statistics
(``T_cont``, ``N_CCA``, ``Pr_col``, ``Pr_cf``).

Differences with respect to the paper's printed equations, kept explicit
because they matter for exact reproduction:

* the receive time charged per clear channel assessment is the idle-to-RX
  turn-on transient (``T_ia``) **plus** the 8-symbol CCA sensing time; the
  printed equation (6) only shows ``N_CCA x T_ia`` (set
  ``ModelConfig.include_cca_sense_time = False`` to reproduce that exact
  accounting);
* the idle-to-TX turn-on transient is charged at transmit power ahead of
  each transmission (``ModelConfig.include_tx_turnon``), consistent with the
  measured 6.63 µJ transition energy of Figure 3; equation (5) omits it;
* the residual shutdown time is charged at the measured 144 nW instead of
  being neglected (the paper neglects it; the difference is ~0.1 µW).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.contention.statistics import ContentionStatistics
from repro.core.activation_policy import ActivationPolicy
from repro.core.reliability import (
    AttemptDistribution,
    delivery_delay_s,
    energy_per_data_bit_j,
    transaction_failure_probability,
    transmission_attempt_distribution,
    transmission_failure_probability,
)
from repro.mac.constants import MAC_2450MHZ, MacConstants
from repro.mac.frames import AckFrame, BeaconFrame, DataFrame, total_packet_overhead_bytes
from repro.phy.constants import CCA_DURATION_S
from repro.phy.error_model import EmpiricalBerModel, ErrorModel, packet_error_probability
from repro.radio.power_profile import (
    CC2420_PROFILE,
    RadioPowerProfile,
    T_IDLE_TO_ACTIVE_S,
)
from repro.radio.states import RadioState

#: Phase labels of the breakdown (Figure 9a of the paper).
PHASE_BEACON = "beacon"
PHASE_CONTENTION = "contention"
PHASE_TRANSMIT = "transmit"
PHASE_ACK = "ackifs"
PHASE_SLEEP = "sleep"

#: Type of a contention-statistics source: (load, on-air packet bytes) -> stats.
ContentionSource = Callable[[float, int], ContentionStatistics]


@dataclass(frozen=True)
class ModelConfig:
    """Static configuration of the analytical model.

    Attributes
    ----------
    profile:
        Radio power/energy profile (CC2420 measurements by default).
    constants:
        MAC constants bound to the PHY timing.
    error_model:
        Bit-error model as a function of received power (equation 1).
    policy:
        Radio activation policy.
    beacon_frame:
        The beacon whose airtime the node spends receiving each superframe.
        The default carries 12 bytes of network-maintenance payload, giving
        a ~1 ms beacon consistent with the ~20 % beacon share of the paper's
        energy breakdown (the paper does not state its exact beacon size).
    max_transmissions:
        ``N_max`` — total transmissions allowed per packet (5 in the paper).
    sensitivity_dbm:
        Received power below which packets are always lost.  The paper
        applies its BER regression without a hard cutoff (its case study
        extends to 95 dB path loss at 0 dBm, i.e. -95 dBm received power),
        so the default is set safely below the scenario range; set it to the
        CC2420's -94 dBm to model a hard sensitivity limit.
    include_cca_sense_time:
        Charge the 8-symbol CCA sensing time in receive, in addition to the
        turn-on transient (see module docstring).
    include_tx_turnon:
        Charge the idle-to-TX transient at transmit power per transmission.
    cca_rx_power_scale:
        Scaling of the receive power during clear channel assessment
        (1.0 = full receiver; < 1 models the paper's "scalable receiver").
    ack_rx_power_scale:
        Scaling of the receive power while waiting for the acknowledgement.
    """

    profile: RadioPowerProfile = CC2420_PROFILE
    constants: MacConstants = MAC_2450MHZ
    error_model: ErrorModel = field(default_factory=EmpiricalBerModel)
    policy: ActivationPolicy = field(default_factory=ActivationPolicy.paper)
    beacon_frame: BeaconFrame = field(
        default_factory=lambda: BeaconFrame(beacon_payload_bytes=12))
    max_transmissions: int = 5
    sensitivity_dbm: float = -100.0
    include_cca_sense_time: bool = True
    include_tx_turnon: bool = True
    cca_rx_power_scale: float = 1.0
    ack_rx_power_scale: float = 1.0

    def __post_init__(self):
        if self.max_transmissions < 1:
            raise ValueError("max_transmissions must be at least 1")
        for name in ("cca_rx_power_scale", "ack_rx_power_scale"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def beacon_airtime_s(self) -> float:
        """Airtime of the beacon frame."""
        return self.beacon_frame.airtime_s(self.constants.timing.byte_period_s)


@dataclass
class NodeEnergyBudget:
    """Full output of one model evaluation.

    Times are expected values per inter-beacon period; energies per phase
    feed the Figure 9 breakdowns; the scalar summary quantities reproduce
    the paper's headline metrics.
    """

    # inputs echoed back
    payload_bytes: int
    tx_power_dbm: float
    path_loss_db: float
    load: float
    beacon_order: int
    contention: ContentionStatistics
    attempt_distribution: AttemptDistribution

    # per-state expected occupancy times over one inter-beacon period [s]
    time_idle_s: float = 0.0
    time_tx_s: float = 0.0
    time_rx_s: float = 0.0
    time_shutdown_s: float = 0.0

    # per-phase energy [J] and time [s]
    energy_by_phase_j: Dict[str, float] = field(default_factory=dict)
    time_by_phase_s: Dict[str, float] = field(default_factory=dict)

    # headline quantities
    inter_beacon_period_s: float = 0.0
    total_energy_j: float = 0.0
    average_power_w: float = 0.0
    packet_error_probability: float = 0.0
    per_attempt_failure: float = 0.0
    transaction_failure_probability: float = 0.0
    delivery_delay_s: float = 0.0
    energy_per_bit_j: float = 0.0

    # -- convenience -----------------------------------------------------------------
    def time_by_state(self) -> Dict[RadioState, float]:
        """Expected occupancy per radio state (including shutdown)."""
        return {
            RadioState.IDLE: self.time_idle_s,
            RadioState.TX: self.time_tx_s,
            RadioState.RX: self.time_rx_s,
            RadioState.SHUTDOWN: self.time_shutdown_s,
        }

    def active_energy_j(self) -> float:
        """Energy excluding the sleep phase (what Figure 9a is normalised to)."""
        return sum(energy for phase, energy in self.energy_by_phase_j.items()
                   if phase != PHASE_SLEEP)


class EnergyModel:
    """Evaluate the average power / reliability of one node (Section 4).

    Parameters
    ----------
    config:
        Static model configuration.
    contention_source:
        Callable mapping ``(load, on-air packet bytes)`` to
        :class:`ContentionStatistics` — typically a
        :class:`repro.contention.tables.ContentionTable`, the Monte-Carlo
        simulator itself, or the closed-form approximation.
    """

    def __init__(self, config: Optional[ModelConfig] = None,
                 contention_source: Optional[ContentionSource] = None):
        self.config = config or ModelConfig()
        if contention_source is None:
            from repro.contention.tables import default_contention_table
            contention_source = default_contention_table()
        self.contention_source = contention_source

    # -- building blocks --------------------------------------------------------------
    def packet_bytes_on_air(self, payload_bytes: int) -> int:
        """Total on-air packet size ``L_o + L`` (equation 3)."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return total_packet_overhead_bytes() + payload_bytes

    def packet_airtime_s(self, payload_bytes: int) -> float:
        """Equation (3): T_packet = (L_o + L) x T_B."""
        return (self.packet_bytes_on_air(payload_bytes)
                * self.config.constants.timing.byte_period_s)

    def packet_error(self, payload_bytes: int, tx_power_dbm: float,
                     path_loss_db: float) -> float:
        """Equations (1), (2), (10): packet error probability of the link."""
        received = tx_power_dbm - path_loss_db
        if received < self.config.sensitivity_dbm:
            return 1.0
        ber = self.config.error_model.bit_error_probability(received)
        return packet_error_probability(ber, self.packet_bytes_on_air(payload_bytes))

    # -- main evaluation ---------------------------------------------------------------
    def evaluate(self, payload_bytes: int, tx_power_dbm: float,
                 path_loss_db: float, load: float,
                 beacon_order: int = 6,
                 contention: Optional[ContentionStatistics] = None) -> NodeEnergyBudget:
        """Evaluate the model at one operating point.

        Parameters
        ----------
        payload_bytes:
            Application payload per packet (``L``; 120 bytes in the case study).
        tx_power_dbm:
            Programmed transmit power (rounded up to a CC2420 level).
        path_loss_db:
            Link attenuation to the coordinator.
        load:
            Network load λ of the node's channel.
        beacon_order:
            BO; sets the inter-beacon period (equation 12).
        contention:
            Pre-computed contention statistics; fetched from the contention
            source when omitted.
        """
        cfg = self.config
        constants = cfg.constants
        policy = cfg.policy
        profile = cfg.profile

        packet_bytes = self.packet_bytes_on_air(payload_bytes)
        t_packet = self.packet_airtime_s(payload_bytes)
        t_ib = constants.beacon_interval_s(beacon_order)

        if contention is None:
            contention = self.contention_source(load, packet_bytes)

        # ---- reliability chain (equations 7-10, 13) ---------------------------------
        pr_e = self.packet_error(payload_bytes, tx_power_dbm, path_loss_db)
        pr_tf = transmission_failure_probability(
            contention.collision_probability, pr_e)
        attempts = transmission_attempt_distribution(
            pr_tf, cfg.max_transmissions)
        pr_cf = contention.channel_access_failure_probability
        pr_fail = transaction_failure_probability(pr_cf,
                                                  attempts.exceed_probability)

        n_attempts = attempts.expected_transmissions
        n_contentions = pr_cf + (1.0 - pr_cf) * n_attempts
        n_transmissions = (1.0 - pr_cf) * n_attempts
        p_success = (1.0 - pr_cf) * attempts.success_probability
        n_failed_transmissions = n_transmissions - p_success

        # ---- per-phase state occupancy (equations 4-6) -------------------------------
        t_ia = profile.transition_time_s(RadioState.IDLE, RadioState.RX)
        t_ia_tx = profile.transition_time_s(RadioState.IDLE, RadioState.TX)
        cca_sense = CCA_DURATION_S if cfg.include_cca_sense_time else 0.0
        t_ack_min = constants.turnaround_time_s
        t_ack_max = constants.ack_wait_duration_s
        ack_airtime = AckFrame().airtime_s(constants.timing.byte_period_s)

        # Beacon phase: wake-up lead in the pre-beacon state, then receive the
        # beacon (turn-on transient charged at RX power).
        beacon_pre_state = policy.pre_beacon_state
        beacon_pre_time = policy.wake_lead_time_s if policy.wakeup_is_required else 0.0
        beacon_rx_time = t_ia + cfg.beacon_airtime_s

        # Contention phase: backoff delays in idle (or RX for the ablation
        # variant), each CCA charged as turn-on transient + sensing at
        # (possibly scaled) RX power.
        cca_per_procedure_rx = contention.mean_cca_count * (t_ia + cca_sense)
        contention_wait = max(0.0, contention.mean_contention_time_s
                              - contention.mean_cca_count * cca_sense)
        contention_rx_time = n_contentions * cca_per_procedure_rx
        contention_wait_time = n_contentions * contention_wait

        # Transmit phase.
        tx_turnon = t_ia_tx if cfg.include_tx_turnon else 0.0
        transmit_time = n_transmissions * (tx_turnon + t_packet)

        # Acknowledgement phase: idle during t-ack, then receive either the
        # acknowledgement (success) or until t+ack expires (failure).
        ack_idle_time = n_transmissions * t_ack_min
        ack_rx_success = p_success * (t_ia + ack_airtime)
        ack_rx_failure = n_failed_transmissions * (t_ia + max(0.0, t_ack_max - t_ack_min))
        ack_rx_time = ack_rx_success + ack_rx_failure

        # ---- aggregate per-state occupancy -------------------------------------------
        wait_state = policy.contention_wait_state
        time_idle = beacon_pre_time * (beacon_pre_state is RadioState.IDLE) \
            + contention_wait_time * (wait_state is RadioState.IDLE) \
            + ack_idle_time
        time_rx = beacon_pre_time * (beacon_pre_state is RadioState.RX) \
            + beacon_rx_time \
            + contention_rx_time \
            + contention_wait_time * (wait_state is RadioState.RX) \
            + ack_rx_time
        time_tx = transmit_time
        active_time = time_idle + time_rx + time_tx
        if active_time > t_ib:
            # Physically the transaction cannot exceed the superframe; clamp
            # the sleep time at zero and keep the active accounting (this only
            # happens for extreme loads / tiny beacon orders).
            time_shutdown = 0.0
        else:
            time_shutdown = t_ib - active_time

        # ---- energies ------------------------------------------------------------------
        p_idle = profile.power_w(RadioState.IDLE)
        p_rx = profile.power_w(RadioState.RX)
        p_tx = profile.tx_power_w(tx_power_dbm)
        p_shutdown = profile.power_w(RadioState.SHUTDOWN)
        inactive_power = (p_shutdown if policy.inactive_state is RadioState.SHUTDOWN
                          else p_idle)

        pre_beacon_power = p_idle if beacon_pre_state is RadioState.IDLE else p_rx
        wait_power = p_idle if wait_state is RadioState.IDLE else p_rx
        cca_rx_power = p_rx * cfg.cca_rx_power_scale
        ack_rx_power = p_rx * cfg.ack_rx_power_scale

        energy_beacon = (policy.wakeup_energy_j()
                         + beacon_pre_time * pre_beacon_power
                         + beacon_rx_time * p_rx)
        energy_contention = (contention_wait_time * wait_power
                             + contention_rx_time * cca_rx_power)
        energy_transmit = transmit_time * p_tx
        energy_ack = (ack_idle_time * p_idle
                      + ack_rx_time * ack_rx_power)
        energy_sleep = time_shutdown * inactive_power

        energy_by_phase = {
            PHASE_BEACON: energy_beacon,
            PHASE_CONTENTION: energy_contention,
            PHASE_TRANSMIT: energy_transmit,
            PHASE_ACK: energy_ack,
            PHASE_SLEEP: energy_sleep,
        }
        time_by_phase = {
            PHASE_BEACON: beacon_pre_time + beacon_rx_time,
            PHASE_CONTENTION: contention_wait_time + contention_rx_time,
            PHASE_TRANSMIT: transmit_time,
            PHASE_ACK: ack_idle_time + ack_rx_time,
            PHASE_SLEEP: time_shutdown,
        }

        total_energy = sum(energy_by_phase.values())
        average_power = total_energy / t_ib
        delay = delivery_delay_s(t_ib, pr_fail)
        energy_per_bit = energy_per_data_bit_j(average_power, delay,
                                               max(payload_bytes, 1))

        return NodeEnergyBudget(
            payload_bytes=payload_bytes,
            tx_power_dbm=profile.tx_level(tx_power_dbm).level_dbm,
            path_loss_db=path_loss_db,
            load=load,
            beacon_order=beacon_order,
            contention=contention,
            attempt_distribution=attempts,
            time_idle_s=time_idle,
            time_tx_s=time_tx,
            time_rx_s=time_rx,
            time_shutdown_s=time_shutdown,
            energy_by_phase_j=energy_by_phase,
            time_by_phase_s=time_by_phase,
            inter_beacon_period_s=t_ib,
            total_energy_j=total_energy,
            average_power_w=average_power,
            packet_error_probability=pr_e,
            per_attempt_failure=pr_tf,
            transaction_failure_probability=pr_fail,
            delivery_delay_s=delay,
            energy_per_bit_j=energy_per_bit,
        )

    # -- derived models -----------------------------------------------------------------
    def with_config(self, **overrides) -> "EnergyModel":
        """A copy of the model with configuration fields replaced."""
        return EnergyModel(config=replace(self.config, **overrides),
                           contention_source=self.contention_source)

    def with_profile(self, profile: RadioPowerProfile) -> "EnergyModel":
        """A copy of the model using a different radio power profile."""
        policy = replace(self.config.policy, profile=profile)
        return EnergyModel(
            config=replace(self.config, profile=profile, policy=policy),
            contention_source=self.contention_source)
