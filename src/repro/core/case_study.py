"""The dense microsensor network case study of Section 5.

Scenario: 1600 nodes uniformly distributed around a base station, 16
channels in the 2450 MHz band, hence 100 nodes per channel.  Each node
senses 1 byte every 8 ms (1 kbit/s) and buffers readings until a 120-byte
packet is available, i.e. one packet every 960 ms.  With beacon order 6
(inter-beacon period 983 ms) one packet per node fits per superframe and
the channel load is about 42 %.  Path losses are uniformly distributed
between 55 and 95 dB and every node adapts its transmit power by channel
inversion.

The paper's reported results: average power 211 µW, delivery delay 1.45 s,
transmission-failure probability 16 %, with the breakdowns of Figure 9 and
the improvement perspectives (−12 % / −15 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.channel.pathloss import UniformPathLossDistribution
from repro.core.breakdown import EnergyBreakdown, TimeBreakdown, average_breakdowns
from repro.core.energy_model import EnergyModel, ModelConfig, NodeEnergyBudget
from repro.core.improvements import ImprovementAnalysis, ImprovementResult
from repro.core.link_adaptation import ChannelInversionPolicy
from repro.mac.superframe import SuperframeConfig
from repro.phy.bands import Band, channels_in_band


@dataclass(frozen=True)
class CaseStudyParameters:
    """Scenario parameters of the Section 5 case study."""

    total_nodes: int = 1600
    channels: int = 16
    node_data_rate_bps: float = 1000.0       # 1 byte / 8 ms
    sensing_interval_s: float = 8e-3
    sensing_bytes: int = 1
    payload_bytes: int = 120
    beacon_order: int = 6
    path_loss_low_db: float = 55.0
    path_loss_high_db: float = 95.0

    @property
    def nodes_per_channel(self) -> int:
        """Nodes sharing one channel (100 in the paper)."""
        return self.total_nodes // self.channels

    @property
    def packet_accumulation_period_s(self) -> float:
        """Time to buffer one full payload (960 ms in the paper)."""
        return (self.payload_bytes / self.sensing_bytes) * self.sensing_interval_s

    def path_loss_distribution(self) -> UniformPathLossDistribution:
        """The U(55, 95) dB path-loss distribution."""
        return UniformPathLossDistribution(self.path_loss_low_db,
                                           self.path_loss_high_db)


@dataclass
class CaseStudyResult:
    """Population-level results of the case study."""

    parameters: CaseStudyParameters
    channel_load: float
    inter_beacon_period_s: float
    average_power_w: float
    mean_delivery_delay_s: float
    mean_failure_probability: float
    mean_energy_per_bit_j: float
    energy_breakdown: EnergyBreakdown
    time_breakdown: TimeBreakdown
    per_node_budgets: List[NodeEnergyBudget] = field(default_factory=list)
    thresholds: List = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        """Headline quantities as a flat dictionary (for reports/benches)."""
        return {
            "average_power_uW": self.average_power_w * 1e6,
            "delivery_delay_s": self.mean_delivery_delay_s,
            "failure_probability": self.mean_failure_probability,
            "energy_per_bit_nJ": self.mean_energy_per_bit_j * 1e9,
            "channel_load": self.channel_load,
            "inter_beacon_period_s": self.inter_beacon_period_s,
        }


class CaseStudy:
    """Run the Section 5 case study with the analytical model.

    Parameters
    ----------
    model:
        Analytical energy model (default configuration when omitted).
    parameters:
        Scenario parameters (paper values when omitted).
    path_loss_resolution:
        Number of path-loss grid points the population average is computed
        over (the distribution is continuous; the grid is an equal-mass
        discretisation).
    """

    def __init__(self, model: Optional[EnergyModel] = None,
                 parameters: Optional[CaseStudyParameters] = None,
                 path_loss_resolution: int = 81):
        self.model = model or EnergyModel()
        self.parameters = parameters or CaseStudyParameters()
        self.path_loss_resolution = path_loss_resolution

    # -- scenario-level derived quantities ------------------------------------------------
    def superframe_config(self) -> SuperframeConfig:
        """Superframe configuration of the scenario (BO = SO = 6)."""
        return SuperframeConfig(
            beacon_order=self.parameters.beacon_order,
            superframe_order=self.parameters.beacon_order,
            constants=self.model.config.constants,
        )

    def channel_load(self) -> float:
        """Offered load per channel (≈ 0.42 in the paper)."""
        config = self.superframe_config()
        on_air = self.model.packet_bytes_on_air(self.parameters.payload_bytes)
        period = config.beacon_interval_s
        packets_per_beacon = min(
            1.0, period / self.parameters.packet_accumulation_period_s)
        return config.offered_load(
            nodes=self.parameters.nodes_per_channel,
            payload_bytes=on_air,
            packets_per_node_per_beacon=packets_per_beacon)

    def channel_numbers(self) -> List[int]:
        """The sixteen 2450 MHz channels the 1600 nodes are split over."""
        return channels_in_band(Band.BAND_2450MHZ)[:self.parameters.channels]

    # -- evaluation --------------------------------------------------------------------------
    def run(self, link_adaptation: bool = True) -> CaseStudyResult:
        """Evaluate the case study over the path-loss population.

        ``link_adaptation=False`` forces every node to the maximum transmit
        power (used by the ablation benchmarks to quantify the saving).
        """
        params = self.parameters
        load = self.channel_load()
        distribution = params.path_loss_distribution()
        grid = distribution.grid(self.path_loss_resolution)

        policy = ChannelInversionPolicy(
            self.model,
            payload_bytes=params.payload_bytes,
            load=load,
            beacon_order=params.beacon_order,
        )
        thresholds = policy.compute_thresholds() if link_adaptation else []

        budgets: List[NodeEnergyBudget] = []
        for path_loss in grid:
            if link_adaptation:
                level = policy.select_level_dbm(float(path_loss))
            else:
                level = self.model.config.profile.max_tx_level_dbm
            budgets.append(self.model.evaluate(
                payload_bytes=params.payload_bytes,
                tx_power_dbm=level,
                path_loss_db=float(path_loss),
                load=load,
                beacon_order=params.beacon_order,
            ))

        average_power = float(np.mean([b.average_power_w for b in budgets]))
        finite_delays = [b.delivery_delay_s for b in budgets
                         if math.isfinite(b.delivery_delay_s)]
        mean_delay = float(np.mean(finite_delays)) if finite_delays else math.inf
        mean_failure = float(np.mean(
            [b.transaction_failure_probability for b in budgets]))
        finite_energy = [b.energy_per_bit_j for b in budgets
                         if math.isfinite(b.energy_per_bit_j)]
        mean_energy_per_bit = (float(np.mean(finite_energy))
                               if finite_energy else math.inf)
        energy_breakdown, time_breakdown = average_breakdowns(budgets)

        return CaseStudyResult(
            parameters=params,
            channel_load=load,
            inter_beacon_period_s=budgets[0].inter_beacon_period_s,
            average_power_w=average_power,
            mean_delivery_delay_s=mean_delay,
            mean_failure_probability=mean_failure,
            mean_energy_per_bit_j=mean_energy_per_bit,
            energy_breakdown=energy_breakdown,
            time_breakdown=time_breakdown,
            per_node_budgets=budgets,
            thresholds=thresholds,
        )

    # -- improvement perspectives -----------------------------------------------------------
    def improvement_analysis(self) -> ImprovementAnalysis:
        """The Section 5/6 improvement analysis bound to this scenario."""
        def evaluator(model: EnergyModel) -> float:
            return CaseStudy(model=model, parameters=self.parameters,
                             path_loss_resolution=self.path_loss_resolution) \
                .run().average_power_w
        return ImprovementAnalysis(self.model, evaluator)

    def improvements(self, transition_factor: float = 0.5,
                     rx_scale: float = 0.5) -> List[ImprovementResult]:
        """Evaluate the paper's two improvement perspectives on this scenario."""
        return self.improvement_analysis().run(transition_factor, rx_scale)
