"""Energy and time breakdowns (Figure 9 of the paper).

Figure 9a breaks the *active* energy of a node into the four protocol
phases — beacon listening, contention, transmission and acknowledgement /
inter-frame spacing — while Figure 9b breaks the inter-beacon period into
the time spent in each radio state (shutdown 98.77 %, idle 0.47 %,
transmit 0.48 %, receive 0.28 % in the paper's case study).

Both breakdowns are computed from a :class:`NodeEnergyBudget`; population
averages (e.g. over the case-study path-loss distribution) are obtained by
averaging multiple budgets with :func:`average_breakdowns`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core.energy_model import (
    NodeEnergyBudget,
    PHASE_ACK,
    PHASE_BEACON,
    PHASE_CONTENTION,
    PHASE_SLEEP,
    PHASE_TRANSMIT,
)
from repro.radio.states import RadioState

#: Order in which the protocol phases are reported (matches Figure 9a).
PHASE_ORDER = (PHASE_BEACON, PHASE_CONTENTION, PHASE_TRANSMIT, PHASE_ACK)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Share of the active energy spent in each protocol phase."""

    fractions: Dict[str, float]
    total_active_energy_j: float

    def fraction(self, phase: str) -> float:
        """Share of ``phase`` (0..1)."""
        return self.fractions.get(phase, 0.0)

    def as_percentages(self) -> Dict[str, float]:
        """The same shares expressed in percent."""
        return {phase: 100.0 * value for phase, value in self.fractions.items()}

    @classmethod
    def from_budget(cls, budget: NodeEnergyBudget,
                    include_sleep: bool = False) -> "EnergyBreakdown":
        """Breakdown of one node's energy budget.

        ``include_sleep`` adds the (tiny) shutdown leakage as a fifth slice;
        the paper's pie chart excludes it.
        """
        phases = list(PHASE_ORDER)
        if include_sleep:
            phases.append(PHASE_SLEEP)
        energies = {p: budget.energy_by_phase_j.get(p, 0.0) for p in phases}
        total = sum(energies.values())
        if total <= 0:
            raise ValueError("Budget contains no active energy to break down")
        return cls(fractions={p: e / total for p, e in energies.items()},
                   total_active_energy_j=total)


@dataclass(frozen=True)
class TimeBreakdown:
    """Share of the inter-beacon period spent in each radio state."""

    fractions: Dict[RadioState, float]
    inter_beacon_period_s: float

    def fraction(self, state: RadioState) -> float:
        """Share of ``state`` (0..1)."""
        return self.fractions.get(state, 0.0)

    def as_percentages(self) -> Dict[str, float]:
        """Shares in percent, keyed by state name."""
        return {state.value: 100.0 * value
                for state, value in self.fractions.items()}

    @classmethod
    def from_budget(cls, budget: NodeEnergyBudget) -> "TimeBreakdown":
        """Breakdown of one node's per-state occupancy times."""
        times = budget.time_by_state()
        total = sum(times.values())
        if total <= 0:
            raise ValueError("Budget contains no time to break down")
        return cls(fractions={state: t / total for state, t in times.items()},
                   inter_beacon_period_s=budget.inter_beacon_period_s)


def average_breakdowns(budgets: Sequence[NodeEnergyBudget],
                       include_sleep: bool = False):
    """Population-average energy and time breakdowns.

    The average is energy weighted (respectively time weighted), i.e. the
    breakdown of the *summed* budgets, which is what the paper's case-study
    pie charts represent.

    Returns
    -------
    (EnergyBreakdown, TimeBreakdown)
    """
    budgets = list(budgets)
    if not budgets:
        raise ValueError("At least one budget is required")

    phases = list(PHASE_ORDER)
    if include_sleep:
        phases.append(PHASE_SLEEP)
    summed_energy = {p: sum(b.energy_by_phase_j.get(p, 0.0) for b in budgets)
                     for p in phases}
    total_energy = sum(summed_energy.values())
    energy_breakdown = EnergyBreakdown(
        fractions={p: e / total_energy for p, e in summed_energy.items()},
        total_active_energy_j=total_energy,
    )

    summed_time: Dict[RadioState, float] = {state: 0.0 for state in RadioState}
    for budget in budgets:
        for state, value in budget.time_by_state().items():
            summed_time[state] += value
    total_time = sum(summed_time.values())
    time_breakdown = TimeBreakdown(
        fractions={state: t / total_time for state, t in summed_time.items()},
        inter_beacon_period_s=budgets[0].inter_beacon_period_s,
    )
    return energy_breakdown, time_breakdown
