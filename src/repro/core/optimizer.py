"""Packet-size and beacon-order optimisation (Section 5, Figure 8).

The paper studies which packet payload size minimises the energy per useful
bit.  Small packets pay the fixed PHY+MAC+contention overhead per few bits;
large packets are more likely to be corrupted and, at high load, to suffer
channel access failures.  The result (Figure 8) is that the energy per bit
decreases monotonically up to the maximum payload the standard allows
(123 bytes with the paper's overhead accounting), so the case study buffers
sensor readings until 120 bytes are accumulated.

The beacon order is then chosen so that exactly one packet per node is
transmitted per superframe; with 100 nodes x 120 bytes every 960 ms the
paper sets BO = 6 (inter-beacon period 983 ms, channel load ~42 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.energy_model import EnergyModel, NodeEnergyBudget
from repro.mac.frames import max_payload_bytes
from repro.mac.superframe import SuperframeConfig


@dataclass(frozen=True)
class PacketSizePoint:
    """Energy per bit at one payload size / load combination."""

    payload_bytes: int
    load: float
    energy_per_bit_j: float
    transaction_failure_probability: float
    average_power_w: float


@dataclass
class PacketSizeSweep:
    """Result of a packet-size sweep at one network load."""

    load: float
    points: List[PacketSizePoint]

    @property
    def optimal_payload_bytes(self) -> int:
        """Payload size minimising the energy per bit."""
        best = min(self.points, key=lambda p: p.energy_per_bit_j)
        return best.payload_bytes

    def is_monotonically_decreasing(self, tolerance: float = 0.02) -> bool:
        """Whether the energy per bit decreases (within ``tolerance``) with size.

        This is the paper's Figure 8 observation; the tolerance absorbs the
        Monte-Carlo noise of the contention characterisation.
        """
        energies = [p.energy_per_bit_j for p in self.points]
        for previous, current in zip(energies, energies[1:]):
            if current > previous * (1.0 + tolerance):
                return False
        return True


class PacketSizeOptimizer:
    """Sweep the payload size and report the energy per useful bit (Figure 8).

    Parameters
    ----------
    model:
        The analytical energy model.
    path_loss_db:
        Link attenuation used for the sweep (a representative mid-range value).
    tx_power_dbm:
        Transmit power (``None`` = maximum level).
    beacon_order:
        Beacon order of the scenario.
    """

    def __init__(self, model: EnergyModel, path_loss_db: float = 75.0,
                 tx_power_dbm: Optional[float] = None, beacon_order: int = 6):
        self.model = model
        self.path_loss_db = path_loss_db
        self.tx_power_dbm = (model.config.profile.max_tx_level_dbm
                             if tx_power_dbm is None else tx_power_dbm)
        self.beacon_order = beacon_order

    def sweep(self, load: float,
              payload_sizes: Optional[Sequence[int]] = None) -> PacketSizeSweep:
        """Evaluate the energy per bit across payload sizes at ``load``."""
        if payload_sizes is None:
            payload_sizes = [5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 123]
        points = []
        for payload in payload_sizes:
            if payload < 1:
                raise ValueError("Payload sizes must be positive")
            budget = self.model.evaluate(
                payload_bytes=int(payload),
                tx_power_dbm=self.tx_power_dbm,
                path_loss_db=self.path_loss_db,
                load=load,
                beacon_order=self.beacon_order,
            )
            points.append(PacketSizePoint(
                payload_bytes=int(payload),
                load=load,
                energy_per_bit_j=budget.energy_per_bit_j,
                transaction_failure_probability=budget.transaction_failure_probability,
                average_power_w=budget.average_power_w,
            ))
        return PacketSizeSweep(load=load, points=points)

    def sweep_loads(self, loads: Sequence[float],
                    payload_sizes: Optional[Sequence[int]] = None) -> List[PacketSizeSweep]:
        """Figure 8: one sweep per network load."""
        return [self.sweep(load, payload_sizes) for load in loads]

    @staticmethod
    def maximum_payload() -> int:
        """Largest payload the standard allows with the paper's overhead."""
        return max_payload_bytes()


@dataclass(frozen=True)
class BeaconOrderChoice:
    """Outcome of the beacon-order selection."""

    beacon_order: int
    inter_beacon_period_s: float
    channel_load: float
    packets_per_node_per_superframe: float


class BeaconOrderSelector:
    """Choose the beacon order for a periodic data-gathering scenario.

    The paper's rule: buffer readings until a full packet is available and
    pick BO so one packet per node fits per superframe — the smallest BO
    whose inter-beacon period is at least the packet accumulation period.
    """

    def __init__(self, model: EnergyModel, nodes_per_channel: int = 100):
        self.model = model
        self.nodes_per_channel = nodes_per_channel

    def accumulation_period_s(self, payload_bytes: int,
                              node_data_rate_bps: float) -> float:
        """Time for one node to accumulate ``payload_bytes`` of sensor data."""
        if node_data_rate_bps <= 0:
            raise ValueError("node_data_rate_bps must be positive")
        return payload_bytes * 8 / node_data_rate_bps

    def select(self, payload_bytes: int, node_data_rate_bps: float) -> BeaconOrderChoice:
        """Smallest BO whose inter-beacon period fits the accumulation period."""
        constants = self.model.config.constants
        accumulation = self.accumulation_period_s(payload_bytes, node_data_rate_bps)
        for beacon_order in range(0, constants.max_beacon_order):
            period = constants.beacon_interval_s(beacon_order)
            if period >= accumulation:
                packets_per_superframe = period / accumulation
                config = SuperframeConfig(beacon_order=beacon_order,
                                          superframe_order=beacon_order,
                                          constants=constants)
                on_air = self.model.packet_bytes_on_air(payload_bytes)
                load = config.offered_load(
                    nodes=self.nodes_per_channel,
                    payload_bytes=on_air,
                    packets_per_node_per_beacon=min(1.0, packets_per_superframe))
                return BeaconOrderChoice(
                    beacon_order=beacon_order,
                    inter_beacon_period_s=period,
                    channel_load=load,
                    packets_per_node_per_superframe=min(1.0, packets_per_superframe),
                )
        raise ValueError("No beacon order accommodates the requested traffic")
