"""Sensitivity analysis of the energy model.

The paper's 211 µW figure depends on a handful of parameters the authors fix
by measurement or by argument (beacon size, pre-beacon wake-up lead, maximum
number of transmissions, contention statistics, transmit power).  This
module perturbs each of them around the case-study operating point and
reports how much the average power moves — the tornado-style table a
designer uses to decide where modelling precision actually matters, and the
quantitative backing of the paper's own improvement discussion (the largest
sensitivities are exactly the transition overheads the paper proposes to
attack).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.analysis.tables import format_table
from repro.core.energy_model import EnergyModel, ModelConfig, NodeEnergyBudget
from repro.mac.frames import BeaconFrame


@dataclass(frozen=True)
class OperatingPoint:
    """The evaluation point the sensitivities are computed around."""

    payload_bytes: int = 120
    tx_power_dbm: float = 0.0
    path_loss_db: float = 75.0
    load: float = 0.42
    beacon_order: int = 6


@dataclass
class SensitivityEntry:
    """Effect of perturbing one parameter."""

    parameter: str
    low_description: str
    high_description: str
    power_low_w: float
    power_nominal_w: float
    power_high_w: float

    @property
    def swing(self) -> float:
        """Relative power swing (high - low) / nominal."""
        return (self.power_high_w - self.power_low_w) / self.power_nominal_w

    @property
    def magnitude(self) -> float:
        """Absolute value of the swing (for ranking)."""
        return abs(self.swing)


class SensitivityAnalysis:
    """One-at-a-time sensitivity of the average power to model parameters.

    Parameters
    ----------
    model:
        Baseline energy model.
    operating_point:
        Where to evaluate (case-study point by default).
    """

    def __init__(self, model: EnergyModel,
                 operating_point: Optional[OperatingPoint] = None):
        self.model = model
        self.point = operating_point or OperatingPoint()

    # -- helpers --------------------------------------------------------------------
    def _power(self, model: EnergyModel, **overrides) -> float:
        params = {
            "payload_bytes": self.point.payload_bytes,
            "tx_power_dbm": self.point.tx_power_dbm,
            "path_loss_db": self.point.path_loss_db,
            "load": self.point.load,
            "beacon_order": self.point.beacon_order,
        }
        params.update(overrides)
        return model.evaluate(**params).average_power_w

    def _with_config(self, **config_overrides) -> EnergyModel:
        return EnergyModel(config=replace(self.model.config, **config_overrides),
                           contention_source=self.model.contention_source)

    # -- the analysis ----------------------------------------------------------------
    def run(self) -> List[SensitivityEntry]:
        """Evaluate all built-in perturbations, sorted by impact."""
        nominal = self._power(self.model)
        entries: List[SensitivityEntry] = []

        def add(parameter, low_desc, high_desc, low_power, high_power):
            entries.append(SensitivityEntry(
                parameter=parameter,
                low_description=low_desc, high_description=high_desc,
                power_low_w=low_power, power_nominal_w=nominal,
                power_high_w=high_power))

        # Beacon size: minimal beacon vs a beacon with GTS + pending fields.
        small_beacon = self._with_config(beacon_frame=BeaconFrame())
        large_beacon = self._with_config(beacon_frame=BeaconFrame(
            gts_descriptors=2, pending_short_addresses=(1, 2, 3, 4),
            beacon_payload_bytes=20))
        add("beacon size", "minimal (17 B)", "loaded (45 B)",
            self._power(small_beacon), self._power(large_beacon))

        # Pre-beacon wake-up lead time.
        short_lead = self._with_config(policy=replace(
            self.model.config.policy, wake_lead_time_s=0.5e-3))
        long_lead = self._with_config(policy=replace(
            self.model.config.policy, wake_lead_time_s=2e-3))
        add("wake-up lead time", "0.5 ms", "2 ms",
            self._power(short_lead), self._power(long_lead))

        # Maximum number of transmissions.
        few = self._with_config(max_transmissions=3)
        many = self._with_config(max_transmissions=7)
        add("max transmissions N_max", "3", "7",
            self._power(few), self._power(many))

        # Transmit power level (link adaptation decision).
        add("transmit power", "-25 dBm", "0 dBm",
            self._power(self.model, tx_power_dbm=-25.0),
            self._power(self.model, tx_power_dbm=0.0))

        # Network load (contention statistics).
        add("network load", "0.2", "0.8",
            self._power(self.model, load=0.2),
            self._power(self.model, load=0.8))

        # Payload size (Figure 8 axis).
        add("payload size", "30 B", "120 B",
            self._power(self.model, payload_bytes=30),
            self._power(self.model, payload_bytes=120))

        # Transition-time scaling (the paper's first improvement).
        slow = self.model.with_profile(
            self.model.config.profile.with_scaled_transitions(2.0))
        fast = self.model.with_profile(
            self.model.config.profile.with_scaled_transitions(0.5))
        add("state transition times", "x0.5", "x2",
            self._power(fast), self._power(slow))

        # Receive power during CCA / ACK wait (the scalable receiver).
        scaled = self._with_config(cca_rx_power_scale=0.5, ack_rx_power_scale=0.5)
        add("CCA/ACK receive power", "x0.5", "x1",
            self._power(scaled), nominal)

        entries.sort(key=lambda entry: entry.magnitude, reverse=True)
        return entries

    def to_table(self, entries: Optional[List[SensitivityEntry]] = None) -> str:
        """Tornado-style ASCII table of the sensitivities."""
        entries = entries if entries is not None else self.run()
        rows = []
        for entry in entries:
            rows.append([
                entry.parameter,
                f"{entry.low_description} .. {entry.high_description}",
                entry.power_low_w * 1e6,
                entry.power_nominal_w * 1e6,
                entry.power_high_w * 1e6,
                100.0 * entry.swing,
            ])
        return format_table(
            ["parameter", "range", "low [uW]", "nominal [uW]", "high [uW]",
             "swing [%]"],
            rows, title="Sensitivity of the average power "
                        "(case-study operating point)")
