#!/usr/bin/env python
"""The paper's Section 5 case study: 1600 nodes, 16 channels, 211 µW target.

Reproduces the dense-network scenario end to end:

* 1600 nodes split over the sixteen 2450 MHz channels (100 per channel);
* every node senses 1 byte / 8 ms and buffers 120-byte packets;
* beacon order 6 (983 ms superframes, ~42 % channel load);
* path losses uniform between 55 and 95 dB with channel-inversion link
  adaptation;
* reports the average power, delivery delay, failure probability, the
  Figure 9 breakdowns and the improvement perspectives.

The headline comparison goes through the experiment engine (equivalent
CLI: ``python -m repro run case_study``), so a re-run is served from the
result cache.  The breakdowns and thresholds then use the library API
directly — a separate, finer-resolution evaluation driven by
``default_model()``'s own cached characterisation, so its numbers can
differ slightly from the engine's headline row.

Run with::

    python examples/dense_network_case_study.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import CaseStudy, CaseStudyParameters
from repro.experiments.common import default_model
from repro.network.scenario import DenseNetworkScenario
from repro.runner import run_experiment


def main() -> None:
    model = default_model()
    parameters = CaseStudyParameters()          # the paper's values
    study = CaseStudy(model=model, parameters=parameters,
                      path_loss_resolution=61)

    # ---- scenario sanity: the network view -----------------------------------------
    scenario = DenseNetworkScenario(seed=1)
    nodes = scenario.build_nodes()
    populations = {}
    for node in nodes:
        populations[node.channel] = populations.get(node.channel, 0) + 1
    print(f"Population: {len(nodes)} nodes over {len(populations)} channels "
          f"({min(populations.values())}-{max(populations.values())} per channel)")
    print(f"Per-channel offered load: {scenario.channel_load():.3f}")
    print(f"Packet accumulation period: "
          f"{parameters.packet_accumulation_period_s * 1e3:.0f} ms")
    print()

    # ---- analytical case study (through the experiment engine) -----------------------
    engine_run = run_experiment("case_study")
    print(format_table(
        ["quantity", "paper", "reproduced"],
        [[row["quantity"], row["paper_value"] or "-", row["measured_value"]]
         for row in engine_run.rows],
        title="Case study headline numbers "
              f"({'cache hit' if engine_run.cache_hit else 'computed'} "
              f"in {engine_run.elapsed_s:.2f} s)",
    ))
    print()
    result = study.run(link_adaptation=True)
    print(format_table(
        ["phase", "energy share [%]"],
        [[phase, 100.0 * share]
         for phase, share in result.energy_breakdown.fractions.items()],
        title="Energy breakdown (Figure 9a)",
    ))
    print()
    print(format_table(
        ["state", "time share [%]"],
        [[state.value, 100.0 * share]
         for state, share in result.time_breakdown.fractions.items()],
        title="Time breakdown (Figure 9b)",
    ))
    print()
    print(format_table(
        ["threshold [dB]", "switch to [dBm]"],
        [[t.path_loss_db, t.upper_level_dbm] for t in result.thresholds],
        title="Link-adaptation switching thresholds",
    ))
    print()

    # ---- improvement perspectives -------------------------------------------------------
    improvements = study.improvements()
    print(format_table(
        ["variant", "average power [uW]", "saving [%]"],
        [[r.name, r.average_power_w * 1e6, 100.0 * r.relative_saving]
         for r in improvements],
        title="Improvement perspectives (paper: -12 % transitions, -15 % scalable RX)",
    ))


if __name__ == "__main__":
    main()
