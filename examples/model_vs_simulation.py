#!/usr/bin/env python
"""Cross-validation: analytical model vs packet-level MAC simulation.

The analytical model of Section 4 is an approximation; this example checks
it against a from-scratch packet-level simulation of the beacon-enabled
802.15.4 MAC (slotted CSMA/CA, acknowledgements, retransmissions, the
energy-aware activation policy) running on the library's discrete-event
kernel.

The comparison goes through the experiment engine's ``model_vs_sim``
registry entry, so each scaled-down scenario (fewer nodes, shorter
superframe, same load) is cached after its first run.  The equivalent CLI
for a single scenario::

    python -m repro run model_vs_sim --param num_nodes=12

Run with::

    python examples/model_vs_simulation.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.runner import run_experiment


def main() -> None:
    configurations = [
        dict(num_nodes=8, beacon_order=3, superframes=8),
        dict(num_nodes=12, beacon_order=3, superframes=8),
        dict(num_nodes=20, beacon_order=4, superframes=6),
    ]
    rows = []
    for config in configurations:
        run = run_experiment("model_vs_sim", params=config)
        source = "cache" if run.cache_hit else "computed"
        rows.append([
            config["num_nodes"],
            config["beacon_order"],
            run.payload["model_power_uw"],
            run.payload["simulated_power_uw"],
            run.payload["simulated_failure_probability"],
            f"{run.elapsed_s:.2f}s [{source}]",
        ])
    print(format_table(
        ["nodes", "BO", "model power [uW]", "simulated power [uW]",
         "simulated P_fail", "runtime"],
        rows, title="Analytical model vs packet-level simulation"))


if __name__ == "__main__":
    main()
