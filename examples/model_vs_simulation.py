#!/usr/bin/env python
"""Cross-validation: analytical model vs packet-level MAC simulation.

The analytical model of Section 4 is an approximation; this example checks
it against a from-scratch packet-level simulation of the beacon-enabled
802.15.4 MAC (slotted CSMA/CA, acknowledgements, retransmissions, the
energy-aware activation policy) running on the library's discrete-event
kernel.

A scaled-down channel (fewer nodes, shorter superframe, same load) keeps the
pure-Python simulation fast while exercising exactly the same protocol path
as the paper's 100-node channels.

Run with::

    python examples/model_vs_simulation.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.validation import run_model_vs_simulation


def main() -> None:
    configurations = [
        dict(num_nodes=8, beacon_order=3, superframes=8, seed=11),
        dict(num_nodes=12, beacon_order=3, superframes=8, seed=7),
        dict(num_nodes=20, beacon_order=4, superframes=6, seed=3),
    ]
    rows = []
    for config in configurations:
        result = run_model_vs_simulation(**config)
        simulation = result.simulation
        rows.append([
            config["num_nodes"],
            config["beacon_order"],
            result.model_power_w * 1e6,
            simulation.mean_node_power_w * 1e6,
            simulation.failure_probability,
            simulation.collisions,
            simulation.packets_delivered,
        ])
        print(result.table)
        print()
    print(format_table(
        ["nodes", "BO", "model power [uW]", "simulated power [uW]",
         "simulated P_fail", "collisions", "packets delivered"],
        rows, title="Analytical model vs packet-level simulation"))


if __name__ == "__main__":
    main()
