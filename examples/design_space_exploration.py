#!/usr/bin/env python
"""Design-space exploration over the full-scale packet-level simulator.

The paper's contribution is a *design-space analysis* — energy per delivered
packet traded against reliability and latency across node density, duty
cycle and transmit-power policy.  This walkthrough does that analysis end to
end through the stable library façade (``repro.api``):

1. run the registered node-density sweep through a configured ``Session``
   (every point is one engine run of ``case_study_full``, cached
   individually — re-running this script recomputes nothing);
2. extract the Pareto front over (mean power, failure probability, mean
   delay) and the knee point of the trade-off;
3. build a custom BO/SO duty-cycle sweep from scratch with explicit axes —
   validated against the experiment's typed schema the moment it is built;
4. export CSV/JSON artifacts plus the reproducibility manifest.

Equivalent CLI::

    python -m repro sweep run node_density --quick --export out/

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import repro.api as api
from repro.sweep import export_sweep, knee_point, pareto_front

#: The examples run the quick variants so the walkthrough finishes in
#: seconds; drop ``quick=True`` for the paper-scale design spaces.
QUICK = True


def main() -> None:
    session = api.Session(jobs=min(4, os.cpu_count() or 1))

    # ---- 1. a registered sweep, resumable point by point ---------------------
    status = session.sweep_status("node_density", quick=QUICK)
    spec = status.spec
    print(f"sweep {spec.name}: {spec.num_points()} points, "
          f"{status.done_count} already cached")
    result = session.sweep("node_density", quick=QUICK)
    print(result.to_table())
    print(f"({result.computed_points} computed, {result.cached_points} "
          f"served from cache — run the script again and watch this hit 0)")
    print()

    # ---- 2. the trade-off story: Pareto front and knee -----------------------
    front = pareto_front(result.rows, spec.objectives)
    knee = knee_point(front, spec.objectives)
    print(f"Pareto-optimal densities "
          f"({', '.join(f'{m} ({s})' for m, s in spec.objectives.items())}):")
    for row in front:
        marker = "  <- knee" if knee is not None and \
            row["point"] == knee["point"] else ""
        print(f"  {row['total_nodes']:5d} nodes: "
              f"{row['mean_power_uw']:7.1f} uW, "
              f"Pr_fail {row['failure_probability']:.3f}{marker}")
    print()

    # ---- 3. a custom design space is one SweepSpec away ----------------------
    # The spec validates against case_study_full's typed schema *here*: a
    # typo'd axis name or an out-of-range beacon order raises on this line,
    # before any simulation starts.
    duty = api.SweepSpec(
        name="custom_duty_cycle", experiment="case_study_full",
        axes={"beacon_order": api.GridAxis((3, 4, 5)),
              "superframe_order": api.GridAxis((None, 3))},
        base_params={"total_nodes": 32, "num_channels": 2, "superframes": 6},
        objectives={"mean_power_uw": "min", "failure_probability": "min"})
    duty_result = session.sweep(duty)
    print(duty_result.to_table(
        title="Custom BO/SO sweep (SO=None means SO=BO, no inactive portion)"))
    print()

    # ---- 4. byte-reproducible artifacts --------------------------------------
    out_dir = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
    paths = export_sweep(result, out_dir)
    print(f"exported to {out_dir} (spec hash {spec.spec_hash()}):")
    for kind, path in sorted(paths.items()):
        print(f"  {kind:9s} {path.name}")


if __name__ == "__main__":
    main()
