#!/usr/bin/env python
"""Design-space exploration over the full-scale packet-level simulator.

The paper's contribution is a *design-space analysis* — energy per delivered
packet traded against reliability and latency across node density, duty
cycle and transmit-power policy.  This walkthrough does that analysis end to
end with the sweep subsystem (``repro.sweep``):

1. run the registered node-density sweep (every point is one engine run of
   ``case_study_full``, cached individually — re-running this script
   recomputes nothing);
2. extract the Pareto front over (mean power, failure probability, mean
   delay) and the knee point of the trade-off;
3. build a custom BO/SO duty-cycle sweep from scratch with explicit axes;
4. export CSV/JSON artifacts plus the reproducibility manifest.

Equivalent CLI::

    python -m repro sweep run node_density --quick --export out/

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.sweep import (GridAxis, SweepSpec, export_sweep, get_sweep,
                         knee_point, pareto_front, run_sweep, sweep_status)

#: The examples run the quick variants so the walkthrough finishes in
#: seconds; drop ``quick=True`` for the paper-scale design spaces.
QUICK = True


def main() -> None:
    jobs = min(4, os.cpu_count() or 1)

    # ---- 1. a registered sweep, resumable point by point ---------------------
    spec = get_sweep("node_density", quick=QUICK)
    status = sweep_status(spec)
    print(f"sweep {spec.name}: {spec.num_points()} points, "
          f"{status.done_count} already cached")
    result = run_sweep(spec, jobs=jobs)
    print(result.to_table())
    print(f"({result.computed_points} computed, {result.cached_points} "
          f"served from cache — run the script again and watch this hit 0)")
    print()

    # ---- 2. the trade-off story: Pareto front and knee -----------------------
    front = pareto_front(result.rows, spec.objectives)
    knee = knee_point(front, spec.objectives)
    print(f"Pareto-optimal densities "
          f"({', '.join(f'{m} ({s})' for m, s in spec.objectives.items())}):")
    for row in front:
        marker = "  <- knee" if knee is not None and \
            row["point"] == knee["point"] else ""
        print(f"  {row['total_nodes']:5d} nodes: "
              f"{row['mean_power_uw']:7.1f} uW, "
              f"Pr_fail {row['failure_probability']:.3f}{marker}")
    print()

    # ---- 3. a custom design space is one SweepSpec away ----------------------
    duty = SweepSpec(
        name="custom_duty_cycle", experiment="case_study_full",
        axes={"beacon_order": GridAxis((3, 4, 5)),
              "superframe_order": GridAxis((None, 3))},
        base_params={"total_nodes": 32, "num_channels": 2, "superframes": 6},
        objectives={"mean_power_uw": "min", "failure_probability": "min"})
    duty_result = run_sweep(duty, jobs=jobs)
    print(duty_result.to_table(
        title="Custom BO/SO sweep (SO=None means SO=BO, no inactive portion)"))
    print()

    # ---- 4. byte-reproducible artifacts --------------------------------------
    out_dir = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
    paths = export_sweep(result, out_dir)
    print(f"exported to {out_dir} (spec hash {spec.spec_hash()}):")
    for kind, path in sorted(paths.items()):
        print(f"  {kind:9s} {path.name}")


if __name__ == "__main__":
    main()
