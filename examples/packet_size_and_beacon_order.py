#!/usr/bin/env python
"""Packet-size and beacon-order optimisation (Figure 8 and the case-study setup).

Shows how the library answers the two protocol-parameter questions of the
paper's Section 5:

1. Which payload size minimises the energy per useful bit?  (Figure 8 —
   the answer is "the largest one the standard allows", hence buffering.)
2. Which beacon order fits one packet per node per superframe for the
   1 kbit/s sensing traffic?  (The answer is BO = 6.)

The Figure 8 sweep goes through the engine's ``fig8_packet`` experiment
(equivalent CLI: ``python -m repro run fig8_packet``); the beacon-order
selection then uses the optimizer API directly.

Run with::

    python examples/packet_size_and_beacon_order.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.optimizer import BeaconOrderSelector, PacketSizeOptimizer
from repro.experiments.common import default_model
from repro.network.traffic import PeriodicSensingTraffic
from repro.runner import run_experiment


def main() -> None:
    model = default_model()

    # ---- Figure 8: energy per bit vs payload size (through the engine) -----------
    loads = (0.2, 0.42, 0.6)
    engine_run = run_experiment("fig8_packet", params={"loads": list(loads)})
    by_series = {}
    for row in engine_run.rows:
        by_series.setdefault(row["series"], []).append(row)
    payloads = [int(row["x"]) for row in next(iter(by_series.values()))]
    rows = []
    for index, payload in enumerate(payloads):
        row = [payload]
        for load in loads:
            row.append(by_series[f"load = {load:g}"][index]["y"] * 1e9)
        rows.append(row)
    print(format_table(
        ["payload [B]"] + [f"load {load:g} [nJ/bit]" for load in loads],
        rows, title="Figure 8: energy per bit vs payload size "
                    f"({'cache hit' if engine_run.cache_hit else 'computed'} "
                    f"in {engine_run.elapsed_s:.2f} s)"))
    optimizer = PacketSizeOptimizer(model, path_loss_db=75.0)
    for load in loads:
        sweep = optimizer.sweep(load, payloads)
        print(f"  load {load:g}: optimum at {sweep.optimal_payload_bytes} bytes, "
              f"monotonically decreasing: {sweep.is_monotonically_decreasing(0.05)}")
    print()

    # ---- beacon order selection ------------------------------------------------------------
    traffic = PeriodicSensingTraffic(sample_bytes=1, sampling_interval_s=8e-3,
                                     payload_bytes=120)
    selector = BeaconOrderSelector(model, nodes_per_channel=100)
    rows = []
    for payload in (30, 60, 120):
        choice = selector.select(payload_bytes=payload,
                                 node_data_rate_bps=traffic.data_rate_bps)
        rows.append([payload, choice.beacon_order,
                     choice.inter_beacon_period_s, choice.channel_load])
    print(format_table(
        ["payload [B]", "beacon order", "inter-beacon period [s]", "channel load"],
        rows, title="Beacon order selection for 1 kbit/s sensing traffic "
                    "(paper: BO = 6 for 120-byte packets)"))
    print()
    print(f"Buffering delay for 120-byte packets: "
          f"{traffic.buffering_delay_s() * 1e3:.0f} ms on average "
          f"(the price of the larger packets)")


if __name__ == "__main__":
    main()
