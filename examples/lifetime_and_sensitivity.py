#!/usr/bin/env python
"""Battery lifetime, energy-scavenging margin and model sensitivity.

The paper motivates the whole study with the ~100 µW budget that would make
a microsensor node self-powered from scavenged energy, and concludes with
the transceiver improvements needed to get there.  This example closes that
loop with the library's analysis tools:

1. evaluate the case-study average power (with and without the paper's two
   improvement perspectives);
2. translate each power figure into battery lifetime (coin cell / AA) and
   the energy-scavenging margin against a ~100 µW vibration harvester;
3. print the sensitivity of the average power to the main model parameters
   (the tornado table designers use to decide where to spend effort).

The model's contention characterisation comes from the experiment
engine's on-disk cache (see ``python -m repro cache``), so only the first
example run pays for the Monte-Carlo.

Run with::

    python examples/lifetime_and_sensitivity.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import CaseStudy, LifetimeAnalysis, SensitivityAnalysis
from repro.core.lifetime import AA_ALKALINE, CR2032, VIBRATION_HARVESTER
from repro.experiments.common import default_model


def main() -> None:
    model = default_model()
    study = CaseStudy(model=model, path_loss_resolution=41)

    # ---- power of the baseline and the improvement variants ------------------------
    improvements = study.improvements()
    powers = {result.name: result.average_power_w for result in improvements}

    # ---- lifetime / scavenging view ---------------------------------------------------
    lifetime = LifetimeAnalysis(other_power_w=20e-6)   # sensing + MCU overhead
    rows = []
    for name, power in powers.items():
        report_cr2032 = lifetime.analyse(power, battery=CR2032,
                                         harvester=VIBRATION_HARVESTER)
        report_aa = lifetime.analyse(power, battery=AA_ALKALINE, harvester=None)
        rows.append([
            name,
            power * 1e6,
            report_cr2032.lifetime_years,
            report_aa.lifetime_years,
            report_cr2032.scavenging_margin,
            lifetime.required_improvement_factor(power, VIBRATION_HARVESTER),
        ])
    print(format_table(
        ["variant", "radio power [uW]", "CR2032 lifetime [years]",
         "AA lifetime [years]", "scavenging margin", "improvement still needed"],
        rows,
        title="Battery lifetime and energy-scavenging feasibility "
              "(+20 uW sensing/MCU overhead)"))
    print()
    print("A scavenging margin >= 1 means the node is self-powered; the paper's")
    print("conclusion is that protocol-level optimisation alone (211 uW) is not")
    print("quite enough and transceiver improvements must close the rest.")
    print()

    # ---- sensitivity analysis -------------------------------------------------------------
    sensitivity = SensitivityAnalysis(model)
    print(sensitivity.to_table())


if __name__ == "__main__":
    main()
