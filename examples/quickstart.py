#!/usr/bin/env python
"""Quickstart: evaluate the average power of one 802.15.4 sensor node.

This example walks the public API end to end:

1. build the analytical energy model (CC2420 profile + the paper's
   energy-aware activation policy, driven by the Monte-Carlo contention
   characterisation);
2. evaluate a single operating point — the paper's case-study parameters
   for one node at a mid-range path loss;
3. print the per-phase energy split and the headline quantities.

Run with::

    python examples/quickstart.py

Every paper figure is also one `Session.run` away through the stable
library façade (`repro.api`), or one command away on the CLI
(`python -m repro list` prints the catalogue)::

    python -m repro run fig6_csma --jobs 2
    python -m repro run case_study
"""

from __future__ import annotations

import repro.api as api
from repro.analysis.tables import format_table
from repro.experiments.common import default_model


def main() -> None:
    # ---- 1. contention characterisation (Figure 6 machinery) --------------------
    # default_model() builds the paper-grid Monte-Carlo characterisation and
    # feeds it to the analytical model; the experiment engine's on-disk cache
    # makes every run after the first near-instant.
    model = default_model()
    budget = model.evaluate(
        payload_bytes=120,      # buffered sensor readings (the paper's choice)
        tx_power_dbm=-10.0,     # a mid-range CC2420 power level
        path_loss_db=72.0,      # node-to-base-station attenuation
        load=0.42,              # ~100 nodes sharing the channel
        beacon_order=6,         # 983 ms inter-beacon period
    )

    # ---- 3. report -----------------------------------------------------------------
    print("Per-superframe radio budget")
    print(format_table(
        ["quantity", "value"],
        [
            ["average power [uW]", budget.average_power_w * 1e6],
            ["transaction failure probability", budget.transaction_failure_probability],
            ["delivery delay [s]", budget.delivery_delay_s],
            ["energy per data bit [nJ]", budget.energy_per_bit_j * 1e9],
            ["expected transmissions per packet",
             budget.attempt_distribution.expected_transmissions],
            ["inter-beacon period [s]", budget.inter_beacon_period_s],
        ],
    ))
    print()
    print(format_table(
        ["protocol phase", "energy [uJ]", "time [ms]"],
        [[phase,
          budget.energy_by_phase_j[phase] * 1e6,
          budget.time_by_phase_s[phase] * 1e3]
         for phase in ("beacon", "contention", "transmit", "ackifs", "sleep")],
        title="Energy / time per protocol phase (one superframe)",
    ))
    print()
    shares = {state.value: fraction
              for state, fraction in zip(budget.time_by_state().keys(),
                                         budget.time_by_state().values())}
    total = sum(shares.values())
    print(format_table(
        ["radio state", "time share [%]"],
        [[name, 100.0 * value / total] for name, value in shares.items()],
        title="Radio state occupancy",
    ))
    print()

    # ---- 4. the stable library façade -----------------------------------------------
    # repro.api.Session is the documented entry point: the same registry and
    # result cache the CLI uses, with typed parameter validation.  A second
    # call with the same parameters and seed is served from the cache.
    session = api.Session()
    result = session.run("fig3_radio")
    print(f"Engine check — {result.spec.title}: {len(result.rows)} "
          f"comparisons, "
          f"{'cache hit' if result.cache_hit else 'computed'} "
          f"in {result.elapsed_s:.3f} s")
    # RunResult carries typed accessors and provenance:
    print(f"  within tolerance: "
          f"{sum(bool(v) for v in result.column('within_tolerance'))}"
          f"/{len(result.rows)}  (key {result.cache_key[:12]}, "
          f"code {result.code_version})")


if __name__ == "__main__":
    main()
