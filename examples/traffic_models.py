#!/usr/bin/env python
"""Heterogeneous traffic workloads on the dense-network simulator.

The paper's case study assumes every node has a packet buffered at every
beacon (1 byte sensed / 8 ms, shipped as 120-byte packets).  This example
runs the same scaled-down network under every registered traffic model —
saturated (the paper's assumption), byte-accurate periodic sensing, seeded
Poisson arrivals, rare bursty alarms, and a 75/25 periodic/alarm mixed
population — and tabulates how the energy / reliability / latency
trade-off shifts once nodes can sleep through superframes without data.

Equivalent CLI::

    python -m repro run case_study_full --param traffic_model=poisson

Run with::

    python examples/traffic_models.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.network import ScenarioSpec, aggregate_channel_rows, simulate_network
from repro.network.traffic import TRAFFIC_MODEL_KINDS, build_traffic_model


def main() -> None:
    rows = []
    for kind in TRAFFIC_MODEL_KINDS:
        traffic = None if kind == "saturated" else build_traffic_model(kind)
        spec = ScenarioSpec(name=f"traffic-{kind}", total_nodes=64,
                            num_channels=2, traffic=traffic,
                            superframes_hint=20)
        aggregate = aggregate_channel_rows(
            simulate_network(spec, seed=0))
        rows.append([
            kind,
            aggregate["packets_attempted"],
            aggregate["packets_delivered"],
            f"{aggregate['failure_probability']:.3f}",
            f"{aggregate['mean_power_uw']:.1f}",
            "-" if aggregate["mean_delivery_delay_s"] is None
            else f"{aggregate['mean_delivery_delay_s'] * 1e3:.1f}",
        ])

    print(format_table(
        ["traffic model", "attempted", "delivered", "Pr_fail",
         "power [uW]", "delay [ms]"],
        rows,
        title="One network, five workloads (64 nodes, 2 channels, "
              "20 superframes)"))
    print("\nSparse workloads sleep through empty superframes: the power "
          "drops toward the\nbeacon-tracking floor while the bursty alarm "
          "regime trades it for collisions\nwhen a burst drains packet by "
          "packet over consecutive superframes.")


if __name__ == "__main__":
    main()
