#!/usr/bin/env python
"""Link adaptation study: transmit-power thresholds and energy per bit (Figure 7).

Computes, for 120-byte packets at several network loads:

* the energy per bit as a function of the path loss when each node picks the
  energy-optimal CC2420 power level (channel inversion),
* the switching thresholds between adjacent levels, and
* the saving relative to always transmitting at 0 dBm.

The energy-per-bit curves come from the engine's ``fig7_link`` experiment
(equivalent CLI: ``python -m repro run fig7_link --jobs 2``); the switching
thresholds and savings then use the policy API directly.

Run with::

    python examples/link_adaptation_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.link_adaptation import ChannelInversionPolicy
from repro.experiments.common import default_model
from repro.runner import run_experiment


def main() -> None:
    model = default_model()
    loads = (0.2, 0.42, 0.6)
    grid = np.arange(50.0, 95.0, 5.0)

    # ---- energy-per-bit curves (through the experiment engine) ------------------------
    engine_run = run_experiment("fig7_link", params={"loads": list(loads)})
    by_series = {}
    for row in engine_run.rows:
        by_series.setdefault(row["series"], []).append(row)
    rows = []
    for label, series_rows in by_series.items():
        xs = np.array([row["x"] for row in series_rows])
        for target in grid:  # nearest engine grid point to each display point
            row = series_rows[int(np.argmin(np.abs(xs - target)))]
            rows.append([label, row["x"], row["y"] * 1e9])
    print(format_table(
        ["load", "path loss [dB]", "energy/bit [nJ]"],
        rows, title="Figure 7: optimal energy per bit "
                    f"({'cache hit' if engine_run.cache_hit else 'computed'} "
                    f"in {engine_run.elapsed_s:.2f} s)"))
    print()
    policies = {load: ChannelInversionPolicy(model, payload_bytes=120, load=load)
                for load in loads}

    # ---- thresholds ---------------------------------------------------------------------
    for load, policy in policies.items():
        thresholds = policy.compute_thresholds()
        print(format_table(
            ["path loss threshold [dB]", "from [dBm]", "to [dBm]"],
            [[t.path_loss_db, t.lower_level_dbm, t.upper_level_dbm]
             for t in thresholds],
            title=f"Switching thresholds at load {load:g} "
                  f"(paper: thresholds are load independent)"))
        print()

    # ---- savings ------------------------------------------------------------------------
    policy = policies[0.42]
    rows = []
    for path_loss in (55.0, 65.0, 75.0, 85.0):
        adapted = policy.evaluate_adapted(path_loss).energy_per_bit_j
        fixed = model.evaluate(payload_bytes=120, tx_power_dbm=0.0,
                               path_loss_db=path_loss, load=0.42).energy_per_bit_j
        rows.append([path_loss, adapted * 1e9, fixed * 1e9,
                     100.0 * (1.0 - adapted / fixed)])
    print(format_table(
        ["path loss [dB]", "adapted [nJ/bit]", "fixed 0 dBm [nJ/bit]", "saving [%]"],
        rows, title="Saving of channel inversion vs fixed maximum power "
                    "(paper: up to 40 %)"))


if __name__ == "__main__":
    main()
