#!/usr/bin/env python
"""Link adaptation study: transmit-power thresholds and energy per bit (Figure 7).

Computes, for 120-byte packets at several network loads:

* the energy per bit as a function of the path loss when each node picks the
  energy-optimal CC2420 power level (channel inversion),
* the switching thresholds between adjacent levels, and
* the saving relative to always transmitting at 0 dBm.

Run with::

    python examples/link_adaptation_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.link_adaptation import ChannelInversionPolicy
from repro.experiments.common import default_model


def main() -> None:
    model = default_model()
    loads = (0.2, 0.42, 0.6)
    grid = np.arange(50.0, 95.0, 5.0)

    # ---- energy-per-bit curves -------------------------------------------------------
    rows = []
    policies = {}
    for load in loads:
        policy = ChannelInversionPolicy(model, payload_bytes=120, load=load)
        curve = policy.compute_curve(np.arange(45.0, 95.5, 1.0))
        policies[load] = policy
        for path_loss in grid:
            index = int(np.argmin(np.abs(curve.path_loss_grid_db - path_loss)))
            rows.append([
                load, float(path_loss),
                float(curve.optimal_level_dbm[index]),
                float(curve.optimal_energy_per_bit_j[index]) * 1e9,
            ])
    print(format_table(
        ["load", "path loss [dB]", "optimal level [dBm]", "energy/bit [nJ]"],
        rows, title="Figure 7: optimal transmit power and energy per bit"))
    print()

    # ---- thresholds ---------------------------------------------------------------------
    for load, policy in policies.items():
        thresholds = policy.compute_thresholds()
        print(format_table(
            ["path loss threshold [dB]", "from [dBm]", "to [dBm]"],
            [[t.path_loss_db, t.lower_level_dbm, t.upper_level_dbm]
             for t in thresholds],
            title=f"Switching thresholds at load {load:g} "
                  f"(paper: thresholds are load independent)"))
        print()

    # ---- savings ------------------------------------------------------------------------
    policy = policies[0.42]
    rows = []
    for path_loss in (55.0, 65.0, 75.0, 85.0):
        adapted = policy.evaluate_adapted(path_loss).energy_per_bit_j
        fixed = model.evaluate(payload_bytes=120, tx_power_dbm=0.0,
                               path_loss_db=path_loss, load=0.42).energy_per_bit_j
        rows.append([path_loss, adapted * 1e9, fixed * 1e9,
                     100.0 * (1.0 - adapted / fixed)])
    print(format_table(
        ["path loss [dB]", "adapted [nJ/bit]", "fixed 0 dBm [nJ/bit]", "saving [%]"],
        rows, title="Saving of channel inversion vs fixed maximum power "
                    "(paper: up to 40 %)"))


if __name__ == "__main__":
    main()
