#!/usr/bin/env python
"""The multi-hop energy hole, measured on the dense-network simulator.

The paper's cluster is a 1-hop star, so its 211 uW headline never includes
relay traffic.  This example routes a 24-node grid channel over gradient
sink trees of increasing hop-depth cap and tabulates the per-depth power
breakdown: with ``max_hops=1`` every node talks straight to the sink (one
flat power level); with ``max_hops=2`` the eight first-ring relays forward
the outer ring's packets and their average power climbs well above the
leaves' — the energy hole that bounds a multi-hop deployment's lifetime.

Equivalent CLI::

    python -m repro run case_study_full --param topology=grid \
        --param max_hops=2 --param traffic_model=periodic \
        --param traffic_rate_scale=0.5

Run with::

    python examples/multi_hop_energy_hole.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.network import ScenarioSpec, aggregate_channel_rows, simulate_network
from repro.network.routing import build_routing_model
from repro.network.topology import build_topology_model
from repro.network.traffic import build_traffic_model


def main() -> None:
    rows = []
    for max_hops in (1, 2):
        spec = ScenarioSpec(
            name=f"energy-hole-{max_hops}-hop", total_nodes=24,
            num_channels=1,
            topology=build_topology_model("grid"),
            routing=build_routing_model("gradient", max_hops=max_hops),
            traffic=build_traffic_model("periodic", rate_scale=0.5),
            superframes_hint=12)
        aggregate = aggregate_channel_rows(
            simulate_network(spec, superframes=12, seed=7,
                             backend="batched"))
        for hop_depth, bucket in sorted(aggregate["by_depth"].items()):
            rows.append([
                max_hops, hop_depth, bucket["nodes"],
                bucket["packets_delivered"],
                f"{bucket['mean_power_uw']:.1f}",
                "-" if bucket["mean_delivery_delay_s"] is None
                else f"{bucket['mean_delivery_delay_s'] * 1e3:.0f}",
            ])

    print(format_table(
        ["max_hops", "hop depth", "nodes", "delivered", "power [uW]",
         "delay [ms]"],
        rows,
        title="Per-hop-depth breakdown of a routed 24-node grid channel "
              "(periodic traffic, seed 7)"))
    print("\nWith max_hops=1 the grid collapses to a star and every ring "
          "pays only for its\nown traffic.  With max_hops=2 the outer "
          "ring's packets ride through the eight\nfirst-ring relays: the "
          "relays' power climbs while the leaves' drops (shorter,\n"
          "lower-level parent links) — forwarding load concentrates where "
          "the network can\nleast afford it, next to the sink.")


if __name__ == "__main__":
    main()
