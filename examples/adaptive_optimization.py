#!/usr/bin/env python
"""Adaptive design-space optimization over the full-scale simulator.

Grid sweeps (``examples/design_space_exploration.py``) spend most of
their budget far from the Pareto front.  The optimizer layer
(``repro.sweep.optimize``) runs the same search *adaptively*: a seeded
successive-halving loop proposes batches of design points over the
experiment's typed parameter domains, dispatches them through the same
executor + result cache as a plain sweep, and stops once the Pareto
front stabilises.  Everything is seeded — re-running a search replays
the identical proposal sequence from the cache and recomputes nothing.

This walkthrough:

1. runs the registered ``case_study_power`` optimizer (quick variant)
   through a ``Session`` and prints the per-round trajectory;
2. compares its knee point against the exhaustive reference grid
   (``case_study_power_grid``) — same operating point, half the budget;
3. builds a custom ``OptimizeSpec`` from scratch over typed dimensions;
4. exports the byte-reproducible CSV/JSON/manifest artifacts.

Equivalent CLI::

    python -m repro sweep optimize case_study_power --quick --export out/

Run with::

    python examples/adaptive_optimization.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import repro.api as api
from repro.sweep import export_optimize, knee_point, pareto_front

#: The examples run the quick variants so the walkthrough finishes in
#: seconds; drop ``quick=True`` for the paper-scale design spaces.
QUICK = True


def main() -> None:
    session = api.Session(jobs=min(4, os.cpu_count() or 1))

    # ---- 1. a registered optimizer, resumable round by round ----------------
    result = session.optimize("case_study_power", quick=QUICK)
    spec = result.spec
    print(result.to_table())
    print(f"optimize {spec.name}: {len(result.points)} points in "
          f"{len(result.rounds)} rounds stop={result.stop_reason} "
          f"({result.computed_points} computed, {result.cached_points} from "
          f"cache — run the script again and watch computed hit 0)")
    for rnd in result.rounds:
        print(f"  round {rnd.index}: {len(rnd.proposals)} proposals, "
              f"front size {len(rnd.front_points)}")
    print()

    # ---- 2. the knee, versus the exhaustive grid at twice the budget --------
    knee = result.knee()
    grid = session.sweep("case_study_power_grid", quick=QUICK)
    grid_knee = knee_point(pareto_front(grid.rows, grid.spec.objectives),
                           grid.spec.objectives)
    print(f"optimizer knee ({len(result.points)} points): "
          f"BO={knee['beacon_order']} SO={knee['superframe_order']} "
          f"-> {knee['mean_power_uw']:.1f} uW")
    print(f"grid knee      ({len(grid.points)} points): "
          f"BO={grid_knee['beacon_order']} SO={grid_knee['superframe_order']} "
          f"-> {grid_knee['mean_power_uw']:.1f} uW")
    print()

    # ---- 3. a custom search space is one OptimizeSpec away ------------------
    # Dimensions validate against case_study_full's typed schema *here*: a
    # typo'd name or an out-of-domain bound raises on this line, before any
    # simulation starts.
    custom = api.OptimizeSpec(
        name="custom_power_search", experiment="case_study_full",
        dimensions={"beacon_order": api.IntDimension(3, 6),
                    "superframe_order": api.ChoiceDimension((None, 2, 3))},
        objectives={"mean_power_uw": "min", "mean_delivery_delay_s": "min"},
        base_params={"total_nodes": 32, "num_channels": 2, "superframes": 4},
        max_points=6, initial_points=4, batch_size=2)
    custom_result = session.optimize(custom)
    print(custom_result.to_table(
        title="Custom BO/SO search (SO=None means SO=BO, fully active)"))
    print()

    # ---- 4. byte-reproducible artifacts -------------------------------------
    out_dir = Path(tempfile.mkdtemp(prefix="repro-optimize-"))
    paths = export_optimize(result, out_dir)
    print(f"exported to {out_dir} (spec hash {spec.spec_hash()}):")
    for kind, path in sorted(paths.items()):
        print(f"  {kind:9s} {path.name}")


if __name__ == "__main__":
    main()
