#!/usr/bin/env python
"""Full-scale packet-level simulation of the Section 5 case study.

Where ``dense_network_case_study.py`` evaluates the 1600-node network
through the paper's analytical model, this example *simulates* it packet by
packet: all sixteen 2450 MHz channels with 100 nodes each, channel-inversion
link adaptation, 50 superframes per channel — tractable in seconds thanks to
the vectorized slot-level backend (``repro.mac.vectorized``), and fanned out
over worker processes with per-channel spawned seeds.

The run goes through the experiment engine (equivalent CLI::

    python -m repro run case_study_full --jobs 4

), so a re-run is served from the result cache.  A scaled-down variant shows
how a :class:`repro.network.ScenarioSpec` makes diverse workloads one
configuration away.

Run with::

    python examples/full_scale_simulation.py
"""

from __future__ import annotations

import os

from repro.analysis.tables import format_table
from repro.network import ScenarioSpec, aggregate_channel_rows, simulate_network
from repro.runner import run_experiment


def main() -> None:
    jobs = min(4, os.cpu_count() or 1)

    # ---- the paper's network, simulated end to end through the engine --------
    run = run_experiment("case_study_full", jobs=jobs)
    aggregate = run.payload["aggregate"]
    print(format_table(
        ["channel", "delivered / attempted", "failures", "power [uW]",
         "delay [s]"],
        [[row["channel"],
          f"{row['packets_delivered']} / {row['packets_attempted']}",
          row["channel_access_failures"], row["mean_power_uw"],
          "-" if row["mean_delivery_delay_s"] is None
          else row["mean_delivery_delay_s"]]
         for row in run.rows],
        title="Per-channel packet-level simulation "
              f"({'cache hit' if run.cache_hit else f'{jobs} jobs'} "
              f"in {run.elapsed_s:.2f} s)",
    ))
    print()
    print(f"Network of {aggregate['nodes']} nodes on "
          f"{aggregate['channels']} channels:")
    print(f"  failure probability: {aggregate['failure_probability']:.3f} "
          f"(paper's analytical figure: 0.16)")
    print(f"  average node power:  {aggregate['mean_power_uw']:.1f} uW "
          f"(paper: 211 uW)")
    if aggregate["mean_delivery_delay_s"] is not None:
        print(f"  in-superframe delay: "
              f"{aggregate['mean_delivery_delay_s'] * 1e3:.0f} ms")
    print()

    # ---- a different workload is one ScenarioSpec away -----------------------
    spec = ScenarioSpec(name="ble-ablation", total_nodes=400, num_channels=4,
                        battery_life_extension=True, superframes_hint=20)
    rows = simulate_network(spec, seed=7)
    ble = aggregate_channel_rows(rows)
    print(f"Ablation — battery-life extension on, {ble['nodes']} nodes over "
          f"{ble['channels']} channels:")
    print(f"  failure probability: {ble['failure_probability']:.3f} "
          f"(the paper argues BLE hurts dense networks)")
    print(f"  average node power:  {ble['mean_power_uw']:.1f} uW")


if __name__ == "__main__":
    main()
